"""Accelerator power/latency report and signal-level VDP demonstration.

Prints the static power breakdown of the paper-scale CrossLight-style
accelerator (laser, EO actuation, TO trimming, DAC/ADC, photodetectors), the
EO-vs-TO tuning cost comparison from §II.B, and then runs a small
matrix-vector product through the device-level optical simulation with and
without attacks to show how the hardware behaviour maps onto the functional
attack model.

Run with::

    python examples/accelerator_power_report.py
"""

from __future__ import annotations

import numpy as np

from repro.accelerator.config import AcceleratorConfig
from repro.accelerator.power import PowerModel
from repro.accelerator.signal_sim import SignalLevelSimulator


def main() -> None:
    config = AcceleratorConfig.paper_config()
    power_model = PowerModel(config)
    report = power_model.report()

    print("== Static power breakdown (paper-scale configuration) ==")
    for block in (report.conv, report.fc):
        print(f"\n{block.block.upper()} block:")
        for key, value in block.as_dict().items():
            if key == "block":
                continue
            print(f"  {key:18s} {value:10.3f} W")
    print(f"\nTotal accelerator power: {report.total_w:.1f} W")
    print(f"VDP pipeline latency:    {report.vdp_latency_s * 1e9:.1f} ns")

    print("\n== EO vs TO tuning cost (paper §II.B) ==")
    for shift in (0.1, 0.2, 0.4):
        comparison = power_model.tuning_energy_comparison(shift)
        print(f"  shift {shift:.1f} nm: EO {comparison['eo_power_w'] * 1e6:7.2f} uW "
              f"vs TO {comparison['to_power_w'] * 1e3:6.3f} mW")

    print("\n== Signal-level VDP demonstration (8-carrier bank pair) ==")
    sim = SignalLevelSimulator(8)
    rng = np.random.default_rng(0)
    activations = rng.random(8)
    weights = rng.random(8)
    exact = float(activations @ weights)
    clean = sim.dot(activations, weights)
    attacked = sim.dot(activations, weights, attacked_weight_mrs=[2, 5])
    hotspot = sim.dot(activations, weights, bank_delta_t_k=16.0)
    print(f"  exact dot product:         {exact:.4f}")
    print(f"  optical (clean):           {clean:.4f}")
    print(f"  optical (2 MRs actuated):  {attacked:.4f}")
    print(f"  optical (16 K hotspot):    {hotspot:.4f}")
    print("\nActuation attacks remove individual products; a bank-level hotspot "
          "re-pairs carriers with the wrong weights, corrupting the whole sum.")


if __name__ == "__main__":
    main()
