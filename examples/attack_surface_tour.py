"""Tour of the HT attack surface and trojan trigger behaviour.

Demonstrates the lower-level attack APIs that the experiment harnesses build
on: hardware-trojan trigger modes, attack scenario generation, weight-mapping
inspection (which model weights a compromised MR corrupts), and the corrupted
weight statistics for each attack vector.

Run with::

    python examples/attack_surface_tour.py
"""

from __future__ import annotations

import numpy as np

from repro.accelerator import AcceleratorConfig, ONNAccelerator
from repro.attacks import (
    ActuationAttack,
    AttackSpec,
    HardwareTrojan,
    HotspotAttack,
    TriggerMode,
    corrupted_state_dict,
    generate_scenarios,
)
from repro.nn.models import build_model


def main() -> None:
    # ------------------------------------------------------------ trojans
    print("== Hardware-trojan trigger modes ==")
    counting = HardwareTrojan(trigger_mode=TriggerMode.INFERENCE_COUNT, trigger_count=3)
    for inference in range(1, 5):
        counting.observe_inference()
        print(f"  after {inference} inference(s): triggered={counting.triggered}")

    # ------------------------------------------------------- scenario grid
    print("\n== The paper's attack grid ==")
    scenarios = generate_scenarios(num_placements=10)
    print(f"  {len(scenarios)} placed scenarios "
          f"(2 kinds x 3 blocks x 3 fractions x 10 placements)")
    print(f"  example labels: {[s.label() for s in scenarios[:3]]}")

    # --------------------------------------------------------- mapping view
    print("\n== Which weights does one compromised MR corrupt? ==")
    config = AcceleratorConfig.scaled_config()
    model = build_model("cnn_mnist", profile="scaled", rng=0)
    accelerator = ONNAccelerator(config)
    mapping = accelerator.mapping_for(model)
    report = accelerator.deployment_report(model)
    print(f"  FC block mapping rounds: {report.fc_rounds} "
          "(one trojan corrupts one weight per round)")
    slot = 123
    hosted = mapping.weights_on_slot("fc", slot)
    print(f"  FC slot {slot} hosts {len(hosted)} weights:")
    for name, index in hosted:
        print(f"    {name}[{index}]")

    # ------------------------------------------------------ corruption stats
    print("\n== Corruption statistics at 5% attack intensity ==")
    for label, attack in (
        ("actuation", ActuationAttack(AttackSpec("actuation", "both", 0.05))),
        ("hotspot", HotspotAttack(AttackSpec("hotspot", "both", 0.05))),
    ):
        outcome = attack.sample(config, seed=1)
        corrupted = corrupted_state_dict(model, mapping, outcome)
        clean = model.state_dict()
        changed = 0
        total = 0
        magnitude_change = 0.0
        for mapped in mapping.parameters:
            diff = np.abs(corrupted[mapped.name] - clean[mapped.name])
            changed += int(np.count_nonzero(diff > 1e-7))
            magnitude_change += float(diff.sum())
            total += diff.size
        print(f"  {label:10s}: {changed / total:6.2%} of mapped weights changed, "
              f"mean |delta| over changed weights = {magnitude_change / max(changed, 1):.4f}")


if __name__ == "__main__":
    main()
