"""Susceptibility analysis example (paper Fig. 7), driven by the engine.

Expands the attack grid (actuation and hotspot attacks at 1/5/10% of the MRs
on the CONV block, the FC block, and both) into a campaign of ``fig7_point``
runs, executes it in parallel with result caching, and prints the
per-scenario accuracy table.  Re-running the example completes from the
cache.

Run with::

    python examples/susceptibility_analysis.py             # CNN_1 only (fast)
    python examples/susceptibility_analysis.py --all       # all three workloads
    python examples/susceptibility_analysis.py --placements 10   # paper-size grid
    python examples/susceptibility_analysis.py --workers 8       # wider pool
"""

from __future__ import annotations

import argparse

from repro.analysis.reporting import format_fig7_table
from repro.analysis.susceptibility import (
    ScenarioAccuracy,
    SusceptibilityConfig,
    SusceptibilityResult,
)
from repro.engine import Campaign, SweepSpec


def result_from_payloads(config: SusceptibilityConfig, payloads) -> SusceptibilityResult:
    """Reassemble a :class:`SusceptibilityResult` from campaign payloads."""
    result = SusceptibilityResult(config=config)
    for payload in payloads:
        result.baselines[payload["model"]] = payload["baseline"]
        result.scenarios.append(
            ScenarioAccuracy(
                model=payload["model"],
                kind=payload["kind"],
                block=payload["block"],
                fraction=payload["fraction"],
                placement=payload["placement"],
                accuracy=payload["accuracy"],
                corrupted_fraction=payload["corrupted_fraction"],
            )
        )
    return result


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--all", action="store_true",
        help="evaluate all three workloads (CNN_1, ResNet18, VGG16 variant)",
    )
    parser.add_argument(
        "--placements", type=int, default=3,
        help="random trojan placements per attack setting (paper uses 10)",
    )
    parser.add_argument(
        "--workers", type=int, default=4,
        help="process-pool size (1 runs serially)",
    )
    parser.add_argument(
        "--cache-dir", default=".repro-cache",
        help="campaign result cache (re-runs complete from here)",
    )
    args = parser.parse_args()

    model_names = (
        ("cnn_mnist", "resnet18", "vgg16_variant") if args.all else ("cnn_mnist",)
    )
    fractions = (0.01, 0.05, 0.10)
    blocks = ("conv", "fc", "both")
    sweep = SweepSpec(
        experiment_id="fig7_point",
        grid={
            "model": list(model_names),
            "kind": ["actuation", "hotspot"],
            "block": list(blocks),
            "fraction": list(fractions),
            "placement": list(range(args.placements)),
        },
    )
    campaign = Campaign(sweep, cache=args.cache_dir, workers=args.workers)
    print(f"Running the susceptibility grid for {', '.join(model_names)} "
          f"({sweep.num_points} campaign points, "
          f"{args.placements} placements per setting)...")
    result = campaign.run()
    summary = result.summary()
    print(f"Campaign finished in {summary['duration_s']}s: "
          f"{summary['executed']} executed, {summary['cache_hits']} cache hits "
          f"({summary['executor']} executor)")

    config = SusceptibilityConfig(
        model_names=model_names,
        blocks=blocks,
        fractions=fractions,
        num_placements=args.placements,
    )
    table = result_from_payloads(config, result.payloads)
    for model_name in model_names:
        print()
        print(format_fig7_table(table, model_name))
        print(f"Worst-case hotspot drop:   {table.worst_case_drop(model_name, 'hotspot'):.3f}")
        print(f"Worst-case actuation drop: {table.worst_case_drop(model_name, 'actuation'):.3f}")


if __name__ == "__main__":
    main()
