"""Susceptibility analysis example (paper Fig. 7).

Runs the attack grid (actuation and hotspot attacks at 1/5/10% of the MRs on
the CONV block, the FC block, and both) against one or more trained CNN
workloads and prints the per-scenario accuracy table.

Run with::

    python examples/susceptibility_analysis.py             # CNN_1 only (fast)
    python examples/susceptibility_analysis.py --all       # all three workloads
    python examples/susceptibility_analysis.py --placements 10   # paper-size grid
"""

from __future__ import annotations

import argparse

from repro.analysis.reporting import format_fig7_table
from repro.analysis.susceptibility import SusceptibilityConfig, SusceptibilityStudy


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--all", action="store_true",
        help="evaluate all three workloads (CNN_1, ResNet18, VGG16 variant)",
    )
    parser.add_argument(
        "--placements", type=int, default=3,
        help="random trojan placements per attack setting (paper uses 10)",
    )
    args = parser.parse_args()

    model_names = (
        ("cnn_mnist", "resnet18", "vgg16_variant") if args.all else ("cnn_mnist",)
    )
    config = SusceptibilityConfig(
        model_names=model_names,
        num_placements=args.placements,
        seed=0,
    )
    study = SusceptibilityStudy(config)
    print(f"Running the susceptibility grid for {', '.join(model_names)} "
          f"({args.placements} placements per setting)...")
    result = study.run()

    for model_name in model_names:
        print()
        print(format_fig7_table(result, model_name))
        print(f"Worst-case hotspot drop:   {result.worst_case_drop(model_name, 'hotspot'):.3f}")
        print(f"Worst-case actuation drop: {result.worst_case_drop(model_name, 'actuation'):.3f}")


if __name__ == "__main__":
    main()
