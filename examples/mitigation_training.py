"""Mitigation example (paper Figs. 8 and 9).

Trains the mitigation variant grid for the CNN_1 workload (Original, L2_reg
and L2 + Gaussian noise-aware variants), evaluates every variant across the
attack grid, selects the most robust configuration and compares it against
the original model under CONV+FC attacks.

Run with::

    python examples/mitigation_training.py
    python examples/mitigation_training.py --full-grid    # all l2+n1..n9 variants
"""

from __future__ import annotations

import argparse

from repro.analysis.mitigation_analysis import MitigationAnalysisConfig, MitigationStudy
from repro.analysis.reporting import format_fig8_table, format_fig9_table
from repro.mitigation import L2Config, NoiseAwareConfig, VariantSpec, default_variant_grid


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--full-grid", action="store_true",
        help="train the full paper grid (Original, L2_reg, l2+n1 .. l2+n9)",
    )
    parser.add_argument("--placements", type=int, default=2)
    args = parser.parse_args()

    if args.full_grid:
        variants = default_variant_grid()
    else:
        variants = [
            VariantSpec(name="Original"),
            VariantSpec(name="L2_reg", l2=L2Config()),
            VariantSpec(name="l2+n2", l2=L2Config(), noise=NoiseAwareConfig(std=0.2)),
            VariantSpec(name="l2+n3", l2=L2Config(), noise=NoiseAwareConfig(std=0.3)),
            VariantSpec(name="l2+n5", l2=L2Config(), noise=NoiseAwareConfig(std=0.5)),
        ]

    config = MitigationAnalysisConfig(
        model_names=("cnn_mnist",),
        variants=variants,
        num_placements=args.placements,
        seed=0,
    )
    study = MitigationStudy(config)
    print(f"Training {len(variants)} variants of CNN_1 and evaluating the attack grid...")
    result = study.run()

    print()
    print(format_fig8_table(result.distributions, "cnn_mnist"))
    best = result.best_variant["cnn_mnist"]
    print(f"\nMost robust variant: {best}")
    print("Variant ranking (median attacked accuracy):")
    for score in result.variant_scores["cnn_mnist"]:
        print(f"  {score.variant:10s} median={score.median_accuracy:.3f} "
              f"mean={score.mean_accuracy:.3f} worst={score.worst_accuracy:.3f}")

    print()
    print(format_fig9_table(result.comparison, "cnn_mnist"))


if __name__ == "__main__":
    main()
