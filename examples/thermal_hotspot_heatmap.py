"""Thermal hotspot heatmap example (paper Fig. 6).

Simulates HT-overdriven heaters in two MR banks of the paper-scale CONV block
(100 VDP units x 20 banks), solves the steady-state temperature field with
the grid thermal solver (the HotSpot substitute) and renders an ASCII heatmap
plus the list of collaterally heated neighbour banks.

Run with::

    python examples/thermal_hotspot_heatmap.py
    python examples/thermal_hotspot_heatmap.py --banks 120 980 --heater-mw 400
"""

from __future__ import annotations

import argparse

from repro.accelerator.config import AcceleratorConfig
from repro.photonics.thermal_sensitivity import ThermalSensitivity
from repro.thermal import Floorplan, simulate_hotspot_attack


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--banks", type=int, nargs="+", default=[650, 1260],
                        help="bank indices whose heaters the trojan overdrives")
    parser.add_argument("--heater-mw", type=float, default=300.0,
                        help="extra heater power per attacked bank [mW]")
    args = parser.parse_args()

    config = AcceleratorConfig.paper_config()
    geometry = config.conv_block
    floorplan = Floorplan(num_banks=geometry.num_banks, banks_per_row=geometry.rows)
    print(f"CONV block: {geometry.num_units} VDP units x {geometry.rows} banks "
          f"x {geometry.cols} MRs = {geometry.capacity} weight MRs")
    print(f"Attacking banks {args.banks} with {args.heater_mw:.0f} mW of trojan heater power...")

    result = simulate_hotspot_attack(
        floorplan, attacked_banks=args.banks, heater_power_mw=args.heater_mw
    )
    print(f"\nPeak temperature rise: {result.peak_rise_k:.1f} K above the "
          f"{result.ambient_k:.0f} K operating point")

    sensitivity = ThermalSensitivity()
    print("\nPer-bank impact (banks above 5 K rise):")
    for bank in result.affected_banks(5.0):
        rise = result.bank_temperature_rise_k[bank]
        shift = sensitivity.resonance_shift_nm(1550.0, rise)
        tag = "ATTACKED" if bank in result.attacked_banks else "neighbour"
        print(f"  bank {bank:5d}: +{rise:5.1f} K -> resonance shift {shift:.2f} nm ({tag})")

    print("\nTemperature heatmap of the CONV block (brighter = hotter):")
    print(result.ascii_heatmap(width=78))


if __name__ == "__main__":
    main()
