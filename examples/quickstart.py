"""Quickstart: train a CNN, deploy it on the optical accelerator, attack it.

This walks through the core SafeLight flow on the smallest workload (the
MNIST-like CNN_1 model):

1. synthesize a dataset and train the baseline model;
2. reproduce the Table I parameter inventory;
3. map the model onto the CrossLight-style accelerator;
4. inject an actuation attack and a thermal hotspot attack;
5. report the accuracy impact.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.accelerator import AcceleratorConfig, ONNAccelerator
from repro.analysis.metrics import percent
from repro.analysis.reporting import format_deployment_report, format_table1
from repro.attacks import ActuationAttack, AttackSpec, HotspotAttack
from repro.datasets import load_dataset, train_test_split
from repro.nn import Trainer, TrainingConfig
from repro.nn.models import build_model, table1_rows


def main() -> None:
    # ------------------------------------------------------------ 1. train
    print("== 1. Training the CNN_1 workload on the synthetic MNIST stand-in ==")
    dataset = load_dataset("mnist", num_samples=700, seed=0)
    split = train_test_split(dataset, test_fraction=0.25, seed=1)
    model = build_model("cnn_mnist", profile="scaled", rng=0)
    config = TrainingConfig(epochs=4, batch_size=32, lr=2e-3, seed=0, verbose=True)
    Trainer(model, config).fit(split.train, split.test)

    # ------------------------------------------------------- 2. Table I
    print("\n== 2. Table I reproduction (paper vs. this repository) ==")
    print(format_table1(table1_rows(include_measured=True)))

    # ------------------------------------------------------ 3. deployment
    print("\n== 3. Deploying onto the optical accelerator ==")
    accelerator = ONNAccelerator(AcceleratorConfig.scaled_config())
    engine = accelerator.deploy(model)
    print(format_deployment_report(accelerator.deployment_report(model).as_dict()))
    clean = engine.clean_accuracy(split.test)
    print(f"Clean accuracy on the accelerator: {percent(clean)}")

    # ------------------------------------------------------------ 4. attack
    print("\n== 4. Hardware-trojan attacks (10% of MRs, CONV + FC blocks) ==")
    actuation = ActuationAttack(AttackSpec("actuation", "both", 0.10)).sample(
        accelerator.config, seed=7
    )
    hotspot = HotspotAttack(AttackSpec("hotspot", "both", 0.10)).sample(
        accelerator.config, seed=7
    )
    actuation_accuracy = engine.accuracy_under_attack(split.test, actuation)
    hotspot_accuracy = engine.accuracy_under_attack(split.test, hotspot)

    # ------------------------------------------------------------ 5. report
    print(f"Actuation attack accuracy: {percent(actuation_accuracy)} "
          f"(drop {percent(clean - actuation_accuracy)})")
    print(f"Hotspot attack accuracy:   {percent(hotspot_accuracy)} "
          f"(drop {percent(clean - hotspot_accuracy)})")
    print("\nHotspot attacks corrupt clusters of parameters and are the more "
          "damaging vector, matching the paper's susceptibility analysis.")


if __name__ == "__main__":
    main()
