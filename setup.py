"""Setuptools entry point.

Kept alongside ``pyproject.toml`` so that legacy editable installs
(``pip install -e . --no-use-pep517``) work in offline environments whose
setuptools/wheel combination cannot build PEP 660 editable wheels.
"""

from setuptools import setup

setup()
