"""MR actuation attacks (paper §III.B.1).

HTs embedded in the EO signal-actuation circuits force individual microrings
into an off-resonance state.  The attacker is assumed to place trojans at
random locations in the accelerator substrate, so an attack instance is a
uniformly random sample of MR slots covering the requested fraction of the
targeted block(s).
"""

from __future__ import annotations

import numpy as np

from repro.accelerator.config import AcceleratorConfig
from repro.attacks.base import AttackOutcome, AttackSpec, BlockEffect
from repro.attacks.registry import AttackKind, register_attack
from repro.utils.rng import default_rng, seed_int

__all__ = ["ActuationAttack"]


@register_attack("actuation")
class ActuationAttack(AttackKind):
    """Randomly placed off-resonance attacks on individual MRs.

    Parameters
    ----------
    spec:
        Attack specification; ``spec.kind`` must be ``"actuation"``.
    """

    summary = "EO-circuit HTs force individual, randomly placed MRs off resonance"

    def sample(
        self,
        config: AcceleratorConfig,
        seed: int | np.random.Generator | None = 0,
    ) -> AttackOutcome:
        """Draw one random placement of the trojans.

        For each targeted block, ``round(fraction * capacity)`` distinct MR
        slots are selected uniformly at random (at least one when the
        fraction is non-zero).
        """
        rng = default_rng(seed)
        outcome = AttackOutcome(spec=self.spec, seed=seed_int(seed))
        for block in self.spec.blocks:
            geometry = config.block(block)
            num_attacked = max(1, int(round(self.spec.fraction * geometry.capacity)))
            num_attacked = min(num_attacked, geometry.capacity)
            slots = rng.choice(geometry.capacity, size=num_attacked, replace=False)
            outcome.add_effect(
                block,
                BlockEffect(slots_off=np.sort(slots.astype(np.int64))),
                attacked_mrs=num_attacked,
            )
        return outcome
