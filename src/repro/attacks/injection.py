"""Attack injection: converting an attack outcome into corrupted weights.

The functional attack model mirrors what the physical substrate does to each
mapped weight.  Weight banks use the add-drop configuration: each ring
couples a fraction of its carrier — equal to the normalized weight magnitude
— onto the drop bus feeding the photodetector (see
:class:`repro.photonics.mr_bank.MRBank` with ``encoding="drop"``).

* **Actuation attack** — the weight MR is pushed far off resonance, so it no
  longer couples its carrier to the detector: the normalized magnitude
  collapses to ≈0 regardless of the programmed value (the electronic sign
  path is unaffected but irrelevant once the magnitude is gone).
* **Thermal hotspot attack** — every MR in an affected bank shifts its
  resonance by ``delta_lambda`` (Eq. 2).  A shift of ``k`` whole channels
  re-pairs each ring with the carrier ``k`` positions later, so carrier ``j``
  is dropped with the magnitude programmed for column ``j - k`` (the first
  ``k`` carriers are dropped by no ring and contribute ≈0).  The sub-channel
  residual shift detunes the ring partially, scaling the coupled magnitude
  down following the Lorentzian drop-port response.  Banks that are heated
  only indirectly (floorplan neighbours) are partially protected by their own
  thermo-optic tuning loops, which can compensate a bounded temperature rise;
  directly attacked banks get no such protection because the HT controls
  their heater.

Injection operates on the weight-stationary mapping: a compromised MR corrupts
the weight it hosts in *every* mapping round, which is how a fixed number of
trojans damages large multi-round models disproportionately.
"""

from __future__ import annotations

from contextlib import contextmanager

import numpy as np

from repro.accelerator.mapping import MappedParameter, WeightMapping
from repro.attacks.base import AttackOutcome
from repro.nn.module import Module
from repro.photonics import constants
from repro.photonics.thermal_sensitivity import ThermalSensitivity

__all__ = [
    "corrupted_state_dict",
    "attack_context",
    "OFF_RESONANCE_MAGNITUDE",
    "DEFAULT_TUNING_COMPENSATION_K",
]

#: Normalized magnitude coupled to the detector by an off-resonance ring
#: (drop-port transmission several linewidths away from the carrier).
OFF_RESONANCE_MAGNITUDE = 0.002

#: Temperature rise [K] a non-attacked bank's own thermo-optic tuning loop can
#: compensate before its rings start to drift (paper §III.B.2: "the tuning
#: circuit is usually designed to manage minor temperature fluctuations").
DEFAULT_TUNING_COMPENSATION_K = 8.0


def corrupted_state_dict(
    model: Module,
    mapping: WeightMapping,
    outcome: AttackOutcome,
    sensitivity: ThermalSensitivity | None = None,
    tuning_compensation_k: float = DEFAULT_TUNING_COMPENSATION_K,
) -> dict[str, np.ndarray]:
    """Return a full state dict with the attack applied to the mapped weights.

    Unmapped parameters (biases, batch-norm) are returned unchanged.
    """
    sensitivity = sensitivity or ThermalSensitivity()
    state = model.state_dict()
    for mapped in mapping.parameters:
        original = state[mapped.name]
        corrupted = _corrupt_tensor(
            original, mapped, mapping, outcome, sensitivity, tuning_compensation_k
        )
        state[mapped.name] = corrupted
    return state


@contextmanager
def attack_context(
    model: Module,
    mapping: WeightMapping,
    outcome: AttackOutcome,
    sensitivity: ThermalSensitivity | None = None,
    tuning_compensation_k: float = DEFAULT_TUNING_COMPENSATION_K,
):
    """Temporarily load the corrupted weights into ``model``.

    Usage::

        with attack_context(model, mapping, outcome):
            accuracy = evaluate_accuracy(model, test_set)
        # weights restored here
    """
    clean = model.state_dict()
    try:
        model.load_state_dict(
            corrupted_state_dict(model, mapping, outcome, sensitivity, tuning_compensation_k)
        )
        yield model
    finally:
        model.load_state_dict(clean)


# --------------------------------------------------------------------------- internals
def _corrupt_tensor(
    values: np.ndarray,
    mapped: MappedParameter,
    mapping: WeightMapping,
    outcome: AttackOutcome,
    sensitivity: ThermalSensitivity,
    tuning_compensation_k: float,
) -> np.ndarray:
    """Apply the attack outcome to one mapped weight tensor."""
    block = mapped.kind
    flat = np.asarray(values, dtype=np.float32).reshape(-1).copy()
    signs = np.sign(flat)
    signs[signs == 0] = 1.0
    magnitudes = mapping.normalize(mapped, flat)
    geometry = mapping.block_geometry(block)
    slots = mapping.slots_for(mapped)

    # --- actuation attacks: the hosted weights no longer reach the detector.
    attacked_slots = outcome.actuation_slots.get(block)
    if attacked_slots is not None and len(attacked_slots):
        hit = np.isin(slots, attacked_slots)
        magnitudes[hit] = OFF_RESONANCE_MAGNITUDE

    # --- hotspot attacks: shift whole banks.
    bank_delta_t = outcome.bank_delta_t.get(block)
    if bank_delta_t:
        banks = slots // geometry.cols
        cols = slots % geometry.cols
        magnitudes = _apply_hotspot(
            magnitudes,
            banks,
            cols,
            bank_delta_t,
            set(outcome.attacked_banks.get(block, ())),
            geometry.num_banks,
            mapping.config.channel_spacing_nm,
            constants.C_BAND_CENTER_NM / mapping.config.q_factor,
            sensitivity,
            tuning_compensation_k,
        )
    corrupted = mapping.denormalize(mapped, magnitudes, signs)
    return corrupted.reshape(mapped.shape).astype(np.float32)


def _apply_hotspot(
    magnitudes: np.ndarray,
    banks: np.ndarray,
    cols: np.ndarray,
    bank_delta_t: dict[int, float],
    directly_attacked: set[int],
    num_banks: int,
    spacing_nm: float,
    linewidth_nm: float,
    sensitivity: ThermalSensitivity,
    tuning_compensation_k: float,
) -> np.ndarray:
    """Vectorized hotspot corruption of one flattened weight tensor.

    Each affected bank's temperature rise is converted into a resonance shift
    (Eq. 2).  Non-attacked banks first subtract the rise their own tuning
    loops can absorb.  The whole-channel part of the shift re-pairs every
    ring in the bank with the carrier ``k`` positions later — because the
    weight-stationary layout assigns consecutive columns to consecutive flat
    indices, carrier ``j``'s magnitude comes from flat index ``i - k`` when
    the source column stays inside the bank, and collapses to ≈0 otherwise.
    The sub-channel residual shift scales the coupled magnitude down
    following the Lorentzian drop-port response.
    """
    delta_t_per_bank = np.zeros(num_banks)
    for bank_index, delta_t in bank_delta_t.items():
        if not 0 <= bank_index < num_banks:
            continue
        effective = float(delta_t)
        if bank_index not in directly_attacked:
            effective = max(0.0, effective - tuning_compensation_k)
        delta_t_per_bank[bank_index] = effective
    delta_t = delta_t_per_bank[banks]
    affected = delta_t > 0
    if not np.any(affected):
        return magnitudes

    shift_nm = sensitivity.shift_per_kelvin(constants.C_BAND_CENTER_NM) * delta_t
    channel_shift = np.floor(shift_nm / spacing_nm + 0.5).astype(np.int64)
    residual_nm = shift_nm - channel_shift * spacing_nm

    indices = np.arange(magnitudes.size)
    source_indices = indices - channel_shift
    valid_source = (
        (cols >= channel_shift) & (source_indices >= 0) & (source_indices < magnitudes.size)
    )
    shifted = np.where(
        valid_source,
        magnitudes[np.clip(source_indices, 0, magnitudes.size - 1)],
        OFF_RESONANCE_MAGNITUDE,
    )
    # Partial detuning reduces how much of the (possibly re-paired) magnitude
    # is actually coupled to the detector.
    lorentz = 1.0 / (1.0 + (2.0 * residual_nm / linewidth_nm) ** 2)
    attacked_values = shifted * lorentz
    result = magnitudes.copy()
    result[affected] = attacked_values[affected]
    return result
