"""Attack injection: converting an attack outcome into corrupted weights.

The functional attack model mirrors what the physical substrate does to each
mapped weight.  Weight banks use the add-drop configuration: each ring
couples a fraction of its carrier — equal to the normalized weight magnitude
— onto the drop bus feeding the photodetector (see
:class:`repro.photonics.mr_bank.MRBank` with ``encoding="drop"``).

Outcomes describe the substrate corruption with kind-agnostic
:class:`~repro.attacks.base.BlockEffect` primitives, merged here in a fixed
physical order:

* **Slot floors** (``slots_off``, e.g. actuation attacks) — the MR is pushed
  far off resonance, so it no longer couples its carrier to the detector:
  the normalized magnitude collapses to ≈0 regardless of the programmed
  value (the electronic sign path is unaffected but irrelevant once the
  magnitude is gone).
* **Bank temperature rises** (``bank_delta_t``, e.g. hotspot and crosstalk
  attacks) — every MR in an affected bank shifts its resonance by
  ``delta_lambda`` (Eq. 2).  A shift of ``k`` whole channels re-pairs each
  ring with the carrier ``k`` positions later, so carrier ``j`` is dropped
  with the magnitude programmed for column ``j - k`` (the first ``k``
  carriers are dropped by no ring and contribute ≈0).  The sub-channel
  residual shift detunes the ring partially, scaling the coupled magnitude
  down following the Lorentzian drop-port response.  Banks whose heaters the
  trojan does not control directly (``attacked_banks``) are partially
  protected by their own thermo-optic tuning loops, which can compensate a
  bounded temperature rise.
* **Carrier scales** (``col_scale``, e.g. laser-power attacks) — the
  detected magnitude on a wavelength channel scales with that carrier's
  optical power, *after* any thermal re-pairing: the depletion follows the
  carrier, not the ring.

Injection operates on the weight-stationary mapping: a compromised MR corrupts
the weight it hosts in *every* mapping round, which is how a fixed number of
trojans damages large multi-round models disproportionately.

Two entry points share the same vectorized kernels:

* :func:`corrupted_state_dict` — one outcome → one full state dict (the
  reference per-scenario path).
* :func:`corrupted_state_batch` — ``S`` outcomes → one ``(S, …)`` stacked
  array per *mapped* parameter, computed with a single broadcast pass per
  tensor instead of ``S`` sequential state-dict rebuilds.  The stacked
  arrays feed the ensemble-weight forward path in :mod:`repro.nn.ensemble`.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Sequence

import numpy as np

from repro.accelerator.mapping import MappedParameter, WeightMapping
from repro.attacks.base import AttackOutcome, BlockEffect
from repro.nn.backend import active_backend
from repro.nn.module import Module
from repro.photonics import constants
from repro.photonics.thermal_sensitivity import ThermalSensitivity
from repro.utils.validation import ValidationError

__all__ = [
    "corrupted_state_dict",
    "corrupted_state_batch",
    "attack_context",
    "OFF_RESONANCE_MAGNITUDE",
    "DEFAULT_TUNING_COMPENSATION_K",
]

#: Normalized magnitude coupled to the detector by an off-resonance ring
#: (drop-port transmission several linewidths away from the carrier).
OFF_RESONANCE_MAGNITUDE = 0.002

#: Temperature rise [K] a non-attacked bank's own thermo-optic tuning loop can
#: compensate before its rings start to drift (paper §III.B.2: "the tuning
#: circuit is usually designed to manage minor temperature fluctuations").
DEFAULT_TUNING_COMPENSATION_K = 8.0


def corrupted_state_dict(
    model: Module,
    mapping: WeightMapping,
    outcome: AttackOutcome,
    sensitivity: ThermalSensitivity | None = None,
    tuning_compensation_k: float = DEFAULT_TUNING_COMPENSATION_K,
    state: dict[str, np.ndarray] | None = None,
) -> dict[str, np.ndarray]:
    """Return a full state dict with the attack applied to the mapped weights.

    Unmapped parameters (biases, batch-norm) are returned unchanged.  When a
    clean ``state`` snapshot is supplied it is used as the base instead of
    re-copying ``model.state_dict()``; the returned dict is a fresh mapping
    but its unmapped entries share storage with ``state``.
    """
    sensitivity = sensitivity or ThermalSensitivity()
    state = model.state_dict() if state is None else dict(state)
    for mapped in mapping.parameters:
        original = state[mapped.name]
        corrupted = _corrupt_tensor(
            original, mapped, mapping, outcome, sensitivity, tuning_compensation_k
        )
        state[mapped.name] = corrupted
    return state


def corrupted_state_batch(
    model: Module,
    mapping: WeightMapping,
    outcomes: Sequence[AttackOutcome],
    sensitivity: ThermalSensitivity | None = None,
    tuning_compensation_k: float = DEFAULT_TUNING_COMPENSATION_K,
    state: dict[str, np.ndarray] | None = None,
) -> dict[str, np.ndarray]:
    """Stacked corruption of ``S`` attack outcomes in one broadcast pass.

    Returns ``{name: array of shape (S, *param.shape)}`` for every *mapped*
    parameter; unmapped parameters (biases, batch-norm) are never corrupted
    and are simply absent from the result.  Row ``s`` of every stacked array
    is bit-identical to what :func:`corrupted_state_dict` produces for
    ``outcomes[s]`` — the per-scenario path is the reference this kernel is
    property-tested against, for every registered attack kind.
    """
    outcomes = list(outcomes)
    if not outcomes:
        raise ValidationError("corrupted_state_batch requires at least one outcome")
    sensitivity = sensitivity or ThermalSensitivity()
    state = model.state_dict() if state is None else state
    tables = {
        block: _BlockAttackTables(block, mapping, outcomes, tuning_compensation_k)
        for block in {mapped.kind for mapped in mapping.parameters}
    }
    return {
        mapped.name: _corrupt_tensor_batch(
            state[mapped.name], mapped, mapping, tables[mapped.kind], sensitivity
        )
        for mapped in mapping.parameters
    }


@contextmanager
def attack_context(
    model: Module,
    mapping: WeightMapping,
    outcome: AttackOutcome,
    sensitivity: ThermalSensitivity | None = None,
    tuning_compensation_k: float = DEFAULT_TUNING_COMPENSATION_K,
    clean_state: dict[str, np.ndarray] | None = None,
):
    """Temporarily load the corrupted weights into ``model``.

    Usage::

        with attack_context(model, mapping, outcome):
            accuracy = evaluate_accuracy(model, test_set)
        # weights restored here

    ``clean_state`` lets long-lived callers (the inference engine) snapshot
    the clean weights once instead of re-copying the full state dict on every
    entry; ``load_state_dict`` copies values on load, so the snapshot itself
    is never mutated.
    """
    clean = model.state_dict() if clean_state is None else clean_state
    try:
        model.load_state_dict(
            corrupted_state_dict(
                model, mapping, outcome, sensitivity, tuning_compensation_k, state=clean
            )
        )
        yield model
    finally:
        model.load_state_dict(clean)


# --------------------------------------------------------------------------- internals
def _corrupt_tensor(
    values: np.ndarray,
    mapped: MappedParameter,
    mapping: WeightMapping,
    outcome: AttackOutcome,
    sensitivity: ThermalSensitivity,
    tuning_compensation_k: float,
) -> np.ndarray:
    """Apply the attack outcome to one mapped weight tensor."""
    block = mapped.kind
    effect = outcome.effects.get(block)
    flat = np.asarray(values, dtype=np.float32).reshape(-1).copy()
    signs = np.sign(flat)
    signs[signs == 0] = 1.0
    magnitudes = mapping.normalize(mapped, flat)
    geometry = mapping.block_geometry(block)
    slots = mapping.slots_for(mapped)
    if effect is None:
        effect = BlockEffect()

    # --- slot floors: the hosted weights no longer reach the detector.
    if effect.slots_off is not None and len(effect.slots_off):
        hit = np.isin(slots, effect.slots_off)
        magnitudes[hit] = OFF_RESONANCE_MAGNITUDE

    # --- bank temperature rises: shift whole banks.
    if effect.bank_delta_t:
        banks = slots // geometry.cols
        cols = slots % geometry.cols
        delta_t_per_bank = _effective_bank_delta_t(
            effect.bank_delta_t,
            set(effect.attacked_banks),
            geometry.num_banks,
            tuning_compensation_k,
        )
        magnitudes = _apply_hotspot(
            magnitudes,
            banks,
            cols,
            delta_t_per_bank,
            mapping.config.channel_spacing_nm,
            constants.C_BAND_CENTER_NM / mapping.config.q_factor,
            sensitivity,
        )

    # --- carrier scales: depleted channels couple proportionally less power.
    if effect.col_scale is not None:
        scale = np.asarray(effect.col_scale, dtype=np.float32)
        magnitudes *= scale[slots % geometry.cols]

    corrupted = mapping.denormalize(mapped, magnitudes, signs)
    return corrupted.reshape(mapped.shape).astype(np.float32)


class _BlockAttackTables:
    """Per-block scenario tables shared by every mapped tensor of the block.

    Building the slot-floor table, the effective per-bank temperature rises
    and the carrier-scale table once per (block, outcome batch) means each
    mapped tensor only pays for a few cheap gathers instead of re-deriving
    the attack layout.
    """

    #: Above this many (scenario x slot) cells the dense slot-floor lookup
    #: table is not worth its memory; fall back to per-scenario ``np.isin``.
    MAX_TABLE_CELLS = 2**26

    def __init__(
        self,
        block: str,
        mapping: WeightMapping,
        outcomes: list[AttackOutcome],
        tuning_compensation_k: float,
    ):
        geometry = mapping.block_geometry(block)
        num_scenarios = len(outcomes)
        effects = [
            outcome.effects.get(block) or BlockEffect() for outcome in outcomes
        ]

        self.slots_off = [effect.slots_off for effect in effects]
        self.slot_table: np.ndarray | None = None
        if any(slots is not None and len(slots) for slots in self.slots_off):
            if num_scenarios * geometry.capacity <= self.MAX_TABLE_CELLS:
                self.slot_table = np.zeros((num_scenarios, geometry.capacity), dtype=bool)
                for index, slots in enumerate(self.slots_off):
                    if slots is not None and len(slots):
                        # Out-of-range slots never match any weight in the
                        # serial ``np.isin`` path; drop them here too so both
                        # paths stay identical on malformed outcomes.
                        slots = np.asarray(slots)
                        slots = slots[(slots >= 0) & (slots < geometry.capacity)]
                        self.slot_table[index, slots] = True

        self.delta_t_per_bank: np.ndarray | None = None
        for index, effect in enumerate(effects):
            if effect.bank_delta_t:
                if self.delta_t_per_bank is None:
                    self.delta_t_per_bank = np.zeros((num_scenarios, geometry.num_banks))
                self.delta_t_per_bank[index] = _effective_bank_delta_t(
                    effect.bank_delta_t,
                    set(effect.attacked_banks),
                    geometry.num_banks,
                    tuning_compensation_k,
                )

        #: Scenario rows carrying a carrier-scale effect, and their stacked
        #: per-column scales (float32, one row per entry of ``scale_rows``).
        self.scale_rows: list[int] = [
            index for index, effect in enumerate(effects) if effect.col_scale is not None
        ]
        self.col_scale_table: np.ndarray | None = None
        if self.scale_rows:
            self.col_scale_table = np.stack(
                [
                    np.asarray(effects[index].col_scale, dtype=np.float32)
                    for index in self.scale_rows
                ]
            )

    def slot_floor_hits(self, slots: np.ndarray) -> np.ndarray | None:
        """Boolean ``(S, W)`` mask of floored weights (None: no slot floors)."""
        if self.slot_table is not None:
            return self.slot_table[:, slots]
        if not any(s is not None and len(s) for s in self.slots_off):
            return None
        hits = np.zeros((len(self.slots_off), slots.size), dtype=bool)
        for index, attacked in enumerate(self.slots_off):
            if attacked is not None and len(attacked):
                hits[index] = np.isin(slots, attacked)
        return hits


def _corrupt_tensor_batch(
    values: np.ndarray,
    mapped: MappedParameter,
    mapping: WeightMapping,
    tables: _BlockAttackTables,
    sensitivity: ThermalSensitivity,
) -> np.ndarray:
    """Apply ``S`` attack outcomes to one mapped tensor as a ``(S, W)`` pass.

    Runs the exact operation sequence of :func:`_corrupt_tensor` with a
    leading scenario axis: slot floors are one masked write, a single
    broadcast :func:`_apply_hotspot` handles every thermal scenario at once,
    and carrier scales are one row-gathered multiply.
    """
    num_scenarios = len(tables.slots_off)
    block = mapped.kind
    flat = np.asarray(values, dtype=np.float32).reshape(-1)
    signs = np.sign(flat)
    signs[signs == 0] = 1.0
    base = mapping.normalize(mapped, flat)
    geometry = mapping.block_geometry(block)
    slots = mapping.slots_for(mapped)
    magnitudes = np.broadcast_to(base, (num_scenarios, base.size)).copy()

    hits = tables.slot_floor_hits(slots)
    if hits is not None:
        magnitudes[hits] = OFF_RESONANCE_MAGNITUDE

    if tables.delta_t_per_bank is not None:
        banks = slots // geometry.cols
        cols = slots % geometry.cols
        magnitudes = _apply_hotspot(
            magnitudes,
            banks,
            cols,
            tables.delta_t_per_bank,
            mapping.config.channel_spacing_nm,
            constants.C_BAND_CENTER_NM / mapping.config.q_factor,
            sensitivity,
        )

    if tables.col_scale_table is not None:
        # Same float32 elementwise multiply as the per-scenario path; rows
        # without a carrier-scale effect are left untouched so kinds that
        # never emit one stay bit-identical whatever shares their batch.
        # The in-place row multiply dispatches through the compute backend
        # (a numba kernel under `fast` when numba is available).
        active_backend().scale_rows(
            magnitudes,
            tables.scale_rows,
            tables.col_scale_table[:, slots % geometry.cols],
        )

    corrupted = mapping.denormalize(mapped, magnitudes, signs)
    return corrupted.reshape((num_scenarios, *mapped.shape)).astype(np.float32)


def _effective_bank_delta_t(
    bank_delta_t: dict[int, float],
    directly_attacked: set[int],
    num_banks: int,
    tuning_compensation_k: float,
) -> np.ndarray:
    """Per-bank effective temperature rise after tuning-loop compensation."""
    delta_t_per_bank = np.zeros(num_banks)
    for bank_index, delta_t in bank_delta_t.items():
        if not 0 <= bank_index < num_banks:
            continue
        effective = float(delta_t)
        if bank_index not in directly_attacked:
            effective = max(0.0, effective - tuning_compensation_k)
        delta_t_per_bank[bank_index] = effective
    return delta_t_per_bank


def _apply_hotspot(
    magnitudes: np.ndarray,
    banks: np.ndarray,
    cols: np.ndarray,
    delta_t_per_bank: np.ndarray,
    spacing_nm: float,
    linewidth_nm: float,
    sensitivity: ThermalSensitivity,
) -> np.ndarray:
    """Vectorized thermal corruption of flattened weight magnitudes.

    ``magnitudes`` is ``(W,)`` for the per-scenario path or ``(S, W)`` for the
    scenario batch; ``delta_t_per_bank`` has the matching ``(num_banks,)`` or
    ``(S, num_banks)`` shape.  Each affected bank's temperature rise is
    converted into a resonance shift (Eq. 2).  The whole-channel part of the
    shift re-pairs every ring in the bank with the carrier ``k`` positions
    later — because the weight-stationary layout assigns consecutive columns
    to consecutive flat indices, carrier ``j``'s magnitude comes from flat
    index ``i - k`` when the source column stays inside the bank, and
    collapses to ≈0 otherwise.  The sub-channel residual shift scales the
    coupled magnitude down following the Lorentzian drop-port response.
    """
    shift_per_kelvin = float(sensitivity.shift_per_kelvin(constants.C_BAND_CENTER_NM))
    if shift_per_kelvin < 0:
        # The re-pairing mask below (``cols >= channel_shift``) encodes the
        # red-shift direction of silicon's positive dn/dT; a blue shift would
        # silently re-pair rings with *earlier* carriers using a wrong mask.
        raise ValidationError(
            "negative thermally induced resonance shift "
            f"({shift_per_kelvin:.3e} nm/K): the hotspot re-pairing model "
            "assumes red shifts (positive dn/dT); negative thermo-optic "
            "materials are not supported by the injection kernel"
        )
    stacked_input = magnitudes.ndim == 2
    magnitudes_2d = np.atleast_2d(magnitudes)
    hot_banks = np.atleast_2d(delta_t_per_bank) > 0
    if not np.any(hot_banks):
        return magnitudes

    # Hotspots only touch a small fraction of the (scenario, weight) grid, so
    # the shift/re-pair/Lorentzian math runs on the affected entries alone —
    # identical elementwise operations, a fraction of the memory traffic.
    hot_rows = np.flatnonzero(hot_banks.any(axis=1))
    sub_rows, flat_index = np.nonzero(hot_banks[hot_rows][:, banks])
    rows = hot_rows[sub_rows]
    delta_t = np.atleast_2d(delta_t_per_bank)[rows, banks[flat_index]]
    shift_nm = shift_per_kelvin * delta_t
    channel_shift = np.floor(shift_nm / spacing_nm + 0.5).astype(np.int64)
    residual_nm = shift_nm - channel_shift * spacing_nm

    size = magnitudes_2d.shape[1]
    source_indices = flat_index - channel_shift
    valid_source = (
        (cols[flat_index] >= channel_shift) & (source_indices >= 0) & (source_indices < size)
    )
    shifted = np.where(
        valid_source,
        magnitudes_2d[rows, np.clip(source_indices, 0, size - 1)],
        OFF_RESONANCE_MAGNITUDE,
    )
    # Partial detuning reduces how much of the (possibly re-paired) magnitude
    # is actually coupled to the detector.  The scatter below writes into the
    # caller-private magnitude buffer after every re-paired source magnitude
    # has been gathered, so in-place mutation is safe.
    lorentz = 1.0 / (1.0 + (2.0 * residual_nm / linewidth_nm) ** 2)
    magnitudes_2d[rows, flat_index] = shifted * lorentz
    return magnitudes if stacked_input else magnitudes_2d[0]
