"""Thermal hotspot attacks (paper §III.B.2, Figs. 5 and 6).

HTs in the thermo-optic tuning circuits overdrive the heaters of the targeted
MR banks.  The resulting steady-state temperature field (computed with the
:mod:`repro.thermal` solver, the HotSpot substitute) raises the temperature of
the attacked banks strongly and of their floorplan neighbours more weakly.
Every affected bank's temperature rise is recorded in the attack outcome; the
injection model converts it into a resonance shift via Eq. 2 and into
corrupted parameter clusters.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.accelerator.config import AcceleratorConfig
from repro.attacks.base import AttackOutcome, BlockEffect
from repro.attacks.registry import AttackKind, register_attack
from repro.utils.rng import default_rng, seed_int
from repro.utils.validation import check_positive

__all__ = ["HotspotAttackConfig", "HotspotAttack", "solve_bank_heat"]


@dataclass(frozen=True)
class HotspotAttackConfig:
    """Physical parameters of the hotspot attack.

    Attributes
    ----------
    heater_power_mw:
        Extra heater power dissipated in each attacked bank.
    baseline_power_mw:
        Nominal per-bank tuning power (background heat).
    min_rise_k:
        Banks whose temperature rise stays below this threshold are
        considered unaffected and are dropped from the outcome.
    attacked_bank_min_rise_k:
        Minimum temperature rise of a *directly attacked* bank.  The attacker
        sizes the trojan's heater drive to guarantee at least a one-channel
        resonance shift regardless of die size or heat sinking, so the solved
        rise of attacked banks is clamped from below to this value (the
        thermal field still determines how strongly neighbours are heated).
    grid_rows, grid_cols:
        Thermal solver grid resolution.
    """

    heater_power_mw: float = field(
        default=300.0, metadata={"bounds": (1.0, 2000.0), "log": True}
    )
    baseline_power_mw: float = field(
        default=1.0, metadata={"bounds": (0.0, 100.0), "search": False}
    )
    min_rise_k: float = field(
        default=1.0, metadata={"bounds": (0.01, 100.0), "search": False}
    )
    attacked_bank_min_rise_k: float = field(
        default=16.0, metadata={"bounds": (0.1, 200.0), "search": False}
    )
    grid_rows: int = field(
        default=48, metadata={"bounds": (4, 512), "search": False}
    )
    grid_cols: int = field(
        default=48, metadata={"bounds": (4, 512), "search": False}
    )

    def __post_init__(self) -> None:
        check_positive(self.heater_power_mw, "heater_power_mw")
        check_positive(self.min_rise_k, "min_rise_k")
        check_positive(self.attacked_bank_min_rise_k, "attacked_bank_min_rise_k")


def solve_bank_heat(
    num_banks: int,
    heated_banks: np.ndarray,
    heater_power_mw: float,
    baseline_power_mw: float,
    grid_rows: int,
    grid_cols: int,
) -> np.ndarray:
    """Per-bank steady-state temperature rise for one block.

    Shared by every thermal attack kind (hotspot heater overdrive, crosstalk
    leakage): the heat sources differ, the substrate physics does not.
    """
    from repro.thermal.floorplan import Floorplan
    from repro.thermal.grid_solver import GridThermalSolver, ThermalSolverConfig
    from repro.thermal.heatmap import simulate_hotspot_attack

    floorplan = Floorplan(num_banks=num_banks)
    solver = GridThermalSolver(
        ThermalSolverConfig(grid_rows=grid_rows, grid_cols=grid_cols)
    )
    result = simulate_hotspot_attack(
        floorplan,
        attacked_banks=[int(b) for b in heated_banks],
        heater_power_mw=heater_power_mw,
        baseline_power_mw=baseline_power_mw,
        solver=solver,
    )
    return result.bank_temperature_rise_k


@register_attack("hotspot")
class HotspotAttack(AttackKind):
    """Randomly placed heater-overdrive attacks on whole MR banks.

    Parameters
    ----------
    spec:
        Attack specification; ``spec.kind`` must be ``"hotspot"``.
    params:
        Physical attack parameters (heater power, thermal grid).
    """

    params_class = HotspotAttackConfig
    summary = "TO-circuit HTs overdrive bank heaters; hotspots shift whole banks"

    @property
    def attack_config(self) -> HotspotAttackConfig:
        """Alias kept for callers predating the registry API."""
        return self.params

    def sample(
        self,
        config: AcceleratorConfig,
        seed: int | np.random.Generator | None = 0,
    ) -> AttackOutcome:
        """Draw one random bank placement and solve the thermal field.

        For each targeted block, ``round(fraction * num_banks)`` banks are
        chosen uniformly at random and their heaters overdriven; the solver
        then yields the per-bank temperature rise across the whole block.
        The recorded MR footprint is ``attacked banks x cols``.
        """
        rng = default_rng(seed)
        outcome = AttackOutcome(spec=self.spec, seed=seed_int(seed))
        for block in self.spec.blocks:
            geometry = config.block(block)
            num_banks = max(1, int(round(self.spec.fraction * geometry.num_banks)))
            num_banks = min(num_banks, geometry.num_banks)
            attacked = np.sort(rng.choice(geometry.num_banks, size=num_banks, replace=False))
            heat = solve_bank_heat(
                geometry.num_banks,
                attacked,
                self.params.heater_power_mw,
                self.params.baseline_power_mw,
                self.params.grid_rows,
                self.params.grid_cols,
            )
            heat[attacked] = np.maximum(
                heat[attacked], self.params.attacked_bank_min_rise_k
            )
            affected = {
                int(bank): float(rise)
                for bank, rise in enumerate(heat)
                if rise >= self.params.min_rise_k
            }
            outcome.add_effect(
                block,
                BlockEffect(
                    bank_delta_t=affected,
                    attacked_banks=tuple(int(b) for b in attacked),
                ),
                attacked_mrs=num_banks * geometry.cols,
            )
        return outcome
