"""Attack scenario grid generation (paper §IV).

The susceptibility analysis evaluates nine scenarios per attack kind: the
fractions {1%, 5%, 10%} applied to the CONV block, the FC block, and the full
accelerator (CONV + FC), each repeated for 10 uniformly random trojan
placements.  :func:`generate_scenarios` produces that grid (or any reduced or
extended version of it — any registered attack kind is a valid axis value)
and :func:`sample_outcome` materializes a single scenario into a placed
:class:`~repro.attacks.base.AttackOutcome` through the attack registry,
optionally with per-kind physical parameters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from repro.accelerator.config import AcceleratorConfig
from repro.attacks.base import BLOCKS, PAPER_KINDS, AttackOutcome, AttackSpec
from repro.attacks.registry import get_attack_kind
from repro.utils.rng import RngFactory

__all__ = ["AttackScenario", "generate_scenarios", "sample_outcome",
           "DEFAULT_FRACTIONS", "DEFAULT_NUM_PLACEMENTS"]

#: Attack intensities evaluated in the paper.
DEFAULT_FRACTIONS = (0.01, 0.05, 0.10)

#: Random trojan placements simulated per intensity in the paper.
DEFAULT_NUM_PLACEMENTS = 10


@dataclass(frozen=True)
class AttackScenario:
    """One point of the attack grid: a spec plus a placement seed."""

    spec: AttackSpec
    placement: int
    seed: int

    def label(self) -> str:
        """E.g. ``hotspot-conv-5%#3``."""
        return f"{self.spec.label()}#{self.placement}"


def generate_scenarios(
    kinds: Sequence[str] = PAPER_KINDS,
    blocks: Sequence[str] = BLOCKS,
    fractions: Sequence[float] = DEFAULT_FRACTIONS,
    num_placements: int = DEFAULT_NUM_PLACEMENTS,
    master_seed: int = 0,
) -> list[AttackScenario]:
    """Generate the full attack grid over any registered kinds.

    Seeds are derived deterministically from ``master_seed`` and the scenario
    coordinates, so the same grid is produced on every call; because a
    scenario's seed hashes its own label only, adding kinds to the grid never
    perturbs the placements of the others.
    """
    factory = RngFactory(seed=master_seed)
    scenarios: list[AttackScenario] = []
    for kind in kinds:
        for block in blocks:
            for fraction in fractions:
                for placement in range(num_placements):
                    spec = AttackSpec(kind=kind, target_block=block, fraction=fraction)
                    seed = factory.child_seed(f"{spec.label()}#{placement}")
                    scenarios.append(AttackScenario(spec=spec, placement=placement, seed=seed))
    return scenarios


def sample_outcome(
    scenario: AttackScenario,
    config: AcceleratorConfig,
    hotspot_config: object | None = None,
    kind_params: Mapping[str, object] | None = None,
) -> AttackOutcome:
    """Materialize one scenario into a placed attack outcome.

    ``kind_params`` maps attack-kind names to physical parameters (a params
    dataclass instance or a mapping of overrides) for the kinds that take
    them.  Wrapper kinds see the whole mapping through
    :meth:`~repro.attacks.registry.AttackKind.contextualize_params`, so e.g.
    ``triggered(base=hotspot)`` inherits the grid's hotspot parameters.
    ``hotspot_config`` is a convenience alias for ``kind_params["hotspot"]``
    kept for the paper-grid call sites.
    """
    params_by_kind = dict(kind_params or {})
    if hotspot_config is not None:
        params_by_kind.setdefault("hotspot", hotspot_config)
    kind_cls = get_attack_kind(scenario.spec.kind)
    params = kind_cls.contextualize_params(
        params_by_kind.get(scenario.spec.kind), params_by_kind
    )
    return kind_cls(scenario.spec, params).sample(config, seed=scenario.seed)


def scenarios_by_spec(scenarios: Iterable[AttackScenario]) -> dict[str, list[AttackScenario]]:
    """Group scenarios by their spec label (used by the reporting code)."""
    grouped: dict[str, list[AttackScenario]] = {}
    for scenario in scenarios:
        grouped.setdefault(scenario.spec.label(), []).append(scenario)
    return grouped
