"""Attack scenario grid generation (paper §IV).

The susceptibility analysis evaluates nine scenarios per attack kind: the
fractions {1%, 5%, 10%} applied to the CONV block, the FC block, and the full
accelerator (CONV + FC), each repeated for 10 uniformly random trojan
placements.  :func:`generate_scenarios` produces that grid (or any reduced
version of it) and :func:`sample_outcome` materializes a single scenario into
a placed :class:`~repro.attacks.base.AttackOutcome`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.accelerator.config import AcceleratorConfig
from repro.attacks.actuation import ActuationAttack
from repro.attacks.base import BLOCKS, KINDS, AttackOutcome, AttackSpec
from repro.attacks.hotspot import HotspotAttack, HotspotAttackConfig
from repro.utils.rng import RngFactory

__all__ = ["AttackScenario", "generate_scenarios", "sample_outcome",
           "DEFAULT_FRACTIONS", "DEFAULT_NUM_PLACEMENTS"]

#: Attack intensities evaluated in the paper.
DEFAULT_FRACTIONS = (0.01, 0.05, 0.10)

#: Random trojan placements simulated per intensity in the paper.
DEFAULT_NUM_PLACEMENTS = 10


@dataclass(frozen=True)
class AttackScenario:
    """One point of the attack grid: a spec plus a placement seed."""

    spec: AttackSpec
    placement: int
    seed: int

    def label(self) -> str:
        """E.g. ``hotspot-conv-5%#3``."""
        return f"{self.spec.label()}#{self.placement}"


def generate_scenarios(
    kinds: Sequence[str] = KINDS,
    blocks: Sequence[str] = BLOCKS,
    fractions: Sequence[float] = DEFAULT_FRACTIONS,
    num_placements: int = DEFAULT_NUM_PLACEMENTS,
    master_seed: int = 0,
) -> list[AttackScenario]:
    """Generate the full attack grid.

    Seeds are derived deterministically from ``master_seed`` and the scenario
    coordinates, so the same grid is produced on every call.
    """
    factory = RngFactory(seed=master_seed)
    scenarios: list[AttackScenario] = []
    for kind in kinds:
        for block in blocks:
            for fraction in fractions:
                for placement in range(num_placements):
                    spec = AttackSpec(kind=kind, target_block=block, fraction=fraction)
                    seed = factory.child_seed(f"{spec.label()}#{placement}")
                    scenarios.append(AttackScenario(spec=spec, placement=placement, seed=seed))
    return scenarios


def sample_outcome(
    scenario: AttackScenario,
    config: AcceleratorConfig,
    hotspot_config: HotspotAttackConfig | None = None,
) -> AttackOutcome:
    """Materialize one scenario into a placed attack outcome."""
    if scenario.spec.kind == "actuation":
        attack = ActuationAttack(scenario.spec)
        return attack.sample(config, seed=scenario.seed)
    attack = HotspotAttack(scenario.spec, config=hotspot_config)
    return attack.sample(config, seed=scenario.seed)


def scenarios_by_spec(scenarios: Iterable[AttackScenario]) -> dict[str, list[AttackScenario]]:
    """Group scenarios by their spec label (used by the reporting code)."""
    grouped: dict[str, list[AttackScenario]] = {}
    for scenario in scenarios:
        grouped.setdefault(scenario.spec.label(), []).append(scenario)
    return grouped
