"""Common attack data structures: specs, composable effects, outcomes.

An attack *spec* says what the attacker does (kind, targeted block, attacked
fraction); a placed *outcome* says what happened to the substrate.  Outcomes
are expressed in terms of kind-agnostic :class:`BlockEffect` primitives —
slot masks, per-bank temperature rises, per-wavelength carrier scales — so
the injection kernels in :mod:`repro.attacks.injection` and the scenario
batching in :class:`~repro.accelerator.inference.AttackedInferenceEngine`
never dispatch on the attack kind: any registered kind (see
:mod:`repro.attacks.registry`) that can describe itself with these
primitives rides the same vectorized paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.attacks import registry
from repro.utils.validation import ValidationError, check_fraction, check_in_choices

__all__ = ["PAPER_KINDS", "KINDS", "BLOCKS", "AttackSpec", "BlockEffect", "AttackOutcome"]

#: The two attack kinds evaluated in the paper (the default study grid).
PAPER_KINDS = ("actuation", "hotspot")

#: Backwards-compatible alias; arbitrary kinds come from the attack registry.
KINDS = PAPER_KINDS

#: Supported attack targets: the CONV block, the FC block, or both.
BLOCKS = ("conv", "fc", "both")


@dataclass(frozen=True)
class AttackSpec:
    """What the attacker does (before random placement).

    Attributes
    ----------
    kind:
        Any registered attack kind (``python -m repro attacks`` lists them;
        the paper's kinds are ``"actuation"`` and ``"hotspot"``).
    target_block:
        ``"conv"``, ``"fc"`` or ``"both"``.
    fraction:
        Fraction of the targeted block's resources under attack (the paper's
        1%, 5%, 10%).  Each kind documents which resource the fraction
        counts: MR slots (actuation), MR banks (hotspot, crosstalk) or WDM
        channels (laser_power).
    """

    kind: str
    target_block: str
    fraction: float

    def __post_init__(self) -> None:
        if not registry.is_registered(self.kind):
            raise ValidationError(
                f"kind must be a registered attack kind "
                f"{sorted(registry.registered_kinds())}, got {self.kind!r}"
            )
        check_in_choices(self.target_block, "target_block", BLOCKS)
        check_fraction(self.fraction, "fraction")

    @property
    def blocks(self) -> tuple[str, ...]:
        """The concrete blocks touched by this spec."""
        if self.target_block == "both":
            return ("conv", "fc")
        return (self.target_block,)

    def label(self) -> str:
        """Short label used in result tables, e.g. ``hotspot-conv-5%``."""
        return f"{self.kind}-{self.target_block}-{round(self.fraction * 100)}%"


@dataclass
class BlockEffect:
    """Composable injection effects on one accelerator block.

    The three primitives cover every supported corruption mechanism and are
    merged by the injection kernel in a fixed order (slot floors, then
    thermal re-pairing, then carrier scaling):

    Attributes
    ----------
    slots_off:
        Flat MR slot indices forced to the off-resonance floor (the hosted
        magnitude collapses to ≈0).
    bank_delta_t:
        ``flat bank index -> temperature rise [K]``; converted into channel
        re-pairings plus a Lorentzian detuning scale via Eq. 2.
    attacked_banks:
        Bank indices whose heaters the trojan controls directly (subset of
        ``bank_delta_t`` keys).  Other heated banks are partially protected
        by their own thermo-optic tuning loops.
    col_scale:
        Per-wavelength (per-column) multiplicative magnitude scale across
        every bank of the block; ``None`` means all ones.
    """

    slots_off: np.ndarray | None = None
    bank_delta_t: dict[int, float] = field(default_factory=dict)
    attacked_banks: tuple[int, ...] = ()
    col_scale: np.ndarray | None = None

    def is_empty(self) -> bool:
        """True when applying this effect is a no-op."""
        has_slots = self.slots_off is not None and len(self.slots_off) > 0
        has_scale = self.col_scale is not None and bool(
            np.any(np.asarray(self.col_scale) != 1.0)
        )
        return not has_slots and not self.bank_delta_t and not has_scale

    def merged_with(self, other: "BlockEffect") -> "BlockEffect":
        """Compose two effects on the same block.

        Slot floors union, temperature rises add (thermal superposition,
        union of directly controlled banks) and carrier scales multiply —
        the semantics a wrapper kind (e.g. ``triggered``) relies on.
        """
        slots_off = self.slots_off
        if other.slots_off is not None and len(other.slots_off):
            slots_off = (
                np.union1d(slots_off, other.slots_off)
                if slots_off is not None and len(slots_off)
                else np.asarray(other.slots_off)
            )
        bank_delta_t = dict(self.bank_delta_t)
        for bank, rise in other.bank_delta_t.items():
            bank_delta_t[bank] = bank_delta_t.get(bank, 0.0) + float(rise)
        col_scale = self.col_scale
        if other.col_scale is not None:
            col_scale = (
                np.asarray(other.col_scale, dtype=np.float64)
                if col_scale is None
                else np.asarray(col_scale, dtype=np.float64)
                * np.asarray(other.col_scale, dtype=np.float64)
            )
        return BlockEffect(
            slots_off=slots_off,
            bank_delta_t=bank_delta_t,
            attacked_banks=tuple(sorted({*self.attacked_banks, *other.attacked_banks})),
            col_scale=col_scale,
        )


@dataclass
class AttackOutcome:
    """A concrete (placed) attack instance ready for injection.

    Attributes
    ----------
    spec:
        The attack specification this outcome realizes.
    seed:
        Random seed used for the placement.
    effects:
        Per-block :class:`BlockEffect` describing the substrate corruption.
    attacked_mrs:
        Per-block count of MR slots in the trojan's direct footprint,
        recorded by the sampling kind (each kind documents its counting
        rule, e.g. ``attacked banks x cols`` for hotspot attacks).
    """

    spec: AttackSpec
    seed: int = 0
    effects: dict[str, BlockEffect] = field(default_factory=dict)
    attacked_mrs: dict[str, int] = field(default_factory=dict)

    def effect(self, block: str) -> BlockEffect:
        """The block's effect, created empty on first access (for builders)."""
        return self.effects.setdefault(block, BlockEffect())

    def add_effect(
        self, block: str, effect: BlockEffect, attacked_mrs: int | None = None
    ) -> None:
        """Merge ``effect`` into ``block`` and accumulate the MR footprint."""
        existing = self.effects.get(block)
        self.effects[block] = (
            effect if existing is None else existing.merged_with(effect)
        )
        if attacked_mrs is not None:
            self.attacked_mrs[block] = self.attacked_mrs.get(block, 0) + int(attacked_mrs)

    def touches(self, block: str) -> bool:
        """Whether this outcome corrupts any mapped weight of ``block``."""
        effect = self.effects.get(block)
        return effect is not None and not effect.is_empty()

    def touched_blocks(self) -> tuple[str, ...]:
        """Blocks whose mapped weights this outcome actually corrupts."""
        return tuple(block for block in ("conv", "fc") if self.touches(block))

    def num_attacked_mrs(self, block: str) -> int:
        """Number of MRs in the trojan's direct footprint within ``block``.

        Outcomes sampled through :meth:`AttackKind.sample
        <repro.attacks.registry.AttackKind.sample>` always record this count.
        For hand-built outcomes the count falls back to the slot-mask size
        when that is the only effect; otherwise the footprint is ambiguous
        and a :class:`~repro.utils.validation.ValidationError` is raised.
        """
        if block in self.attacked_mrs:
            return self.attacked_mrs[block]
        effect = self.effects.get(block)
        if effect is None or effect.is_empty():
            return 0
        if (
            not effect.bank_delta_t
            and effect.col_scale is None
            and effect.slots_off is not None
        ):
            return int(len(effect.slots_off))
        raise ValidationError(
            f"outcome records no attacked-MR count for block {block!r}; "
            "sample through an AttackKind or record it via "
            "add_effect(..., attacked_mrs=...)"
        )

    def is_empty(self) -> bool:
        """True when the outcome touches no MRs at all (e.g. dormant trojans)."""
        return all(effect.is_empty() for effect in self.effects.values())
