"""Common attack data structures."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.utils.validation import check_fraction, check_in_choices

__all__ = ["KINDS", "BLOCKS", "AttackSpec", "AttackOutcome"]

#: Supported attack kinds.
KINDS = ("actuation", "hotspot")

#: Supported attack targets: the CONV block, the FC block, or both.
BLOCKS = ("conv", "fc", "both")


@dataclass(frozen=True)
class AttackSpec:
    """What the attacker does (before random placement).

    Attributes
    ----------
    kind:
        ``"actuation"`` (individual MRs off-resonance) or ``"hotspot"``
        (heaters of whole banks overdriven).
    target_block:
        ``"conv"``, ``"fc"`` or ``"both"``.
    fraction:
        Fraction of the targeted block's MRs under attack (the paper's 1%,
        5%, 10%).  For hotspot attacks the corresponding fraction of MR
        *banks* is attacked, which targets the same fraction of MRs since a
        bank is one row of MRs.
    """

    kind: str
    target_block: str
    fraction: float

    def __post_init__(self) -> None:
        check_in_choices(self.kind, "kind", KINDS)
        check_in_choices(self.target_block, "target_block", BLOCKS)
        check_fraction(self.fraction, "fraction")

    @property
    def blocks(self) -> tuple[str, ...]:
        """The concrete blocks touched by this spec."""
        if self.target_block == "both":
            return ("conv", "fc")
        return (self.target_block,)

    def label(self) -> str:
        """Short label used in result tables, e.g. ``hotspot-conv-5%``."""
        return f"{self.kind}-{self.target_block}-{round(self.fraction * 100)}%"


@dataclass
class AttackOutcome:
    """A concrete (placed) attack instance ready for injection.

    Attributes
    ----------
    spec:
        The attack specification this outcome realizes.
    seed:
        Random seed used for the placement.
    actuation_slots:
        For each block name, the flat MR slot indices forced off-resonance.
    bank_delta_t:
        For each block name, a mapping ``flat bank index -> temperature rise
        [K]`` covering both directly attacked banks and heated neighbours.
    attacked_banks:
        For each block name, the bank indices whose heaters were directly
        overdriven (subset of ``bank_delta_t`` keys).
    """

    spec: AttackSpec
    seed: int = 0
    actuation_slots: dict[str, np.ndarray] = field(default_factory=dict)
    bank_delta_t: dict[str, dict[int, float]] = field(default_factory=dict)
    attacked_banks: dict[str, tuple[int, ...]] = field(default_factory=dict)

    def num_attacked_mrs(self, block: str, cols: int | None = None) -> int:
        """Number of directly attacked MRs in ``block``.

        For hotspot outcomes the count is ``attacked banks x cols`` and
        ``cols`` must be provided.
        """
        if self.spec.kind == "actuation":
            return int(len(self.actuation_slots.get(block, ())))
        if cols is None:
            raise ValueError("cols is required to count hotspot-attacked MRs")
        return len(self.attacked_banks.get(block, ())) * cols

    def is_empty(self) -> bool:
        """True when the outcome touches no MRs at all."""
        has_actuation = any(len(v) for v in self.actuation_slots.values())
        has_thermal = any(len(v) for v in self.bank_delta_t.values())
        return not has_actuation and not has_thermal
