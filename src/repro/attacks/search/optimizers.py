"""Deterministic black-box optimizers over attack search spaces.

All optimizers speak the same ask/tell protocol in the normalized unit cube
of a :class:`~repro.attacks.search.space.SearchSpace`:

- :meth:`SearchOptimizer.ask` proposes a generation of :class:`Candidate`
  objects (decoded values plus the placement count each must be averaged
  over);
- :meth:`SearchOptimizer.tell` feeds back one scalar fitness per candidate
  (the driver uses accuracy drop per attacked MR).

Everything is pure NumPy and seeded through :class:`repro.utils.rng
.RngFactory`, so a fixed seed yields a byte-identical proposal trajectory
regardless of how the evaluations were executed (serial, process pool, or a
``repro serve`` federation).
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.attacks.search.space import SearchSpace
from repro.utils.rng import RngFactory, default_rng
from repro.utils.validation import ValidationError, check_positive, check_positive_int

__all__ = [
    "Candidate",
    "SearchOptimizer",
    "RandomSearch",
    "MuPlusLambdaES",
    "SuccessiveHalving",
    "make_optimizer",
    "OPTIMIZERS",
]


@dataclass(frozen=True)
class Candidate:
    """One proposed attack configuration.

    ``vector`` is the optimizer's internal unit-cube coordinate (kept so
    evolutionary selection can mutate survivors); ``values`` is its decoded
    ``{"fraction", "params"}`` form; ``placements`` is the number of random
    trojan placements the candidate's fitness is averaged over.
    """

    vector: tuple
    values: dict
    placements: int

    @property
    def cost(self) -> int:
        """Scenario evaluations this candidate consumes from the budget."""
        return self.placements


class SearchOptimizer(ABC):
    """Base ask/tell optimizer; subclasses set :attr:`name`."""

    name = ""

    def __init__(
        self,
        space: SearchSpace,
        seed: int = 0,
        generation_size: int = 8,
        placements: int = 2,
    ):
        check_positive_int(generation_size, "generation_size")
        check_positive_int(placements, "placements")
        self.space = space
        self.generation_size = int(generation_size)
        self.placements = int(placements)
        self._rng = default_rng(
            RngFactory(int(seed)).child_seed(f"attacks.search.{self.name}")
        )

    # ------------------------------------------------------------- protocol
    @abstractmethod
    def ask(self) -> list:
        """Propose the next generation of candidates."""

    def tell(self, candidates: list, fitnesses: list) -> None:
        """Feed back one fitness per asked candidate (same order)."""

    @property
    def done(self) -> bool:
        """True once the optimizer has no further generations to propose."""
        return False

    # -------------------------------------------------------------- helpers
    def _candidate(self, vector: np.ndarray, placements: int | None = None) -> Candidate:
        vector = np.clip(np.asarray(vector, dtype=np.float64), 0.0, 1.0)
        return Candidate(
            vector=tuple(float(v) for v in vector),
            values=self.space.decode(vector),
            placements=int(placements or self.placements),
        )

    def _random_vectors(self, count: int) -> np.ndarray:
        return self._rng.random((count, self.space.size))


class RandomSearch(SearchOptimizer):
    """Uniform sampling of the unit cube — the paper-grid-agnostic baseline."""

    name = "random"

    def ask(self) -> list:
        return [self._candidate(v) for v in self._random_vectors(self.generation_size)]


class MuPlusLambdaES(SearchOptimizer):
    """(mu+lambda) evolutionary strategy with Gaussian mutation.

    Each generation proposes ``lambda = generation_size`` children mutated
    from the ``mu`` best individuals seen so far (parents included in the
    selection pool, hence *plus*).  Mutation adds ``sigma``-scaled Gaussian
    noise in the unit cube; categorical dimensions are resampled uniformly
    with probability ``categorical_rate``.
    """

    name = "evolutionary"

    def __init__(
        self,
        space: SearchSpace,
        seed: int = 0,
        generation_size: int = 8,
        placements: int = 2,
        mu: int | None = None,
        sigma: float = 0.2,
        categorical_rate: float = 0.2,
    ):
        super().__init__(space, seed=seed, generation_size=generation_size, placements=placements)
        self.mu = int(mu) if mu is not None else max(1, self.generation_size // 4)
        check_positive_int(self.mu, "mu")
        check_positive(sigma, "sigma")
        self.sigma = float(sigma)
        self.categorical_rate = float(categorical_rate)
        self._categorical = np.array(
            [dim.kind == "categorical" for dim in space.dims], dtype=bool
        )
        self._parents: list = []  # (vector ndarray, fitness) best-first

    def ask(self) -> list:
        if not self._parents:
            return [self._candidate(v) for v in self._random_vectors(self.generation_size)]
        children = []
        for _ in range(self.generation_size):
            parent = self._parents[int(self._rng.integers(len(self._parents)))][0]
            child = parent + self.sigma * self._rng.standard_normal(self.space.size)
            if self._categorical.any():
                resample = self._rng.random(self.space.size) < self.categorical_rate
                fresh = self._rng.random(self.space.size)
                child = np.where(self._categorical & resample, fresh, child)
            children.append(self._candidate(child))
        return children

    def tell(self, candidates: list, fitnesses: list) -> None:
        pool = list(self._parents) + [
            (np.asarray(c.vector, dtype=np.float64), float(f))
            for c, f in zip(candidates, fitnesses)
        ]
        order = np.argsort(-np.array([f for _, f in pool]), kind="stable")
        self._parents = [pool[int(i)] for i in order[: self.mu]]


class SuccessiveHalving(SearchOptimizer):
    """Successive halving over placement fidelity.

    Rung 0 evaluates ``generation_size`` random candidates at the base
    placement count; each following rung keeps the top ``1/eta`` fraction and
    re-evaluates the survivors at ``eta``-times more placements (a different
    cache key, so higher-fidelity re-evaluations are genuine new work).  The
    schedule ends when a single survivor has been evaluated at the top rung.
    """

    name = "halving"

    def __init__(
        self,
        space: SearchSpace,
        seed: int = 0,
        generation_size: int = 8,
        placements: int = 2,
        eta: int = 2,
    ):
        super().__init__(space, seed=seed, generation_size=generation_size, placements=placements)
        if eta < 2:
            raise ValidationError(f"eta must be >= 2, got {eta}")
        self.eta = int(eta)
        self._rung = 0
        self._survivors: list | None = None  # vectors carried to the next rung
        self._done = False

    @property
    def done(self) -> bool:
        return self._done

    def ask(self) -> list:
        if self._done:
            return []
        placements = self.placements * self.eta**self._rung
        if self._rung == 0:
            vectors = list(self._random_vectors(self.generation_size))
        else:
            vectors = list(self._survivors or [])
        return [self._candidate(v, placements=placements) for v in vectors]

    def tell(self, candidates: list, fitnesses: list) -> None:
        if not candidates:
            self._done = True
            return
        order = np.argsort(-np.asarray(fitnesses, dtype=np.float64), kind="stable")
        keep = max(1, int(math.ceil(len(candidates) / self.eta)))
        self._survivors = [
            np.asarray(candidates[int(i)].vector, dtype=np.float64)
            for i in order[:keep]
        ]
        if len(candidates) <= 1:
            self._done = True
        self._rung += 1


OPTIMIZERS = {
    cls.name: cls for cls in (RandomSearch, MuPlusLambdaES, SuccessiveHalving)
}


def make_optimizer(name: str, space: SearchSpace, **kwargs) -> SearchOptimizer:
    """Instantiate a registered optimizer by name."""
    if name not in OPTIMIZERS:
        raise ValidationError(
            f"unknown optimizer {name!r}; available: {sorted(OPTIMIZERS)}"
        )
    cls = OPTIMIZERS[name]
    if cls is not MuPlusLambdaES:
        kwargs.pop("mu", None)
        kwargs.pop("sigma", None)
    if cls is not SuccessiveHalving:
        kwargs.pop("eta", None)
    return cls(space, **kwargs)
