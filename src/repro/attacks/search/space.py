"""Search-space adapter: attack-kind params dataclasses → bounded dimensions.

Every registered attack kind declares per-field ``bounds``/``choices``
metadata on its params dataclass (see
:data:`repro.attacks.registry.PARAM_METADATA_KEYS`).  This module turns that
metadata into a :class:`SearchSpace` — an ordered tuple of bounded
continuous/integer/categorical :class:`Dimension` objects plus the
spec-level ``fraction`` knob — that the optimizers in
:mod:`repro.attacks.search.optimizers` explore in the normalized unit cube.

Decoding is deterministic and *quantized*: continuous values are rounded to
six significant digits so a decoded candidate round-trips bit-identically
through canonical JSON, which is what makes the engine's content-addressed
result cache line up across interrupted and resumed searches.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.attacks.registry import get_attack_kind
from repro.utils.validation import ValidationError

__all__ = ["Dimension", "SearchSpace", "space_for_kind", "quantize"]

#: Default spec-level attacked-fraction range explored by every search.
DEFAULT_FRACTION_RANGE = (0.005, 0.10)


def quantize(value: float) -> float:
    """Round to 6 significant digits for stable JSON cache keys."""
    if value == 0.0 or not math.isfinite(value):
        return float(value)
    return float(f"{value:.6g}")


@dataclass(frozen=True)
class Dimension:
    """One bounded search dimension in the normalized unit interval.

    Attributes
    ----------
    name:
        ``"fraction"`` for the spec-level knob, otherwise the params-dataclass
        field name.
    kind:
        ``"continuous"``, ``"integer"`` or ``"categorical"``.
    lower, upper:
        Inclusive bounds (continuous/integer dimensions).
    choices:
        Allowed values (categorical dimensions).
    log:
        Sample the bounded range logarithmically (requires ``lower > 0``).
    """

    name: str
    kind: str = "continuous"
    lower: float = 0.0
    upper: float = 1.0
    choices: tuple = ()
    log: bool = False

    def __post_init__(self) -> None:
        if self.kind not in ("continuous", "integer", "categorical"):
            raise ValidationError(f"unknown dimension kind {self.kind!r}")
        if self.kind == "categorical":
            if not self.choices:
                raise ValidationError(f"dimension {self.name!r} has no choices")
        elif not (self.lower < self.upper):
            raise ValidationError(
                f"dimension {self.name!r} needs lower < upper, "
                f"got [{self.lower}, {self.upper}]"
            )
        if self.log and self.lower <= 0:
            raise ValidationError(
                f"log dimension {self.name!r} requires lower > 0, got {self.lower}"
            )

    def decode(self, u: float) -> object:
        """Map a unit-cube coordinate to a concrete parameter value."""
        u = min(1.0, max(0.0, float(u)))
        if self.kind == "categorical":
            index = min(int(u * len(self.choices)), len(self.choices) - 1)
            return self.choices[index]
        if self.log:
            value = math.exp(
                math.log(self.lower)
                + u * (math.log(self.upper) - math.log(self.lower))
            )
        else:
            value = self.lower + u * (self.upper - self.lower)
        if self.kind == "integer":
            return int(round(min(self.upper, max(self.lower, value))))
        return quantize(min(self.upper, max(self.lower, value)))


@dataclass(frozen=True)
class SearchSpace:
    """Ordered search dimensions for one attack kind."""

    kind: str
    dims: tuple

    @property
    def size(self) -> int:
        return len(self.dims)

    def decode(self, u: np.ndarray) -> dict:
        """Decode a unit-cube vector into ``{"fraction": ..., "params": {...}}``.

        The ``params`` dict holds only searched fields (everything else keeps
        the kind's defaults), so candidate identities stay minimal and stable
        in the cache.
        """
        u = np.asarray(u, dtype=np.float64)
        if u.shape != (self.size,):
            raise ValidationError(
                f"expected a vector of {self.size} coordinates, got shape {u.shape}"
            )
        fraction = None
        params: dict[str, object] = {}
        for dim, coord in zip(self.dims, u):
            value = dim.decode(float(coord))
            if dim.name == "fraction":
                fraction = value
            else:
                params[dim.name] = value
        return {"fraction": fraction, "params": params}


def space_for_kind(
    kind: str,
    fraction_range: tuple = DEFAULT_FRACTION_RANGE,
) -> SearchSpace:
    """Derive the search space of a registered attack kind.

    The space always leads with the spec-level ``fraction`` dimension; the
    remaining dimensions come from the kind's searchable params fields (the
    ones whose dataclass metadata declares ``bounds`` or ``choices`` without
    ``search: False``).
    """
    lo, hi = (float(fraction_range[0]), float(fraction_range[1]))
    if not (0.0 < lo < hi <= 1.0):
        raise ValidationError(
            f"fraction_range must satisfy 0 < lo < hi <= 1, got ({lo}, {hi})"
        )
    dims = [Dimension(name="fraction", kind="continuous", lower=lo, upper=hi)]
    info = get_attack_kind(kind).param_info()
    for name, entry in info.items():
        if not entry.get("searchable"):
            continue
        if "choices" in entry:
            dims.append(
                Dimension(name=name, kind="categorical", choices=tuple(entry["choices"]))
            )
        elif "bounds" in entry:
            blo, bhi = entry["bounds"]
            dims.append(
                Dimension(
                    name=name,
                    kind="integer" if entry.get("integer") else "continuous",
                    lower=float(blo),
                    upper=float(bhi),
                    log=bool(entry.get("log")),
                )
            )
    return SearchSpace(kind=kind, dims=tuple(dims))
