"""The attack-search driver: optimizer loop, evaluators, Pareto reduction.

:class:`AttackSearch` ties one seeded optimizer to one (model,
mitigation-variant, attack-kind) workload and spends a fixed budget of
*scenario evaluations* (each candidate costs its placement count) finding
configurations that maximize accuracy drop per attacked MR.  Every candidate
is an ordinary ``fig7_candidate`` :class:`~repro.engine.spec.RunSpec`, so
every evaluation flows through the engine's content-addressed result cache:
an interrupted search re-run under the same seed re-evaluates only the
cache-missing candidates and lands on a byte-identical trajectory and front.

Three interchangeable evaluation backends produce bit-identical records:

``batched``
    The default local path — each optimizer generation's cache-missing
    candidates are concatenated into **one** stacked
    :meth:`AttackedInferenceEngine.accuracy_under_attacks` forward.
``campaign``
    A :class:`~repro.engine.campaign.Campaign` per generation (serial or
    process-pool), sharing one long-lived executor across generations.
``serve``
    Each generation is submitted to a ``repro serve`` coordinator as one
    zipped sweep, so searches run on the worker federation and inherit its
    retry/quarantine policy.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from datetime import datetime, timezone
from time import perf_counter

from repro.attacks.search.optimizers import OPTIMIZERS, make_optimizer
from repro.attacks.search.pareto import ParetoPoint, front_payload, pareto_front
from repro.attacks.search.space import space_for_kind
from repro.utils.validation import ValidationError, check_positive_int
from repro.version import __version__

__all__ = ["AttackSearchConfig", "AttackSearchResult", "AttackSearch", "SearchError"]


class SearchError(RuntimeError):
    """A candidate evaluation failed; the search cannot continue."""


@dataclass(frozen=True)
class AttackSearchConfig:
    """Everything that identifies one attack search (all JSON-serializable)."""

    kind: str = "hotspot"
    model: str = "cnn_mnist"
    variant: str = ""
    block: str = "both"
    optimizer: str = "random"
    budget: int = 32
    generation_size: int = 8
    placements: int = 2
    fraction_range: tuple = (0.005, 0.10)
    sigma: float = 0.2
    mu: int | None = None
    eta: int = 2
    quantize_weights: bool = True
    checkpoint_cache: bool = False
    seed: int = 0

    def __post_init__(self) -> None:
        check_positive_int(self.budget, "budget")
        check_positive_int(self.generation_size, "generation_size")
        check_positive_int(self.placements, "placements")
        if self.optimizer not in OPTIMIZERS:
            raise ValidationError(
                f"unknown optimizer {self.optimizer!r}; available: {sorted(OPTIMIZERS)}"
            )
        object.__setattr__(
            self,
            "fraction_range",
            (float(self.fraction_range[0]), float(self.fraction_range[1])),
        )


@dataclass
class AttackSearchResult:
    """Outcome of one search: trajectory, Pareto front, execution stats."""

    config: AttackSearchConfig
    baseline: float = 0.0
    candidates: list = field(default_factory=list)  # payload dicts, eval order
    front: list = field(default_factory=list)  # ParetoPoint, stealth-ascending
    evaluations: int = 0  # scenario evaluations consumed
    generations: int = 0
    executed: int = 0  # candidates actually computed this run
    cache_hits: int = 0  # candidates served from the result cache
    duration_s: float = 0.0

    @property
    def best(self) -> dict | None:
        """The candidate with the highest damage per attacked MR."""
        if not self.candidates:
            return None
        return max(self.candidates, key=lambda c: (c["damage_per_mr"], -c["num_attacked_mrs"]))

    def to_payload(self) -> dict:
        """Deterministic summary (no wall-clock or cache-dependent fields)."""
        compact = [
            {
                key: candidate[key]
                for key in (
                    "fraction",
                    "attack_params",
                    "placements",
                    "num_attacked_mrs",
                    "drop_mean",
                    "drop_max",
                    "damage_per_mr",
                )
            }
            for candidate in self.candidates
        ]
        best = self.best
        return {
            "model": self.config.model,
            "variant": self.config.variant,
            "kind": self.config.kind,
            "block": self.config.block,
            "optimizer": self.config.optimizer,
            "budget": self.config.budget,
            "seed": self.config.seed,
            "baseline": self.baseline,
            "evaluations": self.evaluations,
            "generations": self.generations,
            "num_candidates": len(self.candidates),
            "candidates": compact,
            "front": front_payload(self.front),
            "best": {key: best[key] for key in compact[0]} if best else None,
        }

    def trajectory_json(self) -> str:
        """Canonical JSON of the evaluation trajectory (determinism checks)."""
        from repro.engine.spec import canonical_json

        return canonical_json(self.to_payload())


def _candidate_label(kind: str, values: dict, placements: int) -> str:
    params = ",".join(f"{k}={v}" for k, v in sorted(values["params"].items()))
    inner = f"fraction={values['fraction']}" + (f",{params}" if params else "")
    return f"{kind}[{inner}]x{placements}"


# ----------------------------------------------------------------- evaluators
class _BatchedEvaluator:
    """Local default: one stacked forward per generation of cache misses."""

    name = "batched"

    def __init__(self, cache=None):
        self.cache = cache
        self.executed = 0
        self.cache_hits = 0

    def evaluate(self, specs: list) -> list:
        from repro.analysis.experiments import candidate_payloads_batched
        from repro.engine.records import RunRecord
        from repro.engine.spec import spec_fingerprint

        records: list = [None] * len(specs)
        pending: list[int] = []
        for index, spec in enumerate(specs):
            cached = self.cache.get(spec) if self.cache is not None else None
            if cached is not None:
                records[index] = cached
                self.cache_hits += 1
            else:
                pending.append(index)
        if pending:
            started_at = datetime.now(timezone.utc).isoformat(timespec="seconds")
            start = perf_counter()
            payloads = candidate_payloads_batched(
                [dict(specs[index].params) for index in pending],
                seed=specs[pending[0]].seed,
            )
            duration = perf_counter() - start
            for index, payload in zip(pending, payloads):
                spec = specs[index]
                record = RunRecord(
                    fingerprint=spec_fingerprint(spec, __version__),
                    spec=spec,
                    payload=payload,
                    status="ok",
                    error=None,
                    duration_s=duration / len(pending),
                    started_at=started_at,
                    provenance={
                        "version": __version__,
                        "executor": "search-batched",
                        "pid": os.getpid(),
                    },
                )
                records[index] = record
                self.executed += 1
                if self.cache is not None:
                    try:
                        self.cache.put(record)
                    except OSError:
                        pass  # losing a cache write costs reuse, not results
        return records

    def close(self) -> None:
        pass


class _CampaignEvaluator:
    """One :class:`Campaign` per generation over a shared executor."""

    name = "campaign"

    def __init__(self, cache=None, workers=None, retry=None):
        from repro.engine.executor import make_executor

        self.cache = cache
        self.executor = make_executor(workers, retry=retry)
        self.executed = 0
        self.cache_hits = 0

    def evaluate(self, specs: list) -> list:
        from repro.engine.campaign import Campaign

        result = Campaign(specs, cache=self.cache, workers=self.executor).run()
        self.executed += result.executed
        self.cache_hits += result.cache_hits
        return result.records

    def close(self) -> None:
        self.executor.close()


class _ServeEvaluator:
    """Each generation becomes one zipped sweep on a ``repro serve`` job queue."""

    name = "serve"

    def __init__(self, client, timeout: float = 3600.0):
        self.client = client
        self.timeout = float(timeout)
        self.executed = 0
        self.cache_hits = 0

    def evaluate(self, specs: list) -> list:
        from repro.engine.records import RunRecord
        from repro.engine.spec import spec_fingerprint

        first = specs[0]
        keys = sorted(first.params)
        constant = {
            key: first.params[key]
            for key in keys
            if all(spec.params[key] == first.params[key] for spec in specs)
        }
        varying = [key for key in keys if key not in constant]
        sweep: dict = {
            "experiment_id": first.experiment_id,
            "base": constant,
            "seeds": [first.seed],
        }
        if varying:
            sweep["zipped"] = {
                key: [spec.params[key] for spec in specs] for key in varying
            }
        job_id = self.client.submit(sweep)["job_id"]
        final = self.client.wait(job_id, timeout=self.timeout)
        if final.get("failures"):
            raise SearchError(
                f"serve job {job_id} finished with {final['failures']} failed "
                f"candidate(s); see repro jobs --url for details"
            )
        # The coordinator returns cache-first result docs ({label, status,
        # cached, payload}); rebuild full records against our local specs.
        by_label = {
            doc.get("label"): doc
            for doc in self.client.results(job_id)["records"]
        }
        records = []
        for spec in specs:
            doc = by_label.get(spec.label())
            if doc is None or doc.get("status") != "ok":
                raise SearchError(
                    f"serve job {job_id} returned no ok record for "
                    f"{spec.label()} (got {doc!r})"
                )
            records.append(
                RunRecord(
                    fingerprint=spec_fingerprint(spec, __version__),
                    spec=spec,
                    payload=doc["payload"],
                    status="ok",
                    error=None,
                    duration_s=0.0,
                    started_at="",
                    provenance={"version": __version__, "executor": "serve"},
                    cached=bool(doc.get("cached")),
                )
            )
        self.executed += int(final.get("executed", 0))
        self.cache_hits += int(final.get("cache_hits", 0))
        return records

    def close(self) -> None:
        pass


# --------------------------------------------------------------------- driver
class AttackSearch:
    """Run one black-box attack search end to end.

    Parameters
    ----------
    config:
        The search's full identity (workload, optimizer, budget, seed).
    cache:
        Optional :class:`~repro.engine.cache.ResultCache` (or path) the
        per-candidate records flow through — enables resume and cross-search
        reuse.
    workers:
        When set, evaluate generations through a
        :class:`~repro.engine.campaign.Campaign` executor instead of the
        stacked local path (``"serial"`` or a process-pool worker count).
    client:
        A :class:`~repro.serve.client.ServeClient`; when set, generations are
        submitted to the coordinator as zipped sweeps (overrides ``workers``).
    retry:
        Optional :class:`~repro.engine.executor.RetryPolicy` for the
        campaign backend.
    """

    def __init__(self, config: AttackSearchConfig, cache=None, workers=None,
                 client=None, retry=None, serve_timeout: float = 3600.0):
        from repro.engine.cache import ResultCache

        self.config = config
        if isinstance(cache, str) and cache:
            cache = ResultCache(cache)
        self.cache = cache or None
        if client is not None:
            self.evaluator = _ServeEvaluator(client, timeout=serve_timeout)
        elif workers is not None:
            self.evaluator = _CampaignEvaluator(cache=self.cache, workers=workers, retry=retry)
        else:
            self.evaluator = _BatchedEvaluator(cache=self.cache)
        self.space = space_for_kind(config.kind, fraction_range=config.fraction_range)
        kwargs: dict = {
            "seed": config.seed,
            "generation_size": config.generation_size,
            "placements": config.placements,
            "mu": config.mu,
            "sigma": config.sigma,
            "eta": config.eta,
        }
        self.optimizer = make_optimizer(config.optimizer, self.space, **kwargs)

    # ------------------------------------------------------------------ specs
    def candidate_spec(self, candidate):
        """The ``fig7_candidate`` :class:`RunSpec` identifying one candidate.

        Parameters are resolved through the experiment descriptor, so the
        fingerprint matches what any sweep expansion of the same point would
        produce — cache entries are shared across every execution path.
        """
        from repro.analysis.experiments import get_experiment
        from repro.engine.spec import RunSpec

        config = self.config
        params = get_experiment("fig7_candidate").resolve_params(
            {
                "model": config.model,
                "variant": config.variant,
                "kind": config.kind,
                "block": config.block,
                "fraction": candidate.values["fraction"],
                "attack_params": candidate.values["params"],
                "placements": candidate.placements,
                "quantize_weights": config.quantize_weights,
                "checkpoint_cache": config.checkpoint_cache,
            }
        )
        params.pop("seed", None)
        return RunSpec("fig7_candidate", params, seed=config.seed)

    # -------------------------------------------------------------------- run
    def run(self, progress=None) -> AttackSearchResult:
        """Drive ask → evaluate → tell until the budget (or schedule) ends."""
        start = perf_counter()
        config = self.config
        result = AttackSearchResult(config=config)
        points: list[ParetoPoint] = []
        try:
            while result.evaluations < config.budget and not self.optimizer.done:
                asked = self.optimizer.ask()
                if not asked:
                    break
                generation = []
                for candidate in asked:
                    if result.evaluations + candidate.cost > config.budget:
                        break
                    generation.append(candidate)
                    result.evaluations += candidate.cost
                if not generation:
                    break
                specs = [self.candidate_spec(c) for c in generation]
                records = self.evaluator.evaluate(specs)
                failed = [r for r in records if r is None or not r.ok]
                if failed:
                    errors = "; ".join(
                        str(r.error) for r in failed if r is not None
                    ) or "missing record"
                    raise SearchError(
                        f"{len(failed)} candidate evaluation(s) failed: {errors}"
                    )
                fitnesses = []
                for candidate, record in zip(generation, records):
                    payload = dict(record.payload)
                    result.candidates.append(payload)
                    result.baseline = payload["baseline"]
                    fitnesses.append(payload["damage_per_mr"])
                    points.append(
                        ParetoPoint(
                            stealth=payload["num_attacked_mrs"],
                            damage=payload["drop_mean"],
                            label=_candidate_label(
                                config.kind, candidate.values, candidate.placements
                            ),
                            meta={
                                "fraction": payload["fraction"],
                                "attack_params": payload["attack_params"],
                                "placements": payload["placements"],
                                "damage_per_mr": payload["damage_per_mr"],
                            },
                        )
                    )
                self.optimizer.tell(generation, fitnesses)
                result.generations += 1
                if progress is not None:
                    progress(result)
        finally:
            self.evaluator.close()
        result.front = pareto_front(points)
        result.executed = self.evaluator.executed
        result.cache_hits = self.evaluator.cache_hits
        result.duration_s = perf_counter() - start
        return result
