"""Black-box adversarial attack search (ROADMAP item 3).

Deterministic optimizers (:mod:`~repro.attacks.search.optimizers`) explore
the bounded parameter space every registered attack kind declares
(:mod:`~repro.attacks.search.space`), evaluating candidates in stacked
forwards through the engine's content-addressed cache
(:mod:`~repro.attacks.search.driver`) and reducing them to Pareto fronts
over stealth vs. accuracy drop (:mod:`~repro.attacks.search.pareto`).
"""

from repro.attacks.search.driver import (
    AttackSearch,
    AttackSearchConfig,
    AttackSearchResult,
    SearchError,
)
from repro.attacks.search.optimizers import (
    OPTIMIZERS,
    Candidate,
    MuPlusLambdaES,
    RandomSearch,
    SearchOptimizer,
    SuccessiveHalving,
    make_optimizer,
)
from repro.attacks.search.pareto import (
    ParetoPoint,
    dominates,
    front_dominates,
    front_payload,
    pareto_front,
)
from repro.attacks.search.space import Dimension, SearchSpace, space_for_kind

__all__ = [
    "AttackSearch",
    "AttackSearchConfig",
    "AttackSearchResult",
    "SearchError",
    "SearchOptimizer",
    "RandomSearch",
    "MuPlusLambdaES",
    "SuccessiveHalving",
    "Candidate",
    "OPTIMIZERS",
    "make_optimizer",
    "ParetoPoint",
    "pareto_front",
    "front_dominates",
    "front_payload",
    "dominates",
    "Dimension",
    "SearchSpace",
    "space_for_kind",
]
