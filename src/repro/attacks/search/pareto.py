"""Pareto fronts over attack stealth vs. damage.

Every evaluated candidate reduces to a point with two objectives: *stealth*
(``num_attacked_mrs`` — fewer corrupted microrings is harder to detect, so
lower is better) and *damage* (accuracy drop vs. the clean baseline — higher
is better).  The front keeps the candidates no other candidate beats on both
axes; :func:`front_dominates` is the acceptance check that a searched front
strictly improves on the paper's fixed Cartesian grid at equal evaluation
budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "ParetoPoint",
    "dominates",
    "pareto_front",
    "front_dominates",
    "front_payload",
]


@dataclass(frozen=True)
class ParetoPoint:
    """One candidate in (stealth, damage) objective space."""

    stealth: int
    damage: float
    label: str = ""
    meta: dict = field(default_factory=dict, compare=False)


def dominates(a: ParetoPoint, b: ParetoPoint) -> bool:
    """True if ``a`` is at least as good as ``b`` on both axes, better on one."""
    return (
        a.stealth <= b.stealth
        and a.damage >= b.damage
        and (a.stealth < b.stealth or a.damage > b.damage)
    )


def pareto_front(points: list) -> list:
    """Non-dominated points, sorted by stealth ascending then damage descending.

    Duplicate objective pairs collapse to the first occurrence (evaluation
    order), keeping fronts byte-stable across identically seeded runs.
    """
    ordered = sorted(
        enumerate(points), key=lambda item: (item[1].stealth, -item[1].damage, item[0])
    )
    front: list = []
    seen: set = set()
    best_damage = float("-inf")
    for _, point in ordered:
        key = (point.stealth, point.damage)
        if point.damage > best_damage and key not in seen:
            front.append(point)
            seen.add(key)
            best_damage = point.damage
    return front


def front_dominates(front: list, reference: list, tol: float = 0.0) -> bool:
    """True if ``front`` Pareto-dominates ``reference``.

    Every reference point must be matched-or-beaten by some front point
    (stealth <= and damage >= within ``tol``), and at least one front point
    must strictly beat some reference point (strictly higher damage at equal
    or lower stealth, or equal damage at strictly lower stealth, by more
    than ``tol``).
    """
    if not front or not reference:
        return False
    for ref in reference:
        if not any(
            p.stealth <= ref.stealth and p.damage >= ref.damage - tol for p in front
        ):
            return False
    return any(
        p.stealth <= ref.stealth
        and (
            p.damage > ref.damage + tol
            or (p.damage >= ref.damage - tol and p.stealth < ref.stealth)
        )
        for p in front
        for ref in reference
    )


def front_payload(front: list) -> list:
    """JSON-ready representation of a front (for payloads and reports)."""
    return [
        {
            "num_attacked_mrs": int(point.stealth),
            "accuracy_drop": float(point.damage),
            "label": point.label,
            **({"meta": point.meta} if point.meta else {}),
        }
        for point in front
    ]
