"""Hardware-trojan circuit model: trigger and payload.

An HT consists of a *trigger* (the condition that activates it) and a
*payload* (the malicious effect).  The susceptibility analysis in the paper
assumes triggered (active) trojans; this module models the trigger logic so
integration tests and examples can also exercise dormant trojans and
trigger-dependent behaviour (e.g. activation after a number of inferences,
mimicking the image-count triggers of memory-trojan attacks).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.utils.validation import check_in_choices, check_positive_int

__all__ = ["TriggerMode", "HardwareTrojan"]


class TriggerMode(Enum):
    """How the trojan decides to fire its payload."""

    ALWAYS_ON = "always_on"
    INFERENCE_COUNT = "inference_count"
    EXTERNAL = "external"


@dataclass
class HardwareTrojan:
    """A single HT instance attached to one MR's peripheral circuit.

    Attributes
    ----------
    payload:
        ``"actuation"`` (EO circuit, forces off-resonance), ``"heater"``
        (TO circuit, overdrives or parasitically heats) or ``"laser"``
        (laser driver, depletes a WDM carrier).
    trigger_mode:
        Condition activating the payload.
    trigger_count:
        For ``INFERENCE_COUNT`` triggers, the number of inferences after
        which the trojan fires.
    """

    payload: str = "actuation"
    trigger_mode: TriggerMode = TriggerMode.ALWAYS_ON
    trigger_count: int = 1
    _observed_inferences: int = field(default=0, repr=False)
    _externally_armed: bool = field(default=False, repr=False)

    def __post_init__(self) -> None:
        check_in_choices(self.payload, "payload", ("actuation", "heater", "laser"))
        check_positive_int(self.trigger_count, "trigger_count")

    def observe_inference(self) -> None:
        """Record that one inference passed through the compromised datapath."""
        self._observed_inferences += 1

    def arm(self) -> None:
        """Externally arm the trojan (EXTERNAL trigger mode)."""
        self._externally_armed = True

    def disarm(self) -> None:
        """Externally disarm the trojan."""
        self._externally_armed = False

    @property
    def triggered(self) -> bool:
        """Whether the payload is currently active."""
        if self.trigger_mode is TriggerMode.ALWAYS_ON:
            return True
        if self.trigger_mode is TriggerMode.INFERENCE_COUNT:
            return self._observed_inferences >= self.trigger_count
        return self._externally_armed
