"""Triggered attacks: any base kind wrapped in the HT trigger model.

The paper's susceptibility grid assumes always-on (triggered) trojans; the
:class:`~repro.attacks.trojan.HardwareTrojan` circuit model has supported
dormant and inference-count-activated triggers all along, but nothing fed it
into the scenario grid.  The ``triggered`` kind closes that gap: it wraps an
arbitrary *base* attack kind (actuation, hotspot, crosstalk, laser_power, or
any plugin) in a trigger, and the sampled outcome carries the base kind's
effects only when the trigger condition holds at evaluation time.  A dormant
trojan yields an empty outcome — the accelerator runs at clean accuracy,
which is exactly the stealth scenario detection studies need in the grid.

Placements are reproducible against the base kind: a triggered outcome that
fires uses the same seed-to-placement path as the bare base kind, so
``triggered(base=hotspot)`` at seed *s* corrupts the same banks as
``hotspot`` at seed *s*.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Mapping

import numpy as np

from repro.accelerator.config import AcceleratorConfig
from repro.attacks.base import AttackOutcome, AttackSpec
from repro.attacks.registry import AttackKind, create_attack, is_registered, register_attack
from repro.attacks.trojan import HardwareTrojan, TriggerMode
from repro.utils.rng import seed_int
from repro.utils.validation import ValidationError, check_positive_int

__all__ = ["TriggeredAttackConfig", "TriggeredAttack"]

#: HardwareTrojan payload label per base attack kind (fallback: "heater").
_PAYLOAD_BY_KIND = {
    "actuation": "actuation",
    "hotspot": "heater",
    "crosstalk": "heater",
    "laser_power": "laser",
}


@dataclass(frozen=True)
class TriggeredAttackConfig:
    """Trigger model and base kind of a triggered attack.

    Attributes
    ----------
    base:
        Registered attack kind supplying the payload effects.
    trigger:
        ``"always_on"``, ``"inference_count"`` or ``"external"`` (the
        :class:`~repro.attacks.trojan.TriggerMode` values).
    trigger_count:
        For inference-count triggers, the activation threshold.
    observed_inferences:
        Inferences the compromised datapath has already served when the
        attack grid is evaluated; the trojan fires once this reaches
        ``trigger_count``.
    armed:
        For external triggers, whether the attacker has armed the trojan.
    base_params:
        Physical parameters forwarded to the base kind (mapping of overrides
        or params dataclass instance).  ``None`` inherits the grid's
        parameters for the base kind when sampled through
        :func:`~repro.attacks.scenario.sample_outcome` (falling back to the
        base kind's defaults), so a fired trigger corrupts the substrate
        exactly like the bare base kind configured in the same grid.
    """

    base: str = "actuation"
    trigger: str = field(
        default="inference_count",
        metadata={
            "choices": ("always_on", "inference_count", "external"),
            "search": False,
        },
    )
    trigger_count: int = field(
        default=1000, metadata={"bounds": (1, 10**9), "search": False}
    )
    observed_inferences: int = field(
        default=1000, metadata={"bounds": (0, 10**9), "search": False}
    )
    armed: bool = False
    base_params: Mapping | object | None = field(default=None, hash=False)

    def __post_init__(self) -> None:
        if self.base == "triggered":
            raise ValidationError("triggered attacks cannot wrap themselves")
        if not is_registered(self.base):
            raise ValidationError(
                f"base must be a registered attack kind, got {self.base!r}"
            )
        try:
            TriggerMode(self.trigger)
        except ValueError:
            raise ValidationError(
                f"trigger must be one of {[m.value for m in TriggerMode]}, "
                f"got {self.trigger!r}"
            ) from None
        check_positive_int(self.trigger_count, "trigger_count")
        if not isinstance(self.observed_inferences, (int, np.integer)) or (
            self.observed_inferences < 0
        ):
            raise ValidationError(
                f"observed_inferences must be a non-negative integer, "
                f"got {self.observed_inferences!r}"
            )


@register_attack("triggered")
class TriggeredAttack(AttackKind):
    """Any base attack kind behind a :class:`HardwareTrojan` trigger."""

    params_class = TriggeredAttackConfig
    summary = "wraps a base kind in the HT trigger model (dormant until fired)"

    @classmethod
    def contextualize_params(cls, params: object, params_by_kind: Mapping) -> object:
        """Inherit the grid's parameters for the wrapped base kind.

        Explicit ``base_params`` win; otherwise the base kind's entry in the
        grid mapping is adopted, keeping triggered and bare scenarios of the
        same base kind physically identical once the trigger fires.
        """
        config = cls.coerce_params(params)
        if config.base_params is None and config.base in params_by_kind:
            config = replace(config, base_params=params_by_kind[config.base])
        return config

    def build_trojan(self) -> HardwareTrojan:
        """The trigger-circuit model in its configured evaluation state."""
        params = self.params
        trojan = HardwareTrojan(
            payload=_PAYLOAD_BY_KIND.get(params.base, "heater"),
            trigger_mode=TriggerMode(params.trigger),
            trigger_count=params.trigger_count,
        )
        trojan._observed_inferences = int(params.observed_inferences)
        if params.armed:
            trojan.arm()
        return trojan

    def sample(
        self,
        config: AcceleratorConfig,
        seed: int | np.random.Generator | None = 0,
    ) -> AttackOutcome:
        """Sample the base kind's placement, gated by the trigger state.

        A dormant trojan yields an empty outcome (no effects, zero attacked
        MRs); a fired trojan re-emits the base kind's effects and footprint
        under this spec.
        """
        trojan = self.build_trojan()
        outcome = AttackOutcome(spec=self.spec, seed=seed_int(seed))
        if not trojan.triggered:
            return outcome
        base_spec = AttackSpec(
            kind=self.params.base,
            target_block=self.spec.target_block,
            fraction=self.spec.fraction,
        )
        base_outcome = create_attack(base_spec, self.params.base_params).sample(
            config, seed=seed
        )
        outcome.effects = base_outcome.effects
        outcome.attacked_mrs = dict(base_outcome.attacked_mrs)
        return outcome
