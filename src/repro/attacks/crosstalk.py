"""Thermal crosstalk attacks: neighbour-bank leakage without heater control.

A variant of the hotspot attack (paper §III.B.2) built for attribution
stealth: the trojan has no access to any MR bank's thermo-optic tuning
circuit.  Instead it sits in an adjacent peripheral structure (laser/driver
logic, a dummy heater on the shared substrate) and dissipates parasitic
power next to randomly chosen *leakage-source* banks.  The heat diffuses
through the same substrate model as the hotspot attack, but because no
tuning loop is hijacked, *every* affected bank — the sources included —
keeps its thermo-optic compensation, and the attacker gets no minimum-rise
guarantee.  What reaches the rings is sub-channel detuning spread over wide
neighbourhoods rather than the hotspot's catastrophic local re-pairing — a
diffuse corruption profile that no per-heater integrity check can attribute
to a compromised tuning circuit, yet (as the susceptibility grid shows) can
rival direct heater overdrive in accuracy damage.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.accelerator.config import AcceleratorConfig
from repro.attacks.base import AttackOutcome, BlockEffect
from repro.attacks.hotspot import solve_bank_heat
from repro.attacks.registry import AttackKind, register_attack
from repro.utils.rng import default_rng, seed_int
from repro.utils.validation import check_positive

__all__ = ["CrosstalkAttackConfig", "CrosstalkAttack"]


@dataclass(frozen=True)
class CrosstalkAttackConfig:
    """Physical parameters of the thermal crosstalk attack.

    Attributes
    ----------
    leakage_power_mw:
        Raw parasitic power dissipated next to each leakage-source bank.
        The trojan can burn an entire neighbouring circuit's power budget —
        more raw watts than a single heater overdrive — but the heat couples
        only diffusively into the rings and still faces their intact tuning
        loops, so far less of it reaches the resonances.
    baseline_power_mw:
        Nominal per-bank tuning power (background heat).
    min_rise_k:
        Banks whose temperature rise stays below this threshold are dropped
        from the outcome.
    grid_rows, grid_cols:
        Thermal solver grid resolution.
    """

    leakage_power_mw: float = field(
        default=400.0, metadata={"bounds": (1.0, 5000.0), "log": True}
    )
    baseline_power_mw: float = field(
        default=1.0, metadata={"bounds": (0.0, 100.0), "search": False}
    )
    min_rise_k: float = field(
        default=1.0, metadata={"bounds": (0.01, 100.0), "search": False}
    )
    grid_rows: int = field(
        default=48, metadata={"bounds": (4, 512), "search": False}
    )
    grid_cols: int = field(
        default=48, metadata={"bounds": (4, 512), "search": False}
    )

    def __post_init__(self) -> None:
        check_positive(self.leakage_power_mw, "leakage_power_mw")
        check_positive(self.min_rise_k, "min_rise_k")


@register_attack("crosstalk")
class CrosstalkAttack(AttackKind):
    """Randomly placed parasitic heat sources next to MR banks.

    Unlike :class:`~repro.attacks.hotspot.HotspotAttack`, the sampled outcome
    leaves ``attacked_banks`` empty: no bank's heater is under trojan
    control, so the injection model's tuning-loop compensation applies to the
    leakage sources as well, and no minimum-rise clamp is available to the
    attacker.
    """

    params_class = CrosstalkAttackConfig
    summary = (
        "parasitic heat leaks into banks without heater control; diffuse detuning"
    )

    def sample(
        self,
        config: AcceleratorConfig,
        seed: int | np.random.Generator | None = 0,
    ) -> AttackOutcome:
        """Draw one random placement of the leakage sources.

        For each targeted block, ``round(fraction * num_banks)`` banks are
        chosen uniformly at random as leakage sites; the thermal solver then
        yields the per-bank rise across the block.  The recorded MR
        footprint is ``leakage-source banks x cols`` (the rings whose
        thermal environment the trojan directly perturbs).
        """
        rng = default_rng(seed)
        outcome = AttackOutcome(spec=self.spec, seed=seed_int(seed))
        for block in self.spec.blocks:
            geometry = config.block(block)
            num_sources = max(1, int(round(self.spec.fraction * geometry.num_banks)))
            num_sources = min(num_sources, geometry.num_banks)
            sources = np.sort(
                rng.choice(geometry.num_banks, size=num_sources, replace=False)
            )
            heat = solve_bank_heat(
                geometry.num_banks,
                sources,
                self.params.leakage_power_mw,
                self.params.baseline_power_mw,
                self.params.grid_rows,
                self.params.grid_cols,
            )
            affected = {
                int(bank): float(rise)
                for bank, rise in enumerate(heat)
                if rise >= self.params.min_rise_k
            }
            outcome.add_effect(
                block,
                BlockEffect(bank_delta_t=affected, attacked_banks=()),
                attacked_mrs=num_sources * geometry.cols,
            )
        return outcome
