"""Pluggable attack-kind registry.

The susceptibility methodology (paper §III–§IV) is generic: place a trojan
somewhere in the photonic substrate, perturb the substrate, measure the
attacked inference accuracy.  Every concrete threat model is an
:class:`AttackKind` — it owns a typed physical-parameter dataclass, a random
placement procedure (:meth:`AttackKind.sample`) and, through the
:class:`~repro.attacks.base.BlockEffect` primitives it emits, a vectorized
injection kernel that :mod:`repro.attacks.injection` merges in a single
broadcast pass.

Kinds register themselves by name::

    @register_attack("laser_power")
    class LaserPowerAttack(AttackKind):
        params_class = LaserPowerAttackConfig
        def sample(self, config, seed=0): ...

and every registered name is immediately accepted by
:class:`~repro.attacks.base.AttackSpec`, the scenario grid
(:func:`~repro.attacks.scenario.generate_scenarios`), the studies and the
``python -m repro sweep ... --grid kind=...`` CLI.  ``python -m repro
attacks`` lists the registry.
"""

from __future__ import annotations

import dataclasses
from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, ClassVar, Mapping

import numpy as np

from repro.utils.validation import ValidationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (base imports us)
    from repro.accelerator.config import AcceleratorConfig
    from repro.attacks.base import AttackOutcome, AttackSpec

__all__ = [
    "AttackKind",
    "register_attack",
    "unregister_attack",
    "get_attack_kind",
    "registered_kinds",
    "is_registered",
    "create_attack",
    "attack_kind_info",
    "PARAM_METADATA_KEYS",
]

#: ``dataclasses.field(metadata=...)`` keys understood by the registry.
#: ``bounds``: inclusive ``(lo, hi)`` range for a numeric field, enforced by
#: :meth:`AttackKind.coerce_params`.  ``choices``: allowed values for a
#: categorical field.  ``search``: whether ``repro.attacks.search`` may use
#: the field as an optimization dimension (defaults to True whenever bounds
#: or choices are declared).  ``log``: sample the bounded range
#: logarithmically when searched.
PARAM_METADATA_KEYS = ("bounds", "choices", "search", "log")

#: Name → attack-kind class.  Populated by :func:`register_attack`; the
#: built-in kinds register when :mod:`repro.attacks` is imported.
_REGISTRY: dict[str, type["AttackKind"]] = {}


class AttackKind(ABC):
    """Base class of every registered attack kind.

    Subclasses set :attr:`params_class` to their physical-parameter dataclass
    (or leave it ``None`` for parameter-free kinds) and implement
    :meth:`sample`, which draws one random trojan placement and returns an
    :class:`~repro.attacks.base.AttackOutcome` whose per-block
    :class:`~repro.attacks.base.BlockEffect` entries describe the injection
    (slot masks, bank temperature rises, per-wavelength scales).

    Parameters
    ----------
    spec:
        Attack specification; ``spec.kind`` must equal the class's registered
        name.
    params:
        Physical parameters: an instance of :attr:`params_class`, a mapping
        of keyword overrides for it, or ``None`` for the defaults.
    """

    #: Registered name; assigned by :func:`register_attack`.
    name: ClassVar[str] = ""

    #: Dataclass of physical parameters (``None``: the kind takes none).
    params_class: ClassVar[type | None] = None

    #: One-line threat-model summary shown by ``python -m repro attacks``.
    summary: ClassVar[str] = ""

    def __init__(self, spec: "AttackSpec", params: object = None):
        if spec.kind != self.name:
            raise ValidationError(
                f"{type(self).__name__} requires kind={self.name!r}, got {spec.kind!r}"
            )
        self.spec = spec
        self.params = self.coerce_params(params)

    @abstractmethod
    def sample(
        self,
        config: "AcceleratorConfig",
        seed: int | np.random.Generator | None = 0,
    ) -> "AttackOutcome":
        """Draw one random trojan placement as a fully placed outcome."""

    # ------------------------------------------------------------- parameters
    @classmethod
    def coerce_params(cls, params: object):
        """Normalize ``params`` into an instance of :attr:`params_class`."""
        if cls.params_class is None:
            if params is None or (isinstance(params, Mapping) and not params):
                return None
            raise ValidationError(
                f"attack kind {cls.name!r} takes no parameters, got {params!r}"
            )
        if params is None:
            return cls.params_class()
        if isinstance(params, cls.params_class):
            return cls.validate_params(params)
        if isinstance(params, Mapping):
            known = {f.name for f in dataclasses.fields(cls.params_class)}
            unknown = sorted(set(params) - known)
            if unknown:
                raise ValidationError(
                    f"unknown parameter(s) {unknown} for attack kind {cls.name!r}; "
                    f"accepted: {sorted(known)}"
                )
            return cls.validate_params(cls.params_class(**params))
        raise ValidationError(
            f"params for attack kind {cls.name!r} must be a "
            f"{cls.params_class.__name__}, a mapping or None, "
            f"got {type(params).__name__}"
        )

    @classmethod
    def validate_params(cls, params):
        """Enforce the declared ``bounds``/``choices`` field metadata.

        Dataclass ``__post_init__`` checks catch structurally invalid values
        (negative powers, malformed triggers); this layer additionally
        rejects values outside each field's declared physical range, naming
        the offending field.  Returns ``params`` unchanged when valid.
        """
        for name, info in cls.param_info().items():
            value = getattr(params, name, None)
            bounds = info.get("bounds")
            if bounds is not None and isinstance(value, (int, float, np.number)) and not isinstance(value, bool):
                lo, hi = bounds
                if not (lo <= float(value) <= hi):
                    raise ValidationError(
                        f"{cls.name}.{name} must lie in [{lo}, {hi}], got {value!r}"
                    )
            choices = info.get("choices")
            if choices is not None and value not in choices:
                raise ValidationError(
                    f"{cls.name}.{name} must be one of {list(choices)}, got {value!r}"
                )
        return params

    @classmethod
    def contextualize_params(cls, params: object, params_by_kind: Mapping) -> object:
        """Resolve grid-level per-kind parameters into this kind's params.

        ``params_by_kind`` is the scenario grid's full ``kind name → params``
        mapping (see :func:`~repro.attacks.scenario.sample_outcome`).  The
        default ignores the context; wrapper kinds (e.g. ``triggered``)
        override it to inherit their wrapped kind's grid parameters.
        """
        del params_by_kind
        return cls.coerce_params(params)

    @classmethod
    def param_defaults(cls) -> dict[str, object]:
        """Default physical parameters as a plain dict (for docs and the CLI)."""
        if cls.params_class is None:
            return {}
        defaults: dict[str, object] = {}
        for field in dataclasses.fields(cls.params_class):
            if field.default is not dataclasses.MISSING:
                defaults[field.name] = field.default
            elif field.default_factory is not dataclasses.MISSING:  # type: ignore[misc]
                defaults[field.name] = field.default_factory()  # type: ignore[misc]
        return defaults

    @classmethod
    def param_info(cls) -> dict[str, dict[str, object]]:
        """Per-field metadata: default, bounds, choices, integer/searchable flags.

        The ``bounds``/``choices`` entries come from each field's dataclass
        ``metadata`` (see :data:`PARAM_METADATA_KEYS`); ``searchable`` marks
        the fields :mod:`repro.attacks.search` derives optimization
        dimensions from.
        """
        if cls.params_class is None:
            return {}
        defaults = cls.param_defaults()
        info: dict[str, dict[str, object]] = {}
        for field in dataclasses.fields(cls.params_class):
            meta = field.metadata or {}
            entry: dict[str, object] = {"default": defaults.get(field.name)}
            if "bounds" in meta:
                lo, hi = meta["bounds"]
                entry["bounds"] = (lo, hi)
            if "choices" in meta:
                entry["choices"] = tuple(meta["choices"])
            default = defaults.get(field.name)
            entry["integer"] = isinstance(default, int) and not isinstance(default, bool)
            entry["searchable"] = bool(
                meta.get("search", "bounds" in meta or "choices" in meta)
            )
            if meta.get("log"):
                entry["log"] = True
            info[field.name] = entry
        return info


# ------------------------------------------------------------------ registry
def register_attack(name: str):
    """Class decorator registering an :class:`AttackKind` under ``name``."""

    def decorator(cls: type[AttackKind]) -> type[AttackKind]:
        if not name:
            raise ValidationError("attack kind name must be a non-empty string")
        if not issubclass(cls, AttackKind):
            raise ValidationError(
                f"@register_attack({name!r}) requires an AttackKind subclass, "
                f"got {cls.__name__}"
            )
        existing = _REGISTRY.get(name)
        if existing is not None and existing is not cls:
            raise ValidationError(
                f"attack kind {name!r} is already registered to "
                f"{existing.__name__}; unregister_attack({name!r}) first"
            )
        cls.name = name
        _REGISTRY[name] = cls
        return cls

    return decorator


def unregister_attack(name: str) -> None:
    """Remove a registered kind (plugin teardown and test cleanup)."""
    _REGISTRY.pop(name, None)


def registered_kinds() -> tuple[str, ...]:
    """All registered attack-kind names, in registration order."""
    return tuple(_REGISTRY)


def is_registered(name: str) -> bool:
    return name in _REGISTRY


def get_attack_kind(name: str) -> type[AttackKind]:
    """Look up a kind by name, raising with guidance for unknown names."""
    if name not in _REGISTRY:
        raise ValidationError(
            f"unknown attack kind {name!r}; registered: {sorted(_REGISTRY)}"
        )
    return _REGISTRY[name]


def create_attack(spec: "AttackSpec", params: object = None) -> AttackKind:
    """Instantiate the registered kind for ``spec.kind``."""
    return get_attack_kind(spec.kind)(spec, params)


def attack_kind_info() -> list[dict[str, object]]:
    """Registry summary rows (name, summary, parameter metadata) for the CLI."""
    return [
        {
            "kind": name,
            "summary": cls.summary,
            "params": cls.param_defaults(),
            "param_info": cls.param_info(),
        }
        for name, cls in _REGISTRY.items()
    ]
