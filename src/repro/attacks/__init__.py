"""Hardware-trojan attack models for the ONN accelerator.

The attacks layer is a plugin system: every threat model is an
:class:`~repro.attacks.registry.AttackKind` registered by name
(:func:`~repro.attacks.registry.register_attack`), sampling random
placements into kind-agnostic :class:`~repro.attacks.base.BlockEffect`
primitives that one shared injection kernel merges
(:mod:`repro.attacks.injection`).  Built-in kinds:

* **actuation** (:mod:`repro.attacks.actuation`) — HTs in the EO
  signal-modulation circuits force individual, randomly distributed MRs into
  an off-resonance state (paper §III.B.1).
* **hotspot** (:mod:`repro.attacks.hotspot`) — HTs in the TO tuning circuits
  overdrive heaters of whole MR banks; the resulting hotspot shifts the
  resonance of the targeted bank and of its neighbours, corrupting clusters
  of parameters (paper §III.B.2).
* **crosstalk** (:mod:`repro.attacks.crosstalk`) — parasitic heat leaks into
  neighbouring banks without direct heater control; every affected bank
  keeps its tuning-loop compensation.
* **laser_power** (:mod:`repro.attacks.laser_power`) — HTs in the laser
  drivers deplete random WDM carriers, scaling the detected magnitudes of
  whole columns across every bank of a block.
* **triggered** (:mod:`repro.attacks.triggered`) — wraps any base kind in
  the :class:`~repro.attacks.trojan.HardwareTrojan` trigger model, so
  dormant and inference-count-activated trojans enter the scenario grid.

:mod:`repro.attacks.scenario` generates the paper's attack grid (1/5/10% of
MRs, CONV/FC/both blocks, 10 random placements each — over any registered
kinds) and :mod:`repro.attacks.injection` converts attack outcomes into
corrupted model weights through the accelerator mapping.

Beyond the paper's fixed grids, :mod:`repro.attacks.search` drives any
registered kind's bounded parameter space with deterministic black-box
optimizers, reducing evaluated candidates to Pareto fronts over stealth
(``num_attacked_mrs``) vs. accuracy drop (``python -m repro search``).
"""

import importlib
import os

from repro.attacks.registry import (
    AttackKind,
    attack_kind_info,
    create_attack,
    get_attack_kind,
    is_registered,
    register_attack,
    registered_kinds,
    unregister_attack,
)
from repro.attacks.base import (
    AttackOutcome,
    AttackSpec,
    BLOCKS,
    BlockEffect,
    KINDS,
    PAPER_KINDS,
)
from repro.attacks.trojan import HardwareTrojan, TriggerMode
from repro.attacks.actuation import ActuationAttack
from repro.attacks.hotspot import HotspotAttack, HotspotAttackConfig
from repro.attacks.crosstalk import CrosstalkAttack, CrosstalkAttackConfig
from repro.attacks.laser_power import LaserPowerAttack, LaserPowerAttackConfig
from repro.attacks.triggered import TriggeredAttack, TriggeredAttackConfig
from repro.attacks.scenario import AttackScenario, generate_scenarios, sample_outcome
from repro.attacks.injection import attack_context, corrupted_state_batch, corrupted_state_dict
from repro.attacks import search

def load_plugin_modules(env: str = "REPRO_ATTACK_PLUGINS") -> tuple[str, ...]:
    """Import the out-of-tree attack-plugin modules named in ``$env``.

    The variable holds a comma-separated list of importable module names
    whose import is expected to call :func:`register_attack`.  It is read
    once when :mod:`repro.attacks` is imported, so plugin kinds reach every
    surface that touches the registry — the ``repro`` CLI, ``AttackSpec``
    validation, and process-pool sweep workers, which inherit the
    environment and re-import ``repro`` fresh.  Returns the imported names.
    """
    loaded = []
    for name in os.environ.get(env, "").split(","):
        name = name.strip()
        if not name:
            continue
        try:
            importlib.import_module(name)
        except ImportError as exc:
            raise ImportError(
                f"cannot import attack-plugin module {name!r} (from ${env}); "
                "is it on PYTHONPATH?"
            ) from exc
        loaded.append(name)
    return tuple(loaded)


load_plugin_modules()

__all__ = [
    "AttackKind",
    "load_plugin_modules",
    "AttackSpec",
    "AttackOutcome",
    "BlockEffect",
    "BLOCKS",
    "KINDS",
    "PAPER_KINDS",
    "register_attack",
    "unregister_attack",
    "registered_kinds",
    "is_registered",
    "get_attack_kind",
    "create_attack",
    "attack_kind_info",
    "HardwareTrojan",
    "TriggerMode",
    "ActuationAttack",
    "HotspotAttack",
    "HotspotAttackConfig",
    "CrosstalkAttack",
    "CrosstalkAttackConfig",
    "LaserPowerAttack",
    "LaserPowerAttackConfig",
    "TriggeredAttack",
    "TriggeredAttackConfig",
    "AttackScenario",
    "generate_scenarios",
    "sample_outcome",
    "attack_context",
    "corrupted_state_dict",
    "corrupted_state_batch",
    "search",
]
