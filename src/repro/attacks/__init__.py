"""Hardware-trojan attack models for the ONN accelerator.

Two attack vectors are modelled (paper §III.B):

* **Actuation attacks** (:mod:`repro.attacks.actuation`) — HTs in the EO
  signal-modulation circuits force individual, randomly distributed MRs into
  an off-resonance state.
* **Thermal hotspot attacks** (:mod:`repro.attacks.hotspot`) — HTs in the TO
  tuning circuits overdrive heaters of whole MR banks; the resulting hotspot
  shifts the resonance of the targeted bank and of its neighbours, corrupting
  clusters of parameters.

:mod:`repro.attacks.scenario` generates the paper's attack grid (1/5/10% of
MRs, CONV/FC/both blocks, 10 random placements each) and
:mod:`repro.attacks.injection` converts an attack outcome into corrupted
model weights through the accelerator mapping.
"""

from repro.attacks.base import AttackOutcome, AttackSpec, BLOCKS, KINDS
from repro.attacks.trojan import HardwareTrojan, TriggerMode
from repro.attacks.actuation import ActuationAttack
from repro.attacks.hotspot import HotspotAttack, HotspotAttackConfig
from repro.attacks.scenario import AttackScenario, generate_scenarios, sample_outcome
from repro.attacks.injection import attack_context, corrupted_state_batch, corrupted_state_dict

__all__ = [
    "AttackSpec",
    "AttackOutcome",
    "BLOCKS",
    "KINDS",
    "HardwareTrojan",
    "TriggerMode",
    "ActuationAttack",
    "HotspotAttack",
    "HotspotAttackConfig",
    "AttackScenario",
    "generate_scenarios",
    "sample_outcome",
    "attack_context",
    "corrupted_state_dict",
    "corrupted_state_batch",
]
