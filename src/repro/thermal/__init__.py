"""Thermal simulation substrate (substitute for the HotSpot tool).

The paper uses HotSpot 7.0 to produce the Fig. 6 heatmap of a hotspot attack
on the CONV block.  This subpackage provides the same capability with a
steady-state finite-difference heat-diffusion solver over a floorplan of MR
banks:

* :mod:`repro.thermal.floorplan` — geometric layout of the MR banks of an
  accelerator block on the chip surface;
* :mod:`repro.thermal.grid_solver` — steady-state 2-D diffusion solver with
  per-cell power injection and convective sinking to ambient;
* :mod:`repro.thermal.heatmap` — assembles attacked-heater power maps,
  solves for the temperature field and reports per-bank / per-MR
  temperature rises.
"""

from repro.thermal.floorplan import BankPlacement, Floorplan
from repro.thermal.grid_solver import GridThermalSolver, ThermalSolverConfig
from repro.thermal.heatmap import HeatmapResult, simulate_hotspot_attack

__all__ = [
    "Floorplan",
    "BankPlacement",
    "GridThermalSolver",
    "ThermalSolverConfig",
    "HeatmapResult",
    "simulate_hotspot_attack",
]
