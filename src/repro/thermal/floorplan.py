"""Chip floorplan of MR banks for thermal simulation.

The CONV (or FC) block's VDP units are laid out as a regular array of
rectangular MR-bank tiles on the photonic substrate.  The floorplan maps each
bank to a region of the thermal grid so heater power can be injected at the
right place and per-bank temperatures can be read back.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import check_positive, check_positive_int

__all__ = ["BankPlacement", "Floorplan"]


@dataclass(frozen=True)
class BankPlacement:
    """Placement of one MR bank on the chip surface (all units in micrometres)."""

    bank_id: int
    x_um: float
    y_um: float
    width_um: float
    height_um: float

    @property
    def center_um(self) -> tuple[float, float]:
        return (self.x_um + self.width_um / 2.0, self.y_um + self.height_um / 2.0)


class Floorplan:
    """Regular grid layout of MR banks on a rectangular die.

    Parameters
    ----------
    num_banks:
        Number of MR banks to place.
    banks_per_row:
        Banks per floorplan row; rows are filled left-to-right, top-to-bottom.
    bank_width_um, bank_height_um:
        Tile footprint of one bank (rings plus peripheral circuits).
    spacing_um:
        Gap between adjacent tiles.
    margin_um:
        Margin between the tile array and the die edge.
    """

    def __init__(
        self,
        num_banks: int,
        banks_per_row: int | None = None,
        bank_width_um: float = 120.0,
        bank_height_um: float = 60.0,
        spacing_um: float = 20.0,
        margin_um: float = 50.0,
    ):
        self.num_banks = check_positive_int(num_banks, "num_banks")
        if banks_per_row is None:
            banks_per_row = int(np.ceil(np.sqrt(num_banks)))
        self.banks_per_row = check_positive_int(banks_per_row, "banks_per_row")
        self.bank_width_um = check_positive(bank_width_um, "bank_width_um")
        self.bank_height_um = check_positive(bank_height_um, "bank_height_um")
        if spacing_um < 0 or margin_um < 0:
            raise ValueError("spacing_um and margin_um must be non-negative")
        self.spacing_um = float(spacing_um)
        self.margin_um = float(margin_um)
        self.placements = self._place()

    def _place(self) -> list[BankPlacement]:
        placements = []
        for bank_id in range(self.num_banks):
            row = bank_id // self.banks_per_row
            col = bank_id % self.banks_per_row
            x = self.margin_um + col * (self.bank_width_um + self.spacing_um)
            y = self.margin_um + row * (self.bank_height_um + self.spacing_um)
            placements.append(
                BankPlacement(
                    bank_id=bank_id,
                    x_um=x,
                    y_um=y,
                    width_um=self.bank_width_um,
                    height_um=self.bank_height_um,
                )
            )
        return placements

    @property
    def num_rows(self) -> int:
        return int(np.ceil(self.num_banks / self.banks_per_row))

    @property
    def die_width_um(self) -> float:
        """Total die width including margins."""
        return (
            2 * self.margin_um
            + self.banks_per_row * self.bank_width_um
            + (self.banks_per_row - 1) * self.spacing_um
        )

    @property
    def die_height_um(self) -> float:
        """Total die height including margins."""
        return (
            2 * self.margin_um
            + self.num_rows * self.bank_height_um
            + (self.num_rows - 1) * self.spacing_um
        )

    def neighbours_of(self, bank_id: int, radius: int = 1) -> list[int]:
        """Bank ids within ``radius`` grid positions of ``bank_id`` (excluding it)."""
        row = bank_id // self.banks_per_row
        col = bank_id % self.banks_per_row
        neighbours = []
        for other in range(self.num_banks):
            if other == bank_id:
                continue
            other_row = other // self.banks_per_row
            other_col = other % self.banks_per_row
            if abs(other_row - row) <= radius and abs(other_col - col) <= radius:
                neighbours.append(other)
        return neighbours

    def bank_cells(self, bank_id: int, grid_shape: tuple[int, int]) -> tuple[slice, slice]:
        """Grid-cell slices (rows, cols) covered by ``bank_id`` on a thermal grid."""
        rows, cols = grid_shape
        placement = self.placements[bank_id]
        x0 = int(np.floor(placement.x_um / self.die_width_um * cols))
        x1 = int(np.ceil((placement.x_um + placement.width_um) / self.die_width_um * cols))
        y0 = int(np.floor(placement.y_um / self.die_height_um * rows))
        y1 = int(np.ceil((placement.y_um + placement.height_um) / self.die_height_um * rows))
        x1 = max(x1, x0 + 1)
        y1 = max(y1, y0 + 1)
        return slice(y0, min(y1, rows)), slice(x0, min(x1, cols))
