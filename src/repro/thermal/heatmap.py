"""Hotspot-attack heatmap generation (paper Fig. 6).

Given a floorplan of MR banks and a set of attacked banks (whose heaters an
HT overdrives), this module builds the per-cell power map, solves the
steady-state temperature field and reports the per-bank temperature rise,
which the attack model converts into per-MR resonance shifts via Eq. 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.thermal.floorplan import Floorplan
from repro.thermal.grid_solver import GridThermalSolver, ThermalSolverConfig
from repro.utils.validation import ValidationError, check_positive

__all__ = ["HeatmapResult", "simulate_hotspot_attack"]


@dataclass
class HeatmapResult:
    """Output of a hotspot-attack thermal simulation.

    Attributes
    ----------
    temperature_k:
        Full temperature field over the thermal grid [K].
    ambient_k:
        Heat-sink / nominal operating temperature [K].
    bank_temperature_rise_k:
        Mean temperature rise of every bank tile [K], indexed by bank id.
    attacked_banks:
        Bank ids whose heaters were overdriven.
    """

    temperature_k: np.ndarray
    ambient_k: float
    bank_temperature_rise_k: np.ndarray
    attacked_banks: tuple[int, ...]
    power_map_w: np.ndarray = field(repr=False, default=None)

    @property
    def peak_temperature_k(self) -> float:
        """Hottest cell on the die [K]."""
        return float(self.temperature_k.max())

    @property
    def peak_rise_k(self) -> float:
        """Peak temperature rise above ambient [K]."""
        return self.peak_temperature_k - self.ambient_k

    def affected_banks(self, threshold_rise_k: float) -> list[int]:
        """Bank ids whose mean rise exceeds ``threshold_rise_k`` (attack fallout)."""
        return [int(b) for b in np.flatnonzero(self.bank_temperature_rise_k >= threshold_rise_k)]

    def ascii_heatmap(self, width: int = 64) -> str:
        """Coarse ASCII rendering of the temperature field (for CLI reports)."""
        field_ = self.temperature_k
        rows = max(1, field_.shape[0] * width // max(field_.shape[1], 1) // 2)
        row_idx = np.linspace(0, field_.shape[0] - 1, rows).astype(int)
        col_idx = np.linspace(0, field_.shape[1] - 1, width).astype(int)
        sampled = field_[np.ix_(row_idx, col_idx)]
        low, high = sampled.min(), sampled.max()
        span = max(high - low, 1e-9)
        ramp = " .:-=+*#%@"
        lines = []
        for row in sampled:
            indices = ((row - low) / span * (len(ramp) - 1)).astype(int)
            lines.append("".join(ramp[i] for i in indices))
        return "\n".join(lines)


def simulate_hotspot_attack(
    floorplan: Floorplan,
    attacked_banks: list[int] | tuple[int, ...],
    heater_power_mw: float = 300.0,
    baseline_power_mw: float = 1.0,
    solver: GridThermalSolver | None = None,
    solver_config: ThermalSolverConfig | None = None,
) -> HeatmapResult:
    """Simulate a thermal hotspot attack on ``attacked_banks``.

    Parameters
    ----------
    floorplan:
        Placement of the block's MR banks.
    attacked_banks:
        Bank ids whose heaters the HT overdrives.
    heater_power_mw:
        Extra power dissipated in each attacked bank tile [mW].  The default
        corresponds to several compromised in-resonator heaters per bank
        driven near full scale (paper Fig. 6 attacks multiple heaters per
        targeted bank).
    baseline_power_mw:
        Nominal per-bank tuning power spread over its tile [mW] (workload
        background heat).
    """
    check_positive(heater_power_mw, "heater_power_mw")
    if baseline_power_mw < 0:
        raise ValidationError(f"baseline_power_mw must be non-negative, got {baseline_power_mw}")
    for bank in attacked_banks:
        if not 0 <= bank < floorplan.num_banks:
            raise ValidationError(
                f"attacked bank {bank} outside floorplan with {floorplan.num_banks} banks"
            )
    solver = solver or GridThermalSolver(solver_config)
    grid_shape = (solver.config.grid_rows, solver.config.grid_cols)
    power_map = np.zeros(grid_shape)

    for bank_id in range(floorplan.num_banks):
        cells = floorplan.bank_cells(bank_id, grid_shape)
        area = max(power_map[cells].size, 1)
        power_map[cells] += baseline_power_mw * 1e-3 / area
    for bank_id in attacked_banks:
        cells = floorplan.bank_cells(bank_id, grid_shape)
        area = max(power_map[cells].size, 1)
        power_map[cells] += heater_power_mw * 1e-3 / area

    temperature = solver.solve(power_map)
    ambient = solver.config.ambient_temperature_k
    rises = np.zeros(floorplan.num_banks)
    for bank_id in range(floorplan.num_banks):
        cells = floorplan.bank_cells(bank_id, grid_shape)
        rises[bank_id] = float(temperature[cells].mean() - ambient)
    return HeatmapResult(
        temperature_k=temperature,
        ambient_k=ambient,
        bank_temperature_rise_k=rises,
        attacked_banks=tuple(int(b) for b in attacked_banks),
        power_map_w=power_map,
    )
