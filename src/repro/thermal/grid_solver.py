"""Steady-state 2-D thermal grid solver (HotSpot substitute).

The die surface is discretized into a uniform grid of cells.  Each cell
exchanges heat laterally with its four neighbours (conduction through the
silicon/oxide stack) and vertically with the heat sink (convection to
ambient).  In steady state the balance per cell is::

    k_lat * sum(T_neighbour - T_cell) + P_cell - g_sink * (T_cell - T_ambient) = 0

which yields a sparse linear system ``A T = b`` solved with SciPy.  This
reproduces the qualitative behaviour the attack model needs from HotSpot:
attacked heaters create localized hotspots whose temperature decays with
distance, heating neighbouring MR banks less than the targeted bank.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.sparse import coo_matrix
from scipy.sparse.linalg import factorized

from repro.photonics import constants
from repro.utils.validation import check_positive, check_positive_int

__all__ = ["ThermalSolverConfig", "GridThermalSolver"]


@dataclass(frozen=True)
class ThermalSolverConfig:
    """Configuration of the thermal grid solver.

    Attributes
    ----------
    grid_rows, grid_cols:
        Thermal grid resolution.
    lateral_conductance_w_per_k:
        Conductance between adjacent cells.
    die_sink_conductance_w_per_k:
        *Total* conductance from the die to the heat sink / ambient; it is
        spread uniformly over the grid cells, which keeps the solution
        approximately independent of the grid resolution.
    ambient_temperature_k:
        Heat-sink temperature.
    """

    grid_rows: int = 64
    grid_cols: int = 64
    lateral_conductance_w_per_k: float = 2.0e-3
    die_sink_conductance_w_per_k: float = 2.3
    ambient_temperature_k: float = constants.NOMINAL_OPERATING_TEMPERATURE_K

    def __post_init__(self) -> None:
        check_positive_int(self.grid_rows, "grid_rows")
        check_positive_int(self.grid_cols, "grid_cols")
        check_positive(self.lateral_conductance_w_per_k, "lateral_conductance_w_per_k")
        check_positive(self.die_sink_conductance_w_per_k, "die_sink_conductance_w_per_k")
        check_positive(self.ambient_temperature_k, "ambient_temperature_k")

    @property
    def cell_sink_conductance_w_per_k(self) -> float:
        """Per-cell conductance to ambient."""
        return self.die_sink_conductance_w_per_k / (self.grid_rows * self.grid_cols)


class GridThermalSolver:
    """Steady-state finite-difference heat solver on a rectangular grid."""

    def __init__(self, config: ThermalSolverConfig | None = None):
        self.config = config or ThermalSolverConfig()
        self._solver_cache: dict[tuple[int, int], object] = {}

    def solve(self, power_map_w: np.ndarray) -> np.ndarray:
        """Solve for the steady-state temperature field [K].

        Parameters
        ----------
        power_map_w:
            Per-cell dissipated power [W]; shape must match the configured
            grid (or any 2-D shape, which then defines the grid).

        The conduction matrix depends only on the grid shape, so its sparse
        LU factorization is computed once per shape and reused for every
        subsequent power map — repeated solves (the common case in attack
        sweeps) reduce to two triangular substitutions.
        """
        power = np.asarray(power_map_w, dtype=float)
        if power.ndim != 2:
            raise ValueError(f"power_map_w must be 2-D, got shape {power.shape}")
        if np.any(power < 0):
            raise ValueError("power_map_w must be non-negative")
        rows, cols = power.shape
        solve_system = self._factorized_system(rows, cols)
        cfg = self.config
        g_sink = cfg.die_sink_conductance_w_per_k / (rows * cols)
        rhs = power.ravel() + g_sink * cfg.ambient_temperature_k
        return solve_system(rhs).reshape(rows, cols)

    def temperature_rise(self, power_map_w: np.ndarray) -> np.ndarray:
        """Temperature rise above ambient [K] for a power map."""
        return self.solve(power_map_w) - self.config.ambient_temperature_k

    def _factorized_system(self, rows: int, cols: int):
        """Return (and cache) the factorized conduction system for a shape."""
        key = (rows, cols)
        if key not in self._solver_cache:
            self._solver_cache[key] = factorized(self._build_system(rows, cols).tocsc())
        return self._solver_cache[key]

    def _build_system(self, rows: int, cols: int):
        """Assemble the conduction matrix for a grid shape (vectorized COO).

        Off-diagonals couple each cell to its 4-neighbours with ``-k_lat``;
        the diagonal carries the per-cell sink conductance plus ``k_lat`` per
        existing neighbour (cells on an edge have fewer).
        """
        cfg = self.config
        size = rows * cols
        k_lat = cfg.lateral_conductance_w_per_k
        g_sink = cfg.die_sink_conductance_w_per_k / size

        index = np.arange(size).reshape(rows, cols)
        pairs = [
            (index[:, :-1].ravel(), index[:, 1:].ravel()),  # horizontal edges
            (index[:-1, :].ravel(), index[1:, :].ravel()),  # vertical edges
        ]
        left = np.concatenate([a for a, _ in pairs] + [b for _, b in pairs])
        right = np.concatenate([b for _, b in pairs] + [a for a, _ in pairs])

        neighbours = np.zeros(size)
        np.add.at(neighbours, left, 1.0)

        rows_idx = np.concatenate([left, index.ravel()])
        cols_idx = np.concatenate([right, index.ravel()])
        data = np.concatenate(
            [np.full(left.size, -k_lat), g_sink + k_lat * neighbours]
        )
        return coo_matrix((data, (rows_idx, cols_idx)), shape=(size, size))
