"""Synthetic CIFAR-10 stand-in: 32x32 RGB textured object classes.

Each of the 10 classes is a deterministic composition of a colour palette, a
texture (grating / checkerboard / radial gradient) and one or two geometric
shapes.  Jitter covers palette perturbation, texture phase/frequency, shape
placement and pixel noise.
"""

from __future__ import annotations

import numpy as np

from repro.datasets._procedural import (
    add_noise_and_clip,
    checkerboard,
    gaussian_blob,
    oriented_bar,
    radial_gradient,
    ring,
    sinusoidal_texture,
)
from repro.datasets.base import Dataset
from repro.utils.rng import default_rng
from repro.utils.validation import check_positive_int

__all__ = ["SyntheticCIFAR10", "make_cifar10_like"]

IMAGE_SIZE = 32
NUM_CLASSES = 10

# Base RGB palette per class (loosely themed on CIFAR-10 categories).
_CLASS_PALETTES = np.array(
    [
        [0.55, 0.70, 0.95],  # airplane: sky blue
        [0.80, 0.20, 0.20],  # automobile: red
        [0.40, 0.70, 0.90],  # bird: light blue
        [0.85, 0.60, 0.30],  # cat: tan
        [0.50, 0.40, 0.25],  # deer: brown
        [0.60, 0.55, 0.45],  # dog: beige
        [0.25, 0.65, 0.35],  # frog: green
        [0.45, 0.30, 0.20],  # horse: dark brown
        [0.30, 0.45, 0.75],  # ship: navy
        [0.55, 0.55, 0.60],  # truck: grey
    ],
    dtype=np.float32,
)


class SyntheticCIFAR10:
    """Generator for the CIFAR-10-like synthetic dataset."""

    image_size = IMAGE_SIZE
    num_classes = NUM_CLASSES
    channels = 3

    def __init__(self, num_samples: int = 1000, seed: int = 0, noise_std: float = 0.06):
        self.num_samples = check_positive_int(num_samples, "num_samples")
        self.seed = seed
        self.noise_std = float(noise_std)

    def generate(self) -> Dataset:
        """Materialize the dataset."""
        rng = default_rng(self.seed)
        images = np.zeros(
            (self.num_samples, 3, self.image_size, self.image_size), dtype=np.float32
        )
        labels = np.arange(self.num_samples) % self.num_classes
        for idx in range(self.num_samples):
            images[idx] = _render_object(int(labels[idx]), rng, self.noise_std)
        order = rng.permutation(self.num_samples)
        return Dataset(
            images=images[order],
            labels=labels[order],
            num_classes=self.num_classes,
            name="synthetic-cifar10",
        )


def make_cifar10_like(num_samples: int = 1000, seed: int = 0, noise_std: float = 0.06) -> Dataset:
    """Convenience wrapper returning a materialized CIFAR-10-like dataset."""
    return SyntheticCIFAR10(num_samples=num_samples, seed=seed, noise_std=noise_std).generate()


def _render_object(label: int, rng: np.random.Generator, noise_std: float) -> np.ndarray:
    """Render one 3-channel image for class ``label``."""
    size = IMAGE_SIZE
    palette = _CLASS_PALETTES[label] * (0.85 + 0.3 * rng.random(3).astype(np.float32))
    palette = np.clip(palette, 0.0, 1.0)
    offset = rng.normal(0.0, 0.15, size=2)
    center = (float(offset[0]), float(offset[1]))

    # Class-specific texture layer.
    texture_kind = label % 4
    phase = float(rng.random())
    if texture_kind == 0:
        texture = sinusoidal_texture(size, freq=1.5 + label * 0.3, angle=label * 0.31, phase=phase)
    elif texture_kind == 1:
        texture = checkerboard(size, periods=2 + label % 5, phase=phase * 0.2)
    elif texture_kind == 2:
        texture = radial_gradient(size, center=center)
    else:
        texture = sinusoidal_texture(size, freq=3.0, angle=np.pi / 2 + label * 0.17, phase=phase)

    # Class-specific foreground shape layer.
    shape_kind = label % 3
    if shape_kind == 0:
        shape = gaussian_blob(size, center, sigma=0.35 + 0.05 * (label % 3))
    elif shape_kind == 1:
        shape = ring(size, radius=0.45 + 0.05 * (label % 2), thickness=0.15, center=center)
    else:
        shape = oriented_bar(size, angle=label * 0.5 + rng.normal(0.0, 0.1), thickness=0.2,
                             length=0.7, center=center)

    luminance = 0.45 * texture + 0.55 * shape
    image = np.empty((3, size, size), dtype=np.float32)
    for channel in range(3):
        channel_gain = 0.6 + 0.4 * palette[channel]
        image[channel] = np.clip(palette[channel] * 0.35 + channel_gain * luminance, 0.0, 1.0)
    return add_noise_and_clip(image, rng, noise_std)
