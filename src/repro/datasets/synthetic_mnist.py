"""Synthetic MNIST stand-in: 28x28 single-channel "digit-like" glyphs.

Each of the 10 classes is a deterministic composition of strokes (bars, rings
and blobs) loosely inspired by the corresponding digit's topology.  Per-sample
variation comes from random translation, rotation of the stroke angles,
stroke-thickness jitter, amplitude scaling and pixel noise.
"""

from __future__ import annotations

import numpy as np

from repro.datasets._procedural import (
    add_noise_and_clip,
    gaussian_blob,
    oriented_bar,
    ring,
)
from repro.datasets.base import Dataset
from repro.utils.rng import default_rng
from repro.utils.validation import check_positive_int

__all__ = ["SyntheticMNIST", "make_mnist_like"]

IMAGE_SIZE = 28
NUM_CLASSES = 10


class SyntheticMNIST:
    """Generator for the MNIST-like synthetic dataset.

    Parameters
    ----------
    num_samples:
        Total number of images (split evenly across the 10 classes).
    seed:
        Seed for the procedural generator.
    noise_std:
        Standard deviation of per-pixel Gaussian noise.
    """

    image_size = IMAGE_SIZE
    num_classes = NUM_CLASSES
    channels = 1

    def __init__(self, num_samples: int = 1000, seed: int = 0, noise_std: float = 0.08):
        self.num_samples = check_positive_int(num_samples, "num_samples")
        self.seed = seed
        self.noise_std = float(noise_std)

    def generate(self) -> Dataset:
        """Materialize the dataset."""
        rng = default_rng(self.seed)
        images = np.zeros(
            (self.num_samples, 1, self.image_size, self.image_size), dtype=np.float32
        )
        labels = np.arange(self.num_samples) % self.num_classes
        for idx in range(self.num_samples):
            images[idx, 0] = _render_digit(int(labels[idx]), rng, self.noise_std)
        # Shuffle so class order is not trivially periodic.
        order = rng.permutation(self.num_samples)
        return Dataset(
            images=images[order],
            labels=labels[order],
            num_classes=self.num_classes,
            name="synthetic-mnist",
        )


def make_mnist_like(num_samples: int = 1000, seed: int = 0, noise_std: float = 0.08) -> Dataset:
    """Convenience wrapper returning a materialized MNIST-like dataset."""
    return SyntheticMNIST(num_samples=num_samples, seed=seed, noise_std=noise_std).generate()


def _render_digit(label: int, rng: np.random.Generator, noise_std: float) -> np.ndarray:
    """Render one glyph for ``label`` with per-sample jitter."""
    size = IMAGE_SIZE
    jitter = rng.normal(0.0, 0.08, size=2)
    center = (float(jitter[0]), float(jitter[1]))
    angle_jitter = rng.normal(0.0, 0.12)
    thickness = 0.12 + abs(rng.normal(0.0, 0.03))
    canvas = np.zeros((size, size), dtype=np.float32)

    def bar(angle: float, length: float = 0.75, offset: tuple[float, float] = (0.0, 0.0)):
        return oriented_bar(
            size,
            angle + angle_jitter,
            thickness=thickness,
            length=length,
            center=(center[0] + offset[0], center[1] + offset[1]),
        )

    if label == 0:
        canvas += ring(size, radius=0.55, thickness=thickness + 0.05, center=center)
    elif label == 1:
        canvas += bar(np.pi / 2, length=0.8)
    elif label == 2:
        canvas += bar(0.0, length=0.6, offset=(-0.5, 0.0))
        canvas += bar(np.pi / 4, length=0.7)
        canvas += bar(0.0, length=0.6, offset=(0.55, 0.0))
    elif label == 3:
        canvas += bar(0.0, length=0.55, offset=(-0.5, 0.1))
        canvas += bar(0.0, length=0.55, offset=(0.0, 0.1))
        canvas += bar(0.0, length=0.55, offset=(0.5, 0.1))
        canvas += bar(np.pi / 2, length=0.65, offset=(0.0, 0.55))
    elif label == 4:
        canvas += bar(np.pi / 2, length=0.5, offset=(-0.3, -0.35))
        canvas += bar(0.0, length=0.6, offset=(0.05, 0.0))
        canvas += bar(np.pi / 2, length=0.8, offset=(0.0, 0.25))
    elif label == 5:
        canvas += bar(0.0, length=0.55, offset=(-0.5, 0.0))
        canvas += bar(np.pi / 2, length=0.4, offset=(-0.25, -0.45))
        canvas += ring(size, radius=0.35, thickness=thickness, center=(center[0] + 0.3, center[1]))
    elif label == 6:
        canvas += bar(np.pi / 2.4, length=0.6, offset=(-0.3, -0.2))
        canvas += ring(size, radius=0.35, thickness=thickness, center=(center[0] + 0.3, center[1]))
    elif label == 7:
        canvas += bar(0.0, length=0.6, offset=(-0.5, 0.0))
        canvas += bar(np.pi / 2.6, length=0.75, offset=(0.1, 0.1))
    elif label == 8:
        canvas += ring(size, radius=0.3, thickness=thickness, center=(center[0] - 0.35, center[1]))
        canvas += ring(size, radius=0.3, thickness=thickness, center=(center[0] + 0.35, center[1]))
    else:  # 9
        canvas += ring(size, radius=0.32, thickness=thickness, center=(center[0] - 0.25, center[1]))
        canvas += bar(np.pi / 2, length=0.55, offset=(0.25, 0.3))

    # Add a faint centre blob so all classes share low-frequency energy
    # (keeps the task from being solvable by a single pixel).
    canvas += 0.15 * gaussian_blob(size, center, sigma=0.8)
    amplitude = 0.75 + 0.25 * rng.random()
    canvas = np.clip(canvas, 0.0, 1.0) * amplitude
    return add_noise_and_clip(canvas, rng, noise_std)
