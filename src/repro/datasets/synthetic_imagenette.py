"""Synthetic Imagenette stand-in: larger RGB "scene" images with 10 classes.

Imagenette (the 10-class ImageNet subset used by the paper's VGG16 variant)
consists of larger natural images.  The stand-in composes a background
gradient, a mid-ground texture and two foreground shapes per class at a
configurable resolution (default 64x64, a CPU-friendly proxy for the
160px Imagenette crops).
"""

from __future__ import annotations

import numpy as np

from repro.datasets._procedural import (
    add_noise_and_clip,
    checkerboard,
    gaussian_blob,
    oriented_bar,
    radial_gradient,
    ring,
    sinusoidal_texture,
)
from repro.datasets.base import Dataset
from repro.utils.rng import default_rng
from repro.utils.validation import check_positive_int

__all__ = ["SyntheticImagenette", "make_imagenette_like"]

NUM_CLASSES = 10

# Background / foreground palettes loosely themed on the Imagenette classes
# (tench, English springer, cassette player, chain saw, church, French horn,
# garbage truck, gas pump, golf ball, parachute).
_BACKGROUNDS = np.array(
    [
        [0.20, 0.45, 0.60],
        [0.45, 0.55, 0.35],
        [0.35, 0.35, 0.40],
        [0.50, 0.45, 0.30],
        [0.60, 0.65, 0.75],
        [0.40, 0.30, 0.25],
        [0.50, 0.50, 0.55],
        [0.55, 0.40, 0.30],
        [0.35, 0.60, 0.35],
        [0.55, 0.70, 0.85],
    ],
    dtype=np.float32,
)
_FOREGROUNDS = np.array(
    [
        [0.70, 0.75, 0.60],
        [0.85, 0.80, 0.70],
        [0.20, 0.20, 0.25],
        [0.90, 0.55, 0.15],
        [0.80, 0.75, 0.70],
        [0.85, 0.70, 0.30],
        [0.30, 0.65, 0.30],
        [0.80, 0.20, 0.20],
        [0.95, 0.95, 0.95],
        [0.90, 0.35, 0.45],
    ],
    dtype=np.float32,
)


class SyntheticImagenette:
    """Generator for the Imagenette-like synthetic dataset.

    Parameters
    ----------
    num_samples:
        Total number of images.
    image_size:
        Square image resolution (default 64).
    seed:
        Procedural-generation seed.
    noise_std:
        Per-pixel Gaussian noise standard deviation.
    """

    num_classes = NUM_CLASSES
    channels = 3

    def __init__(
        self,
        num_samples: int = 800,
        image_size: int = 64,
        seed: int = 0,
        noise_std: float = 0.05,
    ):
        self.num_samples = check_positive_int(num_samples, "num_samples")
        self.image_size = check_positive_int(image_size, "image_size")
        self.seed = seed
        self.noise_std = float(noise_std)

    def generate(self) -> Dataset:
        """Materialize the dataset."""
        rng = default_rng(self.seed)
        images = np.zeros(
            (self.num_samples, 3, self.image_size, self.image_size), dtype=np.float32
        )
        labels = np.arange(self.num_samples) % self.num_classes
        for idx in range(self.num_samples):
            images[idx] = _render_scene(int(labels[idx]), self.image_size, rng, self.noise_std)
        order = rng.permutation(self.num_samples)
        return Dataset(
            images=images[order],
            labels=labels[order],
            num_classes=self.num_classes,
            name="synthetic-imagenette",
        )


def make_imagenette_like(
    num_samples: int = 800,
    image_size: int = 64,
    seed: int = 0,
    noise_std: float = 0.05,
) -> Dataset:
    """Convenience wrapper returning a materialized Imagenette-like dataset."""
    return SyntheticImagenette(
        num_samples=num_samples, image_size=image_size, seed=seed, noise_std=noise_std
    ).generate()


def _render_scene(label: int, size: int, rng: np.random.Generator, noise_std: float) -> np.ndarray:
    """Render one 3-channel scene image for class ``label``."""
    background = _BACKGROUNDS[label] * (0.85 + 0.3 * rng.random(3).astype(np.float32))
    foreground = _FOREGROUNDS[label] * (0.85 + 0.3 * rng.random(3).astype(np.float32))
    background = np.clip(background, 0.0, 1.0)
    foreground = np.clip(foreground, 0.0, 1.0)

    offset = rng.normal(0.0, 0.2, size=2)
    center = (float(offset[0]), float(offset[1]))

    # Background layer: vertical gradient + class-keyed texture.
    yy = np.linspace(0.0, 1.0, size, dtype=np.float32)[:, None]
    gradient = np.repeat(yy, size, axis=1)
    if label % 3 == 0:
        texture = sinusoidal_texture(size, freq=1.0 + label * 0.2, angle=0.4 * label,
                                     phase=float(rng.random()))
    elif label % 3 == 1:
        texture = checkerboard(size, periods=3 + label % 4, phase=float(rng.random()) * 0.3)
    else:
        texture = radial_gradient(size, center=(0.0, 0.0))
    background_layer = 0.6 * gradient + 0.4 * texture

    # Foreground layer: two class-keyed shapes.
    if label % 4 == 0:
        shape = gaussian_blob(size, center, sigma=0.3) + 0.6 * ring(
            size, radius=0.55, thickness=0.1, center=center
        )
    elif label % 4 == 1:
        shape = oriented_bar(size, angle=0.35 * label + rng.normal(0.0, 0.1),
                             thickness=0.18, length=0.8, center=center)
        shape += gaussian_blob(size, (center[0] + 0.4, center[1] - 0.3), sigma=0.2)
    elif label % 4 == 2:
        shape = ring(size, radius=0.4, thickness=0.12, center=center)
        shape += ring(size, radius=0.2, thickness=0.08, center=center)
    else:
        shape = gaussian_blob(size, center, sigma=0.45)
        shape += oriented_bar(size, angle=np.pi / 3 + rng.normal(0.0, 0.1),
                              thickness=0.12, length=0.6,
                              center=(center[0] - 0.3, center[1] + 0.3))
    shape = np.clip(shape, 0.0, 1.0)

    image = np.empty((3, size, size), dtype=np.float32)
    for channel in range(3):
        image[channel] = (
            background[channel] * background_layer * (1.0 - shape)
            + foreground[channel] * shape
        )
    image = np.clip(image, 0.0, 1.0)
    return add_noise_and_clip(image, rng, noise_std)
