"""Dataset registry keyed by the names used in the paper's Table I."""

from __future__ import annotations

from typing import Callable

from repro.datasets.base import Dataset
from repro.datasets.synthetic_cifar import make_cifar10_like
from repro.datasets.synthetic_imagenette import make_imagenette_like
from repro.datasets.synthetic_mnist import make_mnist_like
from repro.utils.validation import check_in_choices

__all__ = ["DATASET_REGISTRY", "load_dataset"]

# Maps the dataset names from Table I to the synthetic generator used here.
DATASET_REGISTRY: dict[str, Callable[..., Dataset]] = {
    "mnist": make_mnist_like,
    "cifar10": make_cifar10_like,
    "imagenette": make_imagenette_like,
}


def load_dataset(name: str, num_samples: int = 1000, seed: int = 0, **kwargs) -> Dataset:
    """Load a synthetic dataset by its paper name (``mnist``/``cifar10``/``imagenette``).

    Extra keyword arguments are forwarded to the generator (e.g. ``image_size``
    for the Imagenette stand-in).
    """
    key = check_in_choices(name.lower(), "name", DATASET_REGISTRY)
    return DATASET_REGISTRY[key](num_samples=num_samples, seed=seed, **kwargs)
