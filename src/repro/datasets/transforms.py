"""Image transforms and label encodings used by the training pipelines."""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.utils.rng import default_rng
from repro.utils.validation import ValidationError, check_positive_int

__all__ = [
    "Compose",
    "Normalize",
    "RandomHorizontalFlip",
    "RandomTranslate",
    "OneHot",
    "to_one_hot",
]


class Compose:
    """Apply a sequence of transforms in order.

    Every transform must accept ``(images, rng)`` and return the transformed
    image batch, matching the :class:`repro.datasets.base.DataLoader`
    ``transform`` contract.
    """

    def __init__(self, transforms: Sequence[Callable[[np.ndarray, np.random.Generator], np.ndarray]]):
        self.transforms = list(transforms)

    def __call__(self, images: np.ndarray, rng: np.random.Generator | None = None) -> np.ndarray:
        rng = default_rng(rng)
        for transform in self.transforms:
            images = transform(images, rng)
        return images


class Normalize:
    """Normalize images per channel: ``(x - mean) / std``."""

    def __init__(self, mean: Sequence[float] | float, std: Sequence[float] | float):
        self.mean = np.atleast_1d(np.asarray(mean, dtype=np.float32))
        self.std = np.atleast_1d(np.asarray(std, dtype=np.float32))
        if np.any(self.std <= 0):
            raise ValidationError("std values must be strictly positive")

    def __call__(self, images: np.ndarray, rng: np.random.Generator | None = None) -> np.ndarray:
        images = np.asarray(images, dtype=np.float32)
        channels = images.shape[1]
        mean = np.broadcast_to(self.mean, (channels,)).reshape(1, channels, 1, 1)
        std = np.broadcast_to(self.std, (channels,)).reshape(1, channels, 1, 1)
        return (images - mean) / std


class RandomHorizontalFlip:
    """Flip each image left-right with probability ``p`` (training augmentation)."""

    def __init__(self, p: float = 0.5):
        if not 0 <= p <= 1:
            raise ValidationError(f"p must be in [0, 1], got {p}")
        self.p = p

    def __call__(self, images: np.ndarray, rng: np.random.Generator | None = None) -> np.ndarray:
        rng = default_rng(rng)
        images = np.asarray(images, dtype=np.float32).copy()
        flip_mask = rng.random(images.shape[0]) < self.p
        images[flip_mask] = images[flip_mask, :, :, ::-1]
        return images


class RandomTranslate:
    """Translate each image by up to ``max_shift`` pixels (zero-padded)."""

    def __init__(self, max_shift: int = 2):
        self.max_shift = check_positive_int(max_shift, "max_shift")

    def __call__(self, images: np.ndarray, rng: np.random.Generator | None = None) -> np.ndarray:
        rng = default_rng(rng)
        images = np.asarray(images, dtype=np.float32)
        out = np.zeros_like(images)
        height, width = images.shape[2], images.shape[3]
        shifts = rng.integers(-self.max_shift, self.max_shift + 1, size=(images.shape[0], 2))
        for idx, (dy, dx) in enumerate(shifts):
            src_y = slice(max(0, -dy), min(height, height - dy))
            dst_y = slice(max(0, dy), min(height, height + dy))
            src_x = slice(max(0, -dx), min(width, width - dx))
            dst_x = slice(max(0, dx), min(width, width + dx))
            out[idx, :, dst_y, dst_x] = images[idx, :, src_y, src_x]
        return out


class OneHot:
    """Encode integer labels as one-hot rows."""

    def __init__(self, num_classes: int):
        self.num_classes = check_positive_int(num_classes, "num_classes")

    def __call__(self, labels: np.ndarray) -> np.ndarray:
        return to_one_hot(labels, self.num_classes)


def to_one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    """Return a ``(len(labels), num_classes)`` one-hot float32 matrix."""
    labels = np.asarray(labels, dtype=np.int64)
    if labels.ndim != 1:
        raise ValidationError(f"labels must be 1-D, got shape {labels.shape}")
    if labels.size and (labels.min() < 0 or labels.max() >= num_classes):
        raise ValidationError(
            f"labels must lie in [0, {num_classes}), got [{labels.min()}, {labels.max()}]"
        )
    encoded = np.zeros((labels.shape[0], num_classes), dtype=np.float32)
    encoded[np.arange(labels.shape[0]), labels] = 1.0
    return encoded
