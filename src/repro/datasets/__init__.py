"""Synthetic stand-ins for the paper's datasets (MNIST, CIFAR-10, Imagenette).

The SafeLight evaluation uses MNIST, CIFAR-10 and Imagenette.  Network access
is unavailable in this reproduction environment, so each dataset is replaced
by a deterministic *procedural* generator that produces class-separable images
of the same shape and channel count.  The susceptibility and mitigation
analyses measure relative accuracy change under weight corruption, which is
preserved under this substitution (see DESIGN.md, "Substitutions").
"""

from repro.datasets.base import DataLoader, Dataset, DatasetSplit, train_test_split
from repro.datasets.synthetic_mnist import SyntheticMNIST, make_mnist_like
from repro.datasets.synthetic_cifar import SyntheticCIFAR10, make_cifar10_like
from repro.datasets.synthetic_imagenette import SyntheticImagenette, make_imagenette_like
from repro.datasets.transforms import (
    Compose,
    Normalize,
    OneHot,
    RandomHorizontalFlip,
    RandomTranslate,
    to_one_hot,
)
from repro.datasets.registry import DATASET_REGISTRY, load_dataset

__all__ = [
    "Dataset",
    "DatasetSplit",
    "DataLoader",
    "train_test_split",
    "SyntheticMNIST",
    "SyntheticCIFAR10",
    "SyntheticImagenette",
    "make_mnist_like",
    "make_cifar10_like",
    "make_imagenette_like",
    "Compose",
    "Normalize",
    "OneHot",
    "RandomHorizontalFlip",
    "RandomTranslate",
    "to_one_hot",
    "DATASET_REGISTRY",
    "load_dataset",
]
