"""Shared procedural image-synthesis primitives.

The synthetic datasets draw each class from a distinct parametric "prototype"
(oriented strokes for the MNIST stand-in, textured colour blobs for the
CIFAR-10 stand-in, composed scenes for the Imagenette stand-in) and then apply
per-sample jitter: geometric perturbation, amplitude scaling, additive noise.
The result is a classification task that is easy enough to learn quickly on a
CPU yet non-trivial (models do not reach 100% accuracy), which preserves the
paper's relative accuracy-degradation trends under weight corruption.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "coordinate_grid",
    "gaussian_blob",
    "oriented_bar",
    "ring",
    "checkerboard",
    "radial_gradient",
    "sinusoidal_texture",
    "add_noise_and_clip",
]


def coordinate_grid(size: int) -> tuple[np.ndarray, np.ndarray]:
    """Return normalized coordinate grids ``(yy, xx)`` spanning [-1, 1]."""
    axis = np.linspace(-1.0, 1.0, size, dtype=np.float32)
    yy, xx = np.meshgrid(axis, axis, indexing="ij")
    return yy, xx


def gaussian_blob(size: int, center: tuple[float, float], sigma: float) -> np.ndarray:
    """A 2-D Gaussian bump centred at ``center`` (normalized coordinates)."""
    yy, xx = coordinate_grid(size)
    cy, cx = center
    return np.exp(-((yy - cy) ** 2 + (xx - cx) ** 2) / (2.0 * sigma**2)).astype(np.float32)


def oriented_bar(
    size: int,
    angle: float,
    thickness: float = 0.15,
    length: float = 0.8,
    center: tuple[float, float] = (0.0, 0.0),
) -> np.ndarray:
    """A soft-edged bar rotated by ``angle`` radians."""
    yy, xx = coordinate_grid(size)
    cy, cx = center
    y = yy - cy
    x = xx - cx
    along = x * np.cos(angle) + y * np.sin(angle)
    across = -x * np.sin(angle) + y * np.cos(angle)
    bar = np.exp(-((across / thickness) ** 2)) * (np.abs(along) < length)
    return bar.astype(np.float32)


def ring(size: int, radius: float = 0.6, thickness: float = 0.12,
         center: tuple[float, float] = (0.0, 0.0)) -> np.ndarray:
    """A soft ring (annulus) of given radius/thickness."""
    yy, xx = coordinate_grid(size)
    cy, cx = center
    r = np.sqrt((yy - cy) ** 2 + (xx - cx) ** 2)
    return np.exp(-(((r - radius) / thickness) ** 2)).astype(np.float32)


def checkerboard(size: int, periods: int = 4, phase: float = 0.0) -> np.ndarray:
    """A smooth checkerboard texture with ``periods`` periods across the image."""
    yy, xx = coordinate_grid(size)
    pattern = np.sin(np.pi * periods * (xx + phase)) * np.sin(np.pi * periods * (yy + phase))
    return (0.5 + 0.5 * pattern).astype(np.float32)


def radial_gradient(size: int, center: tuple[float, float] = (0.0, 0.0)) -> np.ndarray:
    """A radial intensity gradient (bright centre, dark edge)."""
    yy, xx = coordinate_grid(size)
    cy, cx = center
    r = np.sqrt((yy - cy) ** 2 + (xx - cx) ** 2)
    return np.clip(1.0 - r / np.sqrt(2.0), 0.0, 1.0).astype(np.float32)


def sinusoidal_texture(size: int, freq: float, angle: float, phase: float = 0.0) -> np.ndarray:
    """A sinusoidal grating of spatial frequency ``freq`` at ``angle`` radians."""
    yy, xx = coordinate_grid(size)
    coord = xx * np.cos(angle) + yy * np.sin(angle)
    return (0.5 + 0.5 * np.sin(2.0 * np.pi * freq * coord + phase)).astype(np.float32)


def add_noise_and_clip(
    image: np.ndarray,
    rng: np.random.Generator,
    noise_std: float,
    low: float = 0.0,
    high: float = 1.0,
) -> np.ndarray:
    """Add Gaussian pixel noise and clip to ``[low, high]``."""
    noisy = image + rng.normal(0.0, noise_std, size=image.shape).astype(np.float32)
    return np.clip(noisy, low, high).astype(np.float32)
