"""Dataset containers and mini-batch iteration.

The NN framework in :mod:`repro.nn` consumes images in ``NCHW`` layout
(batch, channels, height, width) as ``float32`` arrays and integer class
labels.  :class:`Dataset` is a thin immutable container over such arrays;
:class:`DataLoader` provides shuffled mini-batch iteration with a dedicated
RNG so epochs are reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator

import numpy as np

from repro.utils.rng import default_rng
from repro.utils.validation import ValidationError, check_positive_int

__all__ = ["Dataset", "DatasetSplit", "DataLoader", "train_test_split"]


@dataclass(frozen=True)
class Dataset:
    """An in-memory labelled image dataset.

    Parameters
    ----------
    images:
        ``float32`` array of shape ``(num_samples, channels, height, width)``.
    labels:
        Integer array of shape ``(num_samples,)`` with values in
        ``[0, num_classes)``.
    num_classes:
        Number of distinct classes.
    name:
        Human-readable dataset name (used in reports).
    """

    images: np.ndarray
    labels: np.ndarray
    num_classes: int
    name: str = "dataset"

    def __post_init__(self) -> None:
        images = np.asarray(self.images, dtype=np.float32)
        labels = np.asarray(self.labels, dtype=np.int64)
        if images.ndim != 4:
            raise ValidationError(
                f"images must be NCHW (4-D), got shape {images.shape}"
            )
        if labels.ndim != 1:
            raise ValidationError(f"labels must be 1-D, got shape {labels.shape}")
        if images.shape[0] != labels.shape[0]:
            raise ValidationError(
                f"images ({images.shape[0]}) and labels ({labels.shape[0]}) "
                "must have the same number of samples"
            )
        check_positive_int(self.num_classes, "num_classes")
        if labels.size and (labels.min() < 0 or labels.max() >= self.num_classes):
            raise ValidationError(
                f"labels must lie in [0, {self.num_classes}), "
                f"got range [{labels.min()}, {labels.max()}]"
            )
        object.__setattr__(self, "images", images)
        object.__setattr__(self, "labels", labels)

    def __len__(self) -> int:
        return int(self.images.shape[0])

    @property
    def image_shape(self) -> tuple[int, int, int]:
        """Shape of a single image as ``(channels, height, width)``."""
        return tuple(self.images.shape[1:])  # type: ignore[return-value]

    def __getitem__(self, index) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(images, labels)`` for an integer index or slice/array."""
        return self.images[index], self.labels[index]

    def subset(self, indices: np.ndarray, name: str | None = None) -> "Dataset":
        """Return a new :class:`Dataset` restricted to ``indices``."""
        indices = np.asarray(indices)
        return Dataset(
            images=self.images[indices],
            labels=self.labels[indices],
            num_classes=self.num_classes,
            name=name or self.name,
        )

    def class_counts(self) -> np.ndarray:
        """Return per-class sample counts (length ``num_classes``)."""
        return np.bincount(self.labels, minlength=self.num_classes)

    def map_images(self, fn: Callable[[np.ndarray], np.ndarray]) -> "Dataset":
        """Return a new dataset with ``fn`` applied to the full image tensor."""
        return Dataset(
            images=np.asarray(fn(self.images), dtype=np.float32),
            labels=self.labels,
            num_classes=self.num_classes,
            name=self.name,
        )


@dataclass(frozen=True)
class DatasetSplit:
    """A train/test split of a dataset."""

    train: Dataset
    test: Dataset

    @property
    def num_classes(self) -> int:
        return self.train.num_classes


def train_test_split(
    dataset: Dataset,
    test_fraction: float = 0.2,
    seed: int | np.random.Generator | None = 0,
) -> DatasetSplit:
    """Split ``dataset`` into train/test partitions with stratified sampling.

    Stratification keeps the class balance of both partitions equal, which
    keeps the small synthetic datasets learnable even at a few hundred
    samples.
    """
    if not 0 < test_fraction < 1:
        raise ValidationError(f"test_fraction must be in (0, 1), got {test_fraction}")
    rng = default_rng(seed)
    test_indices: list[np.ndarray] = []
    train_indices: list[np.ndarray] = []
    for cls in range(dataset.num_classes):
        cls_idx = np.flatnonzero(dataset.labels == cls)
        rng.shuffle(cls_idx)
        n_test = max(1, int(round(len(cls_idx) * test_fraction))) if len(cls_idx) else 0
        test_indices.append(cls_idx[:n_test])
        train_indices.append(cls_idx[n_test:])
    train_idx = np.concatenate(train_indices) if train_indices else np.array([], dtype=int)
    test_idx = np.concatenate(test_indices) if test_indices else np.array([], dtype=int)
    rng.shuffle(train_idx)
    rng.shuffle(test_idx)
    return DatasetSplit(
        train=dataset.subset(train_idx, name=f"{dataset.name}-train"),
        test=dataset.subset(test_idx, name=f"{dataset.name}-test"),
    )


class DataLoader:
    """Mini-batch iterator over a :class:`Dataset`.

    Parameters
    ----------
    dataset:
        Source dataset.
    batch_size:
        Number of samples per batch; the final batch may be smaller unless
        ``drop_last`` is set.
    shuffle:
        Reshuffle sample order at the start of every epoch.
    seed:
        Seed (or generator) driving the shuffle order.
    transform:
        Optional callable applied to each image batch (e.g. augmentation).
    drop_last:
        Drop the final incomplete batch.
    """

    def __init__(
        self,
        dataset: Dataset,
        batch_size: int = 32,
        shuffle: bool = True,
        seed: int | np.random.Generator | None = 0,
        transform: Callable[[np.ndarray, np.random.Generator], np.ndarray] | None = None,
        drop_last: bool = False,
    ) -> None:
        self.dataset = dataset
        self.batch_size = check_positive_int(batch_size, "batch_size")
        self.shuffle = shuffle
        self.drop_last = drop_last
        self.transform = transform
        self._rng = default_rng(seed)

    def __len__(self) -> int:
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return int(np.ceil(n / self.batch_size))

    def __iter__(self) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        indices = np.arange(len(self.dataset))
        if self.shuffle:
            self._rng.shuffle(indices)
        for start in range(0, len(indices), self.batch_size):
            batch_idx = indices[start : start + self.batch_size]
            if self.drop_last and len(batch_idx) < self.batch_size:
                break
            images, labels = self.dataset[batch_idx]
            if self.transform is not None:
                images = self.transform(images, self._rng)
            yield images, labels
