"""Vector-dot-product (VDP) units.

A VDP unit is the tile the accelerator's CONV and FC blocks are built from
(paper §IV): a grid of ``rows x cols`` microrings organised as ``rows`` MR
bank pairs of ``cols`` carriers each.  A long dot product is computed by
splitting the operand vectors into chunks of ``cols`` elements, computing each
chunk on one bank pair, and accumulating the per-bank photodetector outputs
in the optical summation block.

Since the array-core refactor the unit is a view over one
:class:`~repro.photonics.bank_array.BankArrayPair` with ``banks = rows``: all
chunks are imprinted and detected in a single vectorized pass instead of a
per-row Python loop.  The signal-level :class:`VDPUnit` here is used by the
detailed simulation and the device-level tests; the full-model inference path
in :mod:`repro.accelerator` uses the functional weight-corruption equivalent
for speed (see DESIGN.md).
"""

from __future__ import annotations

import numpy as np

from repro.photonics.bank_array import BankArrayPair
from repro.photonics.dac_adc import ADC, DAC
from repro.photonics.waveguide import WDMGrid
from repro.utils.validation import ValidationError, check_positive_int

__all__ = ["VDPUnit"]


class VDPUnit:
    """A grid of MR bank pairs computing dot products of bounded length.

    Parameters
    ----------
    rows:
        Number of MR bank pairs (parallel chunk lanes).
    cols:
        Carriers per bank (chunk length).
    dac, adc:
        Optional data converters; when provided, operands are quantized by the
        DAC before imprinting and the accumulated output is quantized by the
        ADC (paper Fig. 2(e)/(h)).
    """

    def __init__(
        self,
        rows: int,
        cols: int,
        dac: DAC | None = None,
        adc: ADC | None = None,
        q_factor: float | None = None,
    ):
        self.rows = check_positive_int(rows, "rows")
        self.cols = check_positive_int(cols, "cols")
        self.dac = dac
        self.adc = adc
        grid = WDMGrid(num_channels=cols)
        self.pair = BankArrayPair(cols, banks=rows, grid=grid, q_factor=q_factor)

    @property
    def num_mrs(self) -> int:
        """Total number of microrings in the unit (both banks of every pair)."""
        return 2 * self.rows * self.cols

    @property
    def max_vector_length(self) -> int:
        """Longest dot product the unit can compute in one pass."""
        return self.rows * self.cols

    def dot(self, inputs: np.ndarray, weights: np.ndarray) -> float:
        """Compute ``inputs . weights`` for normalized non-negative operands.

        Operands must lie in ``[0, 1]`` (the accelerator's mapping normalizes
        magnitudes and restores signs/scales electronically) and be no longer
        than :attr:`max_vector_length`.
        """
        inputs = np.asarray(inputs, dtype=float)
        weights = np.asarray(weights, dtype=float)
        if inputs.shape != weights.shape or inputs.ndim != 1:
            raise ValidationError(
                f"operands must be 1-D and equal length, got {inputs.shape} / {weights.shape}"
            )
        if inputs.size > self.max_vector_length:
            raise ValidationError(
                f"vector of length {inputs.size} exceeds unit capacity {self.max_vector_length}"
            )
        if self.dac is not None:
            inputs = np.clip(self.dac.convert(inputs), 0.0, 1.0)
            weights = np.clip(self.dac.convert(weights), 0.0, 1.0)

        # Zero-pad into the (rows, cols) bank grid: unused lanes imprint 0 and
        # contribute (at most the extinction floor) nothing to the sum.
        padded_inputs = np.zeros((self.rows, self.cols))
        padded_weights = np.zeros((self.rows, self.cols))
        padded_inputs.ravel()[: inputs.size] = inputs
        padded_weights.ravel()[: weights.size] = weights
        used_rows = -(-inputs.size // self.cols)  # 0 rows for empty operands
        self.pair.program(padded_inputs, padded_weights)
        total = float(np.sum(self.pair.dot_products()[:used_rows]))
        if self.adc is not None:
            # Partial sums are normalized by the chunk length before the ADC so
            # they stay within the converter's full-scale range.
            normalized = total / max(inputs.size, 1)
            total = float(self.adc.convert(normalized)) * max(inputs.size, 1)
        return float(total)

    def clear_attacks(self) -> None:
        """Clear attacks from every bank pair."""
        self.pair.clear_attacks()
