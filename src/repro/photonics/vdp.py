"""Vector-dot-product (VDP) units.

A VDP unit is the tile the accelerator's CONV and FC blocks are built from
(paper §IV): a grid of ``rows x cols`` microrings organised as ``rows`` MR
bank pairs of ``cols`` carriers each.  A long dot product is computed by
splitting the operand vectors into chunks of ``cols`` elements, computing each
chunk on one bank pair, and accumulating the per-bank photodetector outputs
in the optical summation block.

The signal-level :class:`VDPUnit` here is used by the detailed simulation and
the device-level tests; the full-model inference path in
:mod:`repro.accelerator` uses the functional weight-corruption equivalent for
speed (see DESIGN.md).
"""

from __future__ import annotations

import numpy as np

from repro.photonics.dac_adc import ADC, DAC
from repro.photonics.mr_bank import MRBankPair
from repro.photonics.waveguide import WDMGrid
from repro.utils.validation import ValidationError, check_positive_int

__all__ = ["VDPUnit"]


class VDPUnit:
    """A grid of MR bank pairs computing dot products of bounded length.

    Parameters
    ----------
    rows:
        Number of MR bank pairs (parallel chunk lanes).
    cols:
        Carriers per bank (chunk length).
    dac, adc:
        Optional data converters; when provided, operands are quantized by the
        DAC before imprinting and the accumulated output is quantized by the
        ADC (paper Fig. 2(e)/(h)).
    """

    def __init__(
        self,
        rows: int,
        cols: int,
        dac: DAC | None = None,
        adc: ADC | None = None,
        q_factor: float | None = None,
    ):
        self.rows = check_positive_int(rows, "rows")
        self.cols = check_positive_int(cols, "cols")
        self.dac = dac
        self.adc = adc
        grid = WDMGrid(num_channels=cols)
        self.bank_pairs = [MRBankPair(cols, grid=grid, q_factor=q_factor) for _ in range(rows)]

    @property
    def num_mrs(self) -> int:
        """Total number of microrings in the unit (both banks of every pair)."""
        return 2 * self.rows * self.cols

    @property
    def max_vector_length(self) -> int:
        """Longest dot product the unit can compute in one pass."""
        return self.rows * self.cols

    def dot(self, inputs: np.ndarray, weights: np.ndarray) -> float:
        """Compute ``inputs . weights`` for normalized non-negative operands.

        Operands must lie in ``[0, 1]`` (the accelerator's mapping normalizes
        magnitudes and restores signs/scales electronically) and be no longer
        than :attr:`max_vector_length`.
        """
        inputs = np.asarray(inputs, dtype=float)
        weights = np.asarray(weights, dtype=float)
        if inputs.shape != weights.shape or inputs.ndim != 1:
            raise ValidationError(
                f"operands must be 1-D and equal length, got {inputs.shape} / {weights.shape}"
            )
        if inputs.size > self.max_vector_length:
            raise ValidationError(
                f"vector of length {inputs.size} exceeds unit capacity {self.max_vector_length}"
            )
        if self.dac is not None:
            inputs = np.clip(self.dac.convert(inputs), 0.0, 1.0)
            weights = np.clip(self.dac.convert(weights), 0.0, 1.0)

        total = 0.0
        for chunk_index in range(0, inputs.size, self.cols):
            row = chunk_index // self.cols
            chunk_inputs = inputs[chunk_index : chunk_index + self.cols]
            chunk_weights = weights[chunk_index : chunk_index + self.cols]
            padded_inputs = np.zeros(self.cols)
            padded_weights = np.zeros(self.cols)
            padded_inputs[: chunk_inputs.size] = chunk_inputs
            padded_weights[: chunk_weights.size] = chunk_weights
            pair = self.bank_pairs[row]
            pair.program(padded_inputs, padded_weights)
            total += pair.dot_product()
        if self.adc is not None:
            # Partial sums are normalized by the chunk length before the ADC so
            # they stay within the converter's full-scale range.
            normalized = total / max(inputs.size, 1)
            total = float(self.adc.convert(normalized)) * max(inputs.size, 1)
        return float(total)

    def clear_attacks(self) -> None:
        """Clear attacks from every bank pair."""
        for pair in self.bank_pairs:
            pair.clear_attacks()
