"""Microring resonator (MR) device model.

An MR is the fundamental multiply element of the non-coherent accelerator
(paper Fig. 1).  The model covers:

* the resonance condition of Eq. 1, ``lambda_MR = 2*pi*R*n_eff / m``;
* an all-pass (through-port) Lorentzian transmission response parameterised
  by the loaded quality factor;
* weight imprinting — mapping a normalized value in ``[0, 1]`` to the
  resonance detuning that produces that through-port transmission;
* attack states: ``off-resonance`` (actuation attack) and an additional
  thermally-induced resonance shift (hotspot attack).

This scalar per-ring model is the ground truth the vectorized array-core
(:mod:`repro.photonics.bank_array`) is property-tested against; keep the
Lorentzian and detuning formulas in the two modules in sync.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

import numpy as np

from repro.photonics import constants
from repro.utils.validation import ValidationError, check_positive

__all__ = ["MRState", "MicroringResonator"]


class MRState(Enum):
    """Operational state of a microring."""

    NOMINAL = "nominal"
    OFF_RESONANCE = "off_resonance"  # actuation attack payload
    THERMALLY_SHIFTED = "thermally_shifted"  # hotspot attack payload


@dataclass
class MicroringResonator:
    """An all-pass microring resonator tuned to one WDM carrier.

    Parameters
    ----------
    target_wavelength_nm:
        Carrier wavelength the ring is trimmed to (its "assigned" channel).
    radius_um:
        Ring radius in micrometres (Eq. 1).
    q_factor:
        Loaded quality factor; sets the Lorentzian linewidth.
    effective_index:
        Effective refractive index ``n_eff`` (Eq. 1).
    extinction_ratio_db:
        On-resonance extinction of the through port (how close to zero the
        transmission dips).
    """

    target_wavelength_nm: float = constants.C_BAND_CENTER_NM
    radius_um: float = constants.DEFAULT_MR_RADIUS_UM
    q_factor: float = constants.DEFAULT_MR_Q_FACTOR
    effective_index: float = constants.SILICON_EFFECTIVE_INDEX
    extinction_ratio_db: float = 25.0
    state: MRState = MRState.NOMINAL
    #: Weight-induced detuning applied by the modulation circuit [nm].
    weight_detuning_nm: float = 0.0
    #: Extra detuning caused by an attack (thermal shift or off-resonance) [nm].
    attack_detuning_nm: float = 0.0
    _imprinted_value: float = field(default=0.0, repr=False)

    def __post_init__(self) -> None:
        check_positive(self.target_wavelength_nm, "target_wavelength_nm")
        check_positive(self.radius_um, "radius_um")
        check_positive(self.q_factor, "q_factor")
        check_positive(self.effective_index, "effective_index")
        check_positive(self.extinction_ratio_db, "extinction_ratio_db")

    # ------------------------------------------------------------ resonance
    @property
    def resonance_order(self) -> int:
        """Resonance order ``m`` closest to the target wavelength (Eq. 1)."""
        circumference_nm = 2.0 * np.pi * self.radius_um * 1e3
        return max(1, int(round(circumference_nm * self.effective_index
                                / self.target_wavelength_nm)))

    @property
    def natural_resonance_nm(self) -> float:
        """Resonance wavelength from Eq. 1 for the integer order ``m``."""
        circumference_nm = 2.0 * np.pi * self.radius_um * 1e3
        return circumference_nm * self.effective_index / self.resonance_order

    @property
    def fsr_nm(self) -> float:
        """Free spectral range ``lambda^2 / (n_g * L)`` in nm."""
        circumference_nm = 2.0 * np.pi * self.radius_um * 1e3
        return self.target_wavelength_nm**2 / (
            constants.SILICON_GROUP_INDEX * circumference_nm
        )

    @property
    def linewidth_nm(self) -> float:
        """Full-width-half-maximum linewidth ``lambda / Q`` in nm."""
        return self.target_wavelength_nm / self.q_factor

    @property
    def current_resonance_nm(self) -> float:
        """Resonance wavelength including weight and attack detuning."""
        return self.target_wavelength_nm + self.weight_detuning_nm + self.attack_detuning_nm

    # --------------------------------------------------------- transmission
    def through_transmission(self, wavelength_nm: float | np.ndarray) -> float | np.ndarray:
        """Through-port power transmission at ``wavelength_nm``.

        A Lorentzian dip centred on the current resonance:
        ``T(lambda) = 1 - (1 - T_min) / (1 + (2 * (lambda - lambda_res) / FWHM)^2)``.
        """
        t_min = 10.0 ** (-self.extinction_ratio_db / 10.0)
        detune = 2.0 * (np.asarray(wavelength_nm, dtype=float) - self.current_resonance_nm)
        lorentz = 1.0 / (1.0 + (detune / self.linewidth_nm) ** 2)
        result = 1.0 - (1.0 - t_min) * lorentz
        if np.isscalar(wavelength_nm):
            return float(result)
        return result

    def drop_transmission(self, wavelength_nm: float | np.ndarray) -> float | np.ndarray:
        """Drop-port power transmission (complement of the through port)."""
        through = self.through_transmission(wavelength_nm)
        return 1.0 - through

    # ------------------------------------------------------------ imprinting
    def detuning_for_value(self, value: float) -> float:
        """Detuning [nm] so that the *through*-port transmission equals ``value``.

        Values are normalized to ``[0, 1]`` (the accelerator normalizes
        weights/activations before mapping, handling signs electronically).
        ``value = 0`` means fully on resonance (maximum extinction, the carrier
        is suppressed); ``value = 1`` means far off resonance (the carrier
        passes untouched).  This is the encoding the MR banks use: carriers
        traverse the bank's rings in series and each ring attenuates its own
        carrier down to the programmed value.
        """
        if not np.isfinite(value):
            raise ValidationError(f"imprinted value must be finite, got {value}")
        if not 0.0 <= value <= 1.0:
            raise ValidationError(f"imprinted value must be in [0, 1], got {value}")
        t_min = 10.0 ** (-self.extinction_ratio_db / 10.0)
        if value <= t_min:
            return 0.0  # fully on resonance; the extinction floor limits the value
        if value >= 1.0:
            # Park the ring a few linewidths away: ≈98.5% transmission while
            # keeping it well inside its own channel (limits crosstalk onto
            # neighbouring carriers).
            return 4.0 * self.linewidth_nm
        # Invert the Lorentzian: T(d) = 1 - (1 - t_min) / (1 + (2 d / FWHM)^2)
        lorentz = (1.0 - value) / (1.0 - t_min)
        ratio = 1.0 / lorentz - 1.0
        ratio = max(ratio, 0.0)
        return 0.5 * self.linewidth_nm * float(np.sqrt(ratio))

    def detuning_for_drop_value(self, value: float) -> float:
        """Detuning [nm] so that the *drop*-port transmission equals ``value``.

        This is the encoding used by weight banks in the add-drop
        configuration: the ring couples a fraction ``value`` of its carrier
        onto the drop bus that feeds the photodetector.  ``value = 1`` means
        fully on resonance (maximum coupling); ``value = 0`` means far off
        resonance (no light reaches the detector from this carrier).
        """
        if not 0.0 <= value <= 1.0:
            raise ValidationError(f"imprinted value must be in [0, 1], got {value}")
        # drop(d) = 1 - through(d), so target through = 1 - value.
        return self.detuning_for_value(1.0 - value)

    def imprint(self, value: float) -> None:
        """Program the modulation circuit so the ring encodes ``value``.

        Uses the through-port encoding (see :meth:`detuning_for_value`).
        """
        self.weight_detuning_nm = self.detuning_for_value(value)
        self._imprinted_value = float(value)

    def imprint_drop(self, value: float) -> None:
        """Program the ring so its *drop*-port transmission equals ``value``."""
        self.weight_detuning_nm = self.detuning_for_drop_value(value)
        self._imprinted_value = float(value)

    @property
    def imprinted_value(self) -> float:
        """The most recently imprinted (intended) value."""
        return self._imprinted_value

    def effective_value(self, carrier_wavelength_nm: float | None = None) -> float:
        """Value the ring actually applies to its carrier, attacks included.

        This is the through-port transmission at the carrier wavelength given
        the ring's *current* (possibly attacked) resonance.  For a nominal
        ring it equals the imprinted value (up to the extinction floor); an
        off-resonance ring returns ≈1 regardless of what was programmed.
        """
        carrier = (
            self.target_wavelength_nm if carrier_wavelength_nm is None else carrier_wavelength_nm
        )
        return float(self.through_transmission(carrier))

    def effective_drop_value(self, carrier_wavelength_nm: float | None = None) -> float:
        """Drop-port transmission at the carrier, attacks included.

        For a nominal ring programmed with :meth:`imprint_drop` this equals
        the imprinted value; an off-resonance ring returns ≈0 (no light is
        coupled to the detector), which is how an actuation attack zeroes a
        weight in the add-drop weight-bank configuration.
        """
        carrier = (
            self.target_wavelength_nm if carrier_wavelength_nm is None else carrier_wavelength_nm
        )
        return float(self.drop_transmission(carrier))

    # ---------------------------------------------------------------- attacks
    def apply_actuation_attack(self) -> None:
        """Force the ring off resonance (HT in the EO actuation circuit)."""
        self.state = MRState.OFF_RESONANCE
        # The trojan drives the ring far outside the channel: several FWHM away.
        self.attack_detuning_nm = 20.0 * self.linewidth_nm

    def apply_thermal_shift(self, delta_lambda_nm: float) -> None:
        """Shift the resonance by ``delta_lambda_nm`` (HT-heated hotspot)."""
        self.state = MRState.THERMALLY_SHIFTED
        self.attack_detuning_nm = float(delta_lambda_nm)

    def clear_attack(self) -> None:
        """Restore nominal operation."""
        self.state = MRState.NOMINAL
        self.attack_detuning_nm = 0.0
