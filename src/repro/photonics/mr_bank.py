"""MR banks and MR bank-array pairs (paper Fig. 1(c), Fig. 4, Fig. 5).

An :class:`MRBank` is a row of microrings, one per WDM carrier, that imprints
a vector of normalized values onto the carriers travelling through a shared
waveguide.  An :class:`MRBankPair` chains an *input* bank (imprinting
activations) and a *weight* bank (imprinting weights): each carrier exits
carrying the product ``a_i * w_i`` and the photodetector sums the carriers to
produce the dot product.

Attacks are applied directly to the member rings: an actuation attack pushes
one ring off resonance (its carrier passes unattenuated, so the corresponding
product saturates); a thermal hotspot shifts every ring in the bank so each
ring attenuates its *neighbour's* carrier (the paper's Fig. 5), corrupting the
whole cluster of products.
"""

from __future__ import annotations

import numpy as np

from repro.photonics.microring import MicroringResonator
from repro.photonics.noise_models import OpticalNoiseModel
from repro.photonics.photodetector import Photodetector
from repro.photonics.thermal_sensitivity import ThermalSensitivity
from repro.photonics.waveguide import WDMGrid
from repro.utils.validation import ValidationError, check_positive_int

__all__ = ["MRBank", "MRBankPair"]


class MRBank:
    """A bank of microrings, one per channel of a WDM grid.

    Parameters
    ----------
    grid:
        WDM grid; the bank has exactly one ring per carrier.
    q_factor, extinction_ratio_db:
        Device parameters shared by all rings in the bank.
    encoding:
        ``"through"`` — the bank is a series of all-pass modulators and the
        encoded value is the through-port transmission of each carrier (used
        for the *input* banks); ``"drop"`` — the bank is an add-drop filter
        array and the encoded value is the fraction of each carrier coupled
        onto the drop bus feeding the photodetector (used for the *weight*
        banks).
    """

    def __init__(
        self,
        grid: WDMGrid,
        q_factor: float | None = None,
        extinction_ratio_db: float = 25.0,
        encoding: str = "through",
    ):
        if encoding not in ("through", "drop"):
            raise ValidationError(f"encoding must be 'through' or 'drop', got {encoding!r}")
        self.grid = grid
        self.encoding = encoding
        wavelengths = grid.wavelengths_nm
        kwargs = {"extinction_ratio_db": extinction_ratio_db}
        if q_factor is not None:
            kwargs["q_factor"] = q_factor
        self.mrs: list[MicroringResonator] = [
            MicroringResonator(target_wavelength_nm=float(wl), **kwargs) for wl in wavelengths
        ]

    def __len__(self) -> int:
        return len(self.mrs)

    # ------------------------------------------------------------- imprinting
    def imprint(self, values: np.ndarray) -> None:
        """Imprint a vector of normalized values (one per ring/carrier)."""
        values = np.asarray(values, dtype=float)
        if values.shape != (len(self.mrs),):
            raise ValidationError(
                f"expected {len(self.mrs)} values, got shape {values.shape}"
            )
        if np.any(values < 0) or np.any(values > 1):
            raise ValidationError("imprinted values must lie in [0, 1]")
        for ring, value in zip(self.mrs, values):
            if self.encoding == "drop":
                ring.imprint_drop(float(value))
            else:
                ring.imprint(float(value))

    def imprinted_values(self) -> np.ndarray:
        """The intended (programmed) values."""
        return np.array([ring.imprinted_value for ring in self.mrs])

    # ----------------------------------------------------------------- attacks
    def apply_actuation_attack(self, indices: np.ndarray | list[int]) -> None:
        """Push the rings at ``indices`` off resonance."""
        for index in np.atleast_1d(np.asarray(indices, dtype=int)):
            self.mrs[int(index)].apply_actuation_attack()

    def apply_thermal_attack(
        self,
        delta_temperature_k: float | np.ndarray,
        sensitivity: ThermalSensitivity | None = None,
    ) -> None:
        """Shift every ring's resonance for a temperature rise (scalar or per-ring)."""
        sensitivity = sensitivity or ThermalSensitivity()
        deltas = np.broadcast_to(np.asarray(delta_temperature_k, dtype=float), (len(self.mrs),))
        for ring, delta_t in zip(self.mrs, deltas):
            shift = sensitivity.resonance_shift_nm(ring.target_wavelength_nm, float(delta_t))
            ring.apply_thermal_shift(shift)

    def clear_attacks(self) -> None:
        """Restore all rings to nominal operation."""
        for ring in self.mrs:
            ring.clear_attack()

    # ------------------------------------------------------------ transmission
    def transmission_matrix(self) -> np.ndarray:
        """Through transmission of every ring at every carrier: shape (rings, channels)."""
        wavelengths = self.grid.wavelengths_nm
        return np.array([ring.through_transmission(wavelengths) for ring in self.mrs])

    def channel_transmission(self) -> np.ndarray:
        """Per-carrier through transmission of the whole bank (ring cascade)."""
        return np.prod(self.transmission_matrix(), axis=0)

    def channel_drop_fraction(self) -> np.ndarray:
        """Per-carrier fraction of power coupled onto the drop bus.

        Whatever a carrier does not transmit through the cascade has been
        coupled out by one of the rings, so the drop fraction is the
        complement of the cascade through transmission.
        """
        return 1.0 - self.channel_transmission()

    def effective_values(self) -> np.ndarray:
        """Values the bank actually applies per carrier (attacks included)."""
        if self.encoding == "drop":
            return self.channel_drop_fraction()
        return self.channel_transmission()


class MRBankPair:
    """Input bank + weight bank computing an elementwise product per carrier.

    Parameters
    ----------
    size:
        Vector length (number of WDM carriers and of rings per bank).
    detector:
        Photodetector summing the carriers (ideal by default).
    noise_model:
        Optional analog non-ideality model applied to the carrier powers.
    """

    def __init__(
        self,
        size: int,
        grid: WDMGrid | None = None,
        detector: Photodetector | None = None,
        noise_model: OpticalNoiseModel | None = None,
        q_factor: float | None = None,
    ):
        check_positive_int(size, "size")
        self.grid = grid or WDMGrid(num_channels=size)
        if self.grid.num_channels != size:
            raise ValidationError(
                f"grid has {self.grid.num_channels} channels but size={size}"
            )
        self.input_bank = MRBank(self.grid, q_factor=q_factor, encoding="through")
        self.weight_bank = MRBank(self.grid, q_factor=q_factor, encoding="drop")
        self.detector = detector or Photodetector()
        self.noise_model = noise_model

    @property
    def size(self) -> int:
        return self.grid.num_channels

    def program(self, inputs: np.ndarray, weights: np.ndarray) -> None:
        """Imprint normalized activations and weights onto the two banks."""
        self.input_bank.imprint(inputs)
        self.weight_bank.imprint(weights)

    def channel_products(self, input_power_w: float = 1.0) -> np.ndarray:
        """Per-carrier optical power reaching the detector (≈ ``a_i * w_i``).

        Each carrier is first attenuated to the activation value by the
        all-pass input bank and then a fraction equal to the weight value is
        coupled onto the drop bus by the add-drop weight bank.
        """
        powers = np.full(self.size, float(input_power_w))
        powers = powers * self.input_bank.channel_transmission()
        powers = powers * self.weight_bank.channel_drop_fraction()
        if self.noise_model is not None:
            powers = self.noise_model.apply_all(powers, num_mrs=2 * self.size)
        return powers

    def dot_product(self, input_power_w: float = 1.0) -> float:
        """Summed photodetector output normalized back to value units.

        With an ideal detector and no analog noise this equals
        ``sum_i a_i * w_i`` for the programmed normalized vectors.
        """
        products = self.channel_products(input_power_w)
        current = self.detector.detect(products)
        # Normalize: an ideal detector converts power*responsivity; undo both
        # the launch power and responsivity so the result is in value units.
        scale = input_power_w * self.detector.responsivity_a_per_w
        return float((current - self.detector.dark_current_a) / scale)

    def clear_attacks(self) -> None:
        """Clear attacks from both banks."""
        self.input_bank.clear_attacks()
        self.weight_bank.clear_attacks()
