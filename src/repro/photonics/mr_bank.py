"""MR banks and MR bank-array pairs (paper Fig. 1(c), Fig. 4, Fig. 5).

An :class:`MRBank` is a row of microrings, one per WDM carrier, that imprints
a vector of normalized values onto the carriers travelling through a shared
waveguide.  An :class:`MRBankPair` chains an *input* bank (imprinting
activations) and a *weight* bank (imprinting weights): each carrier exits
carrying the product ``a_i * w_i`` and the photodetector sums the carriers to
produce the dot product.

Attacks follow the paper's threat model: an actuation attack pushes one ring
off resonance (its carrier passes unattenuated, so the corresponding product
saturates); a thermal hotspot shifts every ring in the bank so each ring
attenuates its *neighbour's* carrier (the paper's Fig. 5), corrupting the
whole cluster of products.

Since the array-core refactor these classes are thin single-bank views over
the vectorized :mod:`repro.photonics.bank_array` state — no per-ring Python
objects exist in the computation path.  ``bank.mrs`` still exposes a per-ring
surface for inspection via :class:`RingView`, whose reads and writes go
straight into the backing arrays.  The seed per-ring-object implementation is
preserved in :mod:`repro.photonics.legacy` as the equivalence/benchmark
reference.
"""

from __future__ import annotations

import numpy as np

from repro.photonics.bank_array import (
    OFF_RESONANCE_LINEWIDTHS,
    BankArray,
    BankArrayPair,
    detuning_for_through_values,
    lorentzian_through,
)
from repro.photonics.noise_models import OpticalNoiseModel
from repro.photonics.photodetector import Photodetector
from repro.photonics.thermal_sensitivity import ThermalSensitivity
from repro.photonics.waveguide import WDMGrid
from repro.utils.validation import ValidationError

__all__ = ["MRBank", "MRBankPair", "RingView"]


class RingView:
    """Mutable per-ring view into a :class:`BankArray`.

    Exposes the :class:`~repro.photonics.microring.MicroringResonator`
    attribute surface (target wavelength, detunings, transmissions,
    imprint/attack operations) but stores nothing itself — every read and
    write resolves against the backing struct-of-arrays state, so mutating a
    view is equivalent to mutating the bank.
    """

    __slots__ = ("array", "bank", "index")

    def __init__(self, array: BankArray, bank: int, index: int):
        self.array = array
        self.bank = bank
        self.index = index

    # ----------------------------------------------------------- parameters
    @property
    def target_wavelength_nm(self) -> float:
        return float(self.array.target_nm[self.bank, self.index])

    @property
    def q_factor(self) -> float:
        return self.array.q_factor

    @property
    def extinction_ratio_db(self) -> float:
        return float(self.array.extinction_ratio_db[self.bank, self.index])

    @property
    def linewidth_nm(self) -> float:
        return self.target_wavelength_nm / self.q_factor

    # ---------------------------------------------------------------- state
    @property
    def weight_detuning_nm(self) -> float:
        return float(self.array.weight_detuning_nm[self.bank, self.index])

    @weight_detuning_nm.setter
    def weight_detuning_nm(self, value: float) -> None:
        self.array.weight_detuning_nm[self.bank, self.index] = float(value)

    @property
    def attack_detuning_nm(self) -> float:
        return float(self.array.attack_detuning_nm[self.bank, self.index])

    @attack_detuning_nm.setter
    def attack_detuning_nm(self, value: float) -> None:
        self.array.attack_detuning_nm[self.bank, self.index] = float(value)

    @property
    def current_resonance_nm(self) -> float:
        return self.target_wavelength_nm + self.weight_detuning_nm + self.attack_detuning_nm

    @property
    def imprinted_value(self) -> float:
        return float(self.array._imprinted[self.bank, self.index])

    # --------------------------------------------------------- transmission
    def through_transmission(self, wavelength_nm: float | np.ndarray) -> float | np.ndarray:
        t_min = float(self.array.t_min[self.bank, self.index])
        offset = np.asarray(wavelength_nm, dtype=float) - self.current_resonance_nm
        result = lorentzian_through(offset, self.linewidth_nm, t_min)
        if np.isscalar(wavelength_nm):
            return float(result)
        return result

    def drop_transmission(self, wavelength_nm: float | np.ndarray) -> float | np.ndarray:
        return 1.0 - self.through_transmission(wavelength_nm)

    def effective_value(self, carrier_wavelength_nm: float | None = None) -> float:
        carrier = (
            self.target_wavelength_nm if carrier_wavelength_nm is None else carrier_wavelength_nm
        )
        return float(self.through_transmission(carrier))

    def effective_drop_value(self, carrier_wavelength_nm: float | None = None) -> float:
        carrier = (
            self.target_wavelength_nm if carrier_wavelength_nm is None else carrier_wavelength_nm
        )
        return float(self.drop_transmission(carrier))

    # ------------------------------------------------------------ imprinting
    def _detuning_for(self, value: float) -> float:
        if not 0.0 <= value <= 1.0:
            raise ValidationError(f"imprinted value must be in [0, 1], got {value}")
        t_min = float(self.array.t_min[self.bank, self.index])
        return float(detuning_for_through_values(value, self.linewidth_nm, t_min))

    def imprint(self, value: float) -> None:
        """Program the ring's through-port transmission to ``value``."""
        self.weight_detuning_nm = self._detuning_for(float(value))
        self.array._imprinted[self.bank, self.index] = float(value)

    def imprint_drop(self, value: float) -> None:
        """Program the ring's drop-port transmission to ``value``."""
        self.weight_detuning_nm = self._detuning_for(1.0 - float(value))
        self.array._imprinted[self.bank, self.index] = float(value)

    # ---------------------------------------------------------------- attacks
    def apply_actuation_attack(self) -> None:
        self.attack_detuning_nm = OFF_RESONANCE_LINEWIDTHS * self.linewidth_nm

    def apply_thermal_shift(self, delta_lambda_nm: float) -> None:
        self.attack_detuning_nm = float(delta_lambda_nm)

    def clear_attack(self) -> None:
        self.attack_detuning_nm = 0.0


class MRBank:
    """A bank of microrings, one per channel of a WDM grid.

    Parameters
    ----------
    grid:
        WDM grid; the bank has exactly one ring per carrier.
    q_factor, extinction_ratio_db:
        Device parameters shared by all rings in the bank.
    encoding:
        ``"through"`` — the bank is a series of all-pass modulators and the
        encoded value is the through-port transmission of each carrier (used
        for the *input* banks); ``"drop"`` — the bank is an add-drop filter
        array and the encoded value is the fraction of each carrier coupled
        onto the drop bus feeding the photodetector (used for the *weight*
        banks).
    """

    def __init__(
        self,
        grid: WDMGrid,
        q_factor: float | None = None,
        extinction_ratio_db: float = 25.0,
        encoding: str = "through",
    ):
        self.array = BankArray(
            grid,
            banks=1,
            q_factor=q_factor,
            extinction_ratio_db=extinction_ratio_db,
            encoding=encoding,
        )
        self.grid = self.array.grid
        self.encoding = self.array.encoding

    @classmethod
    def _from_array(cls, array: BankArray) -> "MRBank":
        """Wrap an existing single-bank :class:`BankArray` (internal: lets
        :class:`MRBankPair` expose its banks through the MRBank surface)."""
        if array.banks != 1:
            raise ValidationError(
                f"MRBank views exactly one bank, got an array of {array.banks}"
            )
        bank = cls.__new__(cls)
        bank.array = array
        bank.grid = array.grid
        bank.encoding = array.encoding
        return bank

    def __len__(self) -> int:
        return self.array.rings

    @property
    def mrs(self) -> list[RingView]:
        """Per-ring views into the array state (reads and writes pass through)."""
        return [RingView(self.array, 0, index) for index in range(len(self))]

    # ------------------------------------------------------------- imprinting
    def imprint(self, values: np.ndarray) -> None:
        """Imprint a vector of normalized values (one per ring/carrier).

        Values must be finite and lie in ``[0, 1]``; NaN is rejected
        explicitly (it slips through plain range comparisons).
        """
        values = np.asarray(values, dtype=float)
        if values.shape != (len(self),):
            raise ValidationError(
                f"expected {len(self)} values, got shape {values.shape}"
            )
        self.array.imprint(values)

    def imprinted_values(self) -> np.ndarray:
        """The intended (programmed) values."""
        return self.array.imprinted_values()[0]

    # ----------------------------------------------------------------- attacks
    def apply_actuation_attack(self, indices: np.ndarray | list[int]) -> None:
        """Push the rings at ``indices`` off resonance."""
        self.array.apply_actuation_attack(indices)

    def apply_thermal_attack(
        self,
        delta_temperature_k: float | np.ndarray,
        sensitivity: ThermalSensitivity | None = None,
    ) -> None:
        """Shift every ring's resonance for a temperature rise (scalar or per-ring)."""
        deltas = np.broadcast_to(
            np.asarray(delta_temperature_k, dtype=float), (len(self),)
        )
        self.array.apply_thermal_attack(deltas, sensitivity)

    def clear_attacks(self) -> None:
        """Restore all rings to nominal operation."""
        self.array.clear_attacks()

    # ------------------------------------------------------------ transmission
    def transmission_matrix(self) -> np.ndarray:
        """Through transmission of every ring at every carrier: shape (rings, channels)."""
        return self.array.transmission_cube()[0]

    def channel_transmission(self) -> np.ndarray:
        """Per-carrier through transmission of the whole bank (ring cascade)."""
        return self.array.channel_transmission()[0]

    def channel_drop_fraction(self) -> np.ndarray:
        """Per-carrier fraction of power coupled onto the drop bus.

        Whatever a carrier does not transmit through the cascade has been
        coupled out by one of the rings, so the drop fraction is the
        complement of the cascade through transmission.
        """
        return self.array.channel_drop_fraction()[0]

    def effective_values(self) -> np.ndarray:
        """Values the bank actually applies per carrier (attacks included)."""
        return self.array.effective_values()[0]


class MRBankPair:
    """Input bank + weight bank computing an elementwise product per carrier.

    Parameters
    ----------
    size:
        Vector length (number of WDM carriers and of rings per bank).
    detector:
        Photodetector summing the carriers (ideal by default).
    noise_model:
        Optional analog non-ideality model applied to the carrier powers.
    """

    def __init__(
        self,
        size: int,
        grid: WDMGrid | None = None,
        detector: Photodetector | None = None,
        noise_model: OpticalNoiseModel | None = None,
        q_factor: float | None = None,
    ):
        self.pair = BankArrayPair(
            size,
            banks=1,
            grid=grid,
            detector=detector,
            noise_model=noise_model,
            q_factor=q_factor,
        )
        self.grid = self.pair.grid
        self.input_bank = MRBank._from_array(self.pair.input_bank)
        self.weight_bank = MRBank._from_array(self.pair.weight_bank)

    @property
    def size(self) -> int:
        return self.grid.num_channels

    @property
    def detector(self) -> Photodetector:
        return self.pair.detector

    @property
    def noise_model(self) -> OpticalNoiseModel | None:
        return self.pair.noise_model

    def program(self, inputs: np.ndarray, weights: np.ndarray) -> None:
        """Imprint normalized activations and weights onto the two banks."""
        self.input_bank.imprint(np.asarray(inputs, dtype=float))
        self.weight_bank.imprint(np.asarray(weights, dtype=float))

    def channel_products(self, input_power_w: float = 1.0) -> np.ndarray:
        """Per-carrier optical power reaching the detector (≈ ``a_i * w_i``).

        Each carrier is first attenuated to the activation value by the
        all-pass input bank and then a fraction equal to the weight value is
        coupled onto the drop bus by the add-drop weight bank.
        """
        return self.pair.channel_products(input_power_w)[0]

    def dot_product(self, input_power_w: float = 1.0) -> float:
        """Summed photodetector output normalized back to value units.

        With an ideal detector and no analog noise this equals
        ``sum_i a_i * w_i`` for the programmed normalized vectors.
        """
        return float(self.pair.dot_products(input_power_w)[0])

    def clear_attacks(self) -> None:
        """Clear attacks from both banks."""
        self.pair.clear_attacks()
