"""Vectorized array-core for MR banks (struct-of-arrays device state).

The object layer (:mod:`repro.photonics.mr_bank`) models one
:class:`~repro.photonics.microring.MicroringResonator` per ring, which is
convenient for inspecting a single device but quadratically slow for the
signal-level experiments: a matrix-vector product needs ``rows`` bank pairs of
``cols`` rings each, and a Monte-Carlo attack sweep re-evaluates all of them
per trial.  This module keeps the *same physics* — the Lorentzian through/drop
response, the weight-detuning encoding, the actuation and thermal attack
semantics of :mod:`repro.photonics.microring` — but stores bank state as plain
ndarrays of shape ``(banks, rings)``:

* ``target_nm`` — per-ring trimmed carrier wavelengths,
* ``weight_detuning_nm`` — detunings programmed by :meth:`BankArray.imprint`,
* ``attack_detuning_nm`` — actuation / thermal-hotspot detunings,
* ``extinction_ratio_db`` — per-ring extinction floors.

All transmissions are computed as one broadcast Lorentzian over
``(..., banks, rings, channels)`` where the leading axes are optional batch
axes (Monte-Carlo trials).  There are no per-ring Python objects or loops in
the hot path; :class:`BankArrayPair` adds the input×weight product, a batched
:meth:`~BankArrayPair.matvec` and a batched :meth:`~BankArrayPair.monte_carlo`
attack sweep.

The per-ring scalar model in :mod:`repro.photonics.microring` (and the seed
loop implementation preserved in :mod:`repro.photonics.legacy`) is the ground
truth this module is property-tested against: both paths must agree to 1e-9
(see ``tests/test_bank_array.py``).  Keep the formulas in the two modules in
sync.
"""

from __future__ import annotations

import numpy as np

from repro.photonics import constants
from repro.photonics.noise_models import OpticalNoiseModel
from repro.photonics.photodetector import Photodetector
from repro.photonics.thermal_sensitivity import ThermalSensitivity
from repro.photonics.waveguide import WDMGrid
from repro.utils.validation import ValidationError, check_positive_int

__all__ = [
    "BankArray",
    "BankArrayPair",
    "extinction_floor",
    "lorentzian_through",
    "detuning_for_through_values",
    "OFF_RESONANCE_LINEWIDTHS",
    "PARKED_LINEWIDTHS",
]

#: Actuation attacks park a ring this many linewidths off resonance
#: (mirrors :meth:`MicroringResonator.apply_actuation_attack`).
OFF_RESONANCE_LINEWIDTHS = 20.0

#: ``value = 1`` parks a ring this many linewidths away (≈98.5% transmission,
#: mirrors :meth:`MicroringResonator.detuning_for_value`).
PARKED_LINEWIDTHS = 4.0


# ------------------------------------------------------------ core formulas
def extinction_floor(extinction_ratio_db: float | np.ndarray) -> float | np.ndarray:
    """On-resonance through-port transmission floor ``T_min``."""
    return 10.0 ** (-np.asarray(extinction_ratio_db, dtype=float) / 10.0)


def lorentzian_through(
    offset_nm: np.ndarray,
    linewidth_nm: np.ndarray,
    t_min: np.ndarray,
) -> np.ndarray:
    """Through-port transmission for resonance offsets ``offset_nm``.

    ``T = 1 - (1 - T_min) / (1 + (2 * offset / FWHM)^2)`` — the same Lorentzian
    dip as :meth:`MicroringResonator.through_transmission`, broadcast over any
    shape.
    """
    detune = 2.0 * np.asarray(offset_nm, dtype=float)
    lorentz = 1.0 / (1.0 + (detune / linewidth_nm) ** 2)
    return 1.0 - (1.0 - t_min) * lorentz


def detuning_for_through_values(
    values: np.ndarray,
    linewidth_nm: np.ndarray,
    t_min: np.ndarray,
) -> np.ndarray:
    """Detuning [nm] so the through transmission equals ``values`` (elementwise).

    Vectorized inverse of the Lorentzian, mirroring
    :meth:`MicroringResonator.detuning_for_value`: values at or below the
    extinction floor sit fully on resonance, ``value = 1`` parks the ring
    :data:`PARKED_LINEWIDTHS` away, everything in between inverts the dip.
    """
    values = np.asarray(values, dtype=float)
    lorentz = (1.0 - values) / (1.0 - t_min)
    with np.errstate(divide="ignore", invalid="ignore"):
        ratio = np.maximum(1.0 / lorentz - 1.0, 0.0)
        detuning = 0.5 * linewidth_nm * np.sqrt(ratio)
    detuning = np.where(values >= 1.0, PARKED_LINEWIDTHS * linewidth_nm, detuning)
    return np.where(values <= t_min, 0.0, detuning)


# ----------------------------------------------------------------- BankArray
class BankArray:
    """A stack of MR banks held as struct-of-arrays state.

    Parameters
    ----------
    grid:
        WDM grid shared by every bank; each bank has one ring per carrier.
    banks:
        Number of banks in the stack (rows of an optical matrix, Monte-Carlo
        lanes, ...).
    q_factor, extinction_ratio_db:
        Device parameters; ``extinction_ratio_db`` may be a scalar or any
        array broadcastable to ``(banks, rings)``.
    encoding:
        ``"through"`` (all-pass input banks) or ``"drop"`` (add-drop weight
        banks) — the same convention as :class:`~repro.photonics.mr_bank.MRBank`.
    """

    def __init__(
        self,
        grid: WDMGrid,
        banks: int = 1,
        q_factor: float | None = None,
        extinction_ratio_db: float | np.ndarray = 25.0,
        encoding: str = "through",
    ):
        if encoding not in ("through", "drop"):
            raise ValidationError(f"encoding must be 'through' or 'drop', got {encoding!r}")
        check_positive_int(banks, "banks")
        self.grid = grid
        self.banks = banks
        self.encoding = encoding
        self.q_factor = float(q_factor if q_factor is not None else constants.DEFAULT_MR_Q_FACTOR)
        shape = (banks, grid.num_channels)
        #: Carrier wavelengths cached once (the grid recomputes per access).
        self.wavelengths_nm = grid.wavelengths_nm
        self.target_nm = np.broadcast_to(self.wavelengths_nm, shape).copy()
        self.extinction_ratio_db = np.broadcast_to(
            np.asarray(extinction_ratio_db, dtype=float), shape
        ).copy()
        if np.any(self.extinction_ratio_db <= 0):
            raise ValidationError("extinction_ratio_db must be positive")
        self.weight_detuning_nm = np.zeros(shape)
        self.attack_detuning_nm = np.zeros(shape)
        self._imprinted = np.zeros(shape)

    # ------------------------------------------------------------- geometry
    @property
    def rings(self) -> int:
        return self.grid.num_channels

    @property
    def shape(self) -> tuple[int, int]:
        return (self.banks, self.rings)

    @property
    def linewidth_nm(self) -> np.ndarray:
        """Per-ring FWHM linewidth ``lambda / Q``, shape ``(banks, rings)``."""
        return self.target_nm / self.q_factor

    @property
    def t_min(self) -> np.ndarray:
        """Per-ring extinction floor, shape ``(banks, rings)``."""
        return extinction_floor(self.extinction_ratio_db)

    def _broadcast(self, values, name: str) -> np.ndarray:
        values = np.asarray(values, dtype=float)
        try:
            return np.broadcast_to(values, self.shape)
        except ValueError:
            raise ValidationError(
                f"{name} with shape {values.shape} does not broadcast to {self.shape}"
            ) from None

    # ----------------------------------------------------------- imprinting
    def imprint(self, values: np.ndarray) -> None:
        """Imprint normalized values, one per (bank, ring).

        ``values`` must broadcast to ``(banks, rings)``, be finite and lie in
        ``[0, 1]``.  Non-finite operands (NaN propagated from upstream layers)
        are rejected explicitly — a ``NaN`` compares false against both bounds,
        so a plain range check would silently program the bank.
        """
        values = self._broadcast(values, "imprinted values")
        if not np.all(np.isfinite(values)):
            raise ValidationError("imprinted values must be finite (got NaN or inf)")
        if np.any(values < 0) or np.any(values > 1):
            raise ValidationError("imprinted values must lie in [0, 1]")
        encoded = 1.0 - values if self.encoding == "drop" else values
        self.weight_detuning_nm = np.ascontiguousarray(
            detuning_for_through_values(encoded, self.linewidth_nm, self.t_min)
        )
        self._imprinted = values.copy()

    def imprinted_values(self) -> np.ndarray:
        """The intended (programmed) values, shape ``(banks, rings)``."""
        return self._imprinted.copy()

    # -------------------------------------------------------------- attacks
    def actuation_detuning_nm(self) -> np.ndarray:
        """Off-resonance detuning an actuation attack applies, per ring."""
        return OFF_RESONANCE_LINEWIDTHS * self.linewidth_nm

    def apply_actuation_attack(
        self,
        indices: np.ndarray | list[int] | None = None,
        *,
        mask: np.ndarray | None = None,
    ) -> None:
        """Push rings off resonance: ``indices`` select rings in every bank,
        ``mask`` is a boolean array broadcastable to ``(banks, rings)``."""
        if indices is None and mask is None:
            return
        if mask is None:
            mask = np.zeros(self.shape, dtype=bool)
            mask[:, np.atleast_1d(np.asarray(indices, dtype=int))] = True
        else:
            mask = np.broadcast_to(np.asarray(mask, dtype=bool), self.shape)
        self.attack_detuning_nm = np.where(
            mask, self.actuation_detuning_nm(), self.attack_detuning_nm
        )

    def thermal_shift_nm(
        self,
        delta_temperature_k: float | np.ndarray,
        sensitivity: ThermalSensitivity | None = None,
    ) -> np.ndarray:
        """Eq. 2 resonance shift for a temperature rise, broadcast per ring.

        ``delta_temperature_k`` may carry leading batch axes; the result has
        shape ``broadcast(delta, (banks, rings))``.
        """
        sensitivity = sensitivity or ThermalSensitivity()
        deltas = np.asarray(delta_temperature_k, dtype=float)
        return np.asarray(sensitivity.resonance_shift_nm(self.target_nm, deltas))

    def apply_thermal_attack(
        self,
        delta_temperature_k: float | np.ndarray,
        sensitivity: ThermalSensitivity | None = None,
        *,
        where: np.ndarray | None = None,
    ) -> None:
        """Shift resonances for a temperature rise (scalar, per-bank via a
        ``(banks, 1)`` array, or per-ring).

        A thermal shift *replaces* any prior attack detuning on the affected
        rings, matching the per-ring object semantics
        (:meth:`MicroringResonator.apply_thermal_shift` overwrites the attack
        state).  ``where`` restricts the overwrite to a boolean subset of
        ``(banks, rings)``.
        """
        shift = self._broadcast(
            self.thermal_shift_nm(delta_temperature_k, sensitivity), "thermal shift"
        )
        if where is None:
            self.attack_detuning_nm = shift.copy()
        else:
            where = np.broadcast_to(np.asarray(where, dtype=bool), self.shape)
            self.attack_detuning_nm = np.where(where, shift, self.attack_detuning_nm)

    def clear_attacks(self) -> None:
        """Restore every ring to nominal operation."""
        self.attack_detuning_nm = np.zeros(self.shape)

    # --------------------------------------------------------- transmission
    def _resonance_nm(self, attack_detuning_nm: np.ndarray | None) -> np.ndarray:
        attack = self.attack_detuning_nm if attack_detuning_nm is None else (
            np.asarray(attack_detuning_nm, dtype=float)
        )
        return self.target_nm + self.weight_detuning_nm + attack

    def _through_cube(
        self,
        resonance: np.ndarray,
        linewidth_nm: np.ndarray | None = None,
        t_min: np.ndarray | None = None,
    ) -> np.ndarray:
        """Broadcast Lorentzian evaluated with in-place passes over one buffer.

        Arithmetically identical to :func:`lorentzian_through` (same operation
        order as the scalar ring model) but allocates a single
        ``(..., rings, channels)`` cube instead of one temporary per step —
        the Monte-Carlo hot path is memory-bound.
        """
        linewidth_nm = self.linewidth_nm if linewidth_nm is None else linewidth_nm
        t_min = self.t_min if t_min is None else t_min
        cube = np.subtract(self.wavelengths_nm, resonance[..., None])
        cube *= 2.0
        cube /= linewidth_nm[..., None]
        np.square(cube, out=cube)
        cube += 1.0
        np.reciprocal(cube, out=cube)
        cube *= 1.0 - t_min[..., None]
        np.subtract(1.0, cube, out=cube)
        return cube

    def transmission_cube(
        self, attack_detuning_nm: np.ndarray | None = None
    ) -> np.ndarray:
        """Through transmission of every ring at every carrier.

        Returns ``(..., banks, rings, channels)``; the optional
        ``attack_detuning_nm`` override may carry leading batch axes (it
        replaces the stored attack state, exactly as re-applying attacks per
        trial would).
        """
        return self._through_cube(self._resonance_nm(attack_detuning_nm))

    def _banks_uniform(self, resonance: np.ndarray) -> bool:
        """True when every bank row carries identical state (e.g. all input
        banks of a matvec imprint the same vector) — the cascade then only
        needs one row's cube."""
        return (
            resonance.ndim == 2
            and self.banks > 1
            and bool(np.all(resonance[1:] == resonance[:1]))
            and bool(np.all(self.extinction_ratio_db[1:] == self.extinction_ratio_db[:1]))
        )

    def channel_transmission(
        self, attack_detuning_nm: np.ndarray | None = None
    ) -> np.ndarray:
        """Per-carrier through transmission of each bank cascade: ``(..., banks, channels)``."""
        resonance = self._resonance_nm(attack_detuning_nm)
        if self._banks_uniform(resonance):
            row = np.prod(
                self._through_cube(
                    resonance[:1], self.linewidth_nm[:1], self.t_min[:1]
                ),
                axis=-2,
            )
            return np.broadcast_to(row, (self.banks, self.grid.num_channels))
        return np.prod(self._through_cube(resonance), axis=-2)

    def channel_drop_fraction(
        self, attack_detuning_nm: np.ndarray | None = None
    ) -> np.ndarray:
        """Per-carrier fraction of power coupled onto each bank's drop bus."""
        return 1.0 - self.channel_transmission(attack_detuning_nm)

    def effective_values(self) -> np.ndarray:
        """Values each bank actually applies per carrier (attacks included)."""
        if self.encoding == "drop":
            return self.channel_drop_fraction()
        return self.channel_transmission()


# ------------------------------------------------------------- BankArrayPair
class BankArrayPair:
    """A stack of input×weight bank pairs computing batched dot products.

    The input banks are all-pass (through encoding) and imprint activations;
    the weight banks are add-drop (drop encoding) and imprint weights.  Bank
    ``b`` computes ``sum_i inputs[b, i] * weights[b, i]`` optically, so with
    ``banks = rows`` the pair stack is an optical matrix-vector engine.

    Parameters
    ----------
    size:
        Carriers (rings) per bank.
    banks:
        Number of bank pairs in the stack.
    detector:
        Photodetector summing each bank's carriers (ideal by default).
    noise_model:
        Optional analog non-ideality model applied to the carrier powers.
    """

    def __init__(
        self,
        size: int,
        banks: int = 1,
        grid: WDMGrid | None = None,
        detector: Photodetector | None = None,
        noise_model: OpticalNoiseModel | None = None,
        q_factor: float | None = None,
        extinction_ratio_db: float | np.ndarray = 25.0,
    ):
        check_positive_int(size, "size")
        self.grid = grid or WDMGrid(num_channels=size)
        if self.grid.num_channels != size:
            raise ValidationError(
                f"grid has {self.grid.num_channels} channels but size={size}"
            )
        self.input_bank = BankArray(
            self.grid, banks, q_factor=q_factor,
            extinction_ratio_db=extinction_ratio_db, encoding="through",
        )
        self.weight_bank = BankArray(
            self.grid, banks, q_factor=q_factor,
            extinction_ratio_db=extinction_ratio_db, encoding="drop",
        )
        self.detector = detector or Photodetector()
        self.noise_model = noise_model

    @property
    def size(self) -> int:
        return self.grid.num_channels

    @property
    def banks(self) -> int:
        return self.input_bank.banks

    def program(self, inputs: np.ndarray, weights: np.ndarray) -> None:
        """Imprint normalized activations and weights onto the bank stacks."""
        self.input_bank.imprint(inputs)
        self.weight_bank.imprint(weights)

    def clear_attacks(self) -> None:
        self.input_bank.clear_attacks()
        self.weight_bank.clear_attacks()

    # ------------------------------------------------------------- products
    def channel_products(
        self,
        input_power_w: float = 1.0,
        weight_attack_detuning_nm: np.ndarray | None = None,
    ) -> np.ndarray:
        """Per-carrier optical power reaching each detector: ``(..., banks, channels)``."""
        powers = float(input_power_w) * self.input_bank.channel_transmission()
        powers = powers * self.weight_bank.channel_drop_fraction(weight_attack_detuning_nm)
        if self.noise_model is not None:
            powers = self.noise_model.apply_all(powers, num_mrs=2 * self.size)
        return powers

    def _detect(self, products: np.ndarray, input_power_w: float) -> np.ndarray:
        """Batched photodetection normalized back to value units.

        Mirrors :meth:`Photodetector.detect` + the bank-pair normalization:
        sum the (clipped) carrier powers, convert to photocurrent, undo launch
        power and responsivity.  Detector noise (when enabled) is drawn one
        sample per bank in row-major order, matching the draw order of
        repeated scalar ``detect`` calls.
        """
        total = np.sum(np.clip(products, 0.0, None), axis=-1)
        current = self.detector.responsivity_a_per_w * total + self.detector.dark_current_a
        if self.detector.enable_noise:
            noise = np.array(
                [self.detector._noise_current(c) for c in np.ravel(current)]
            ).reshape(np.shape(current))
            current = current + noise
        scale = input_power_w * self.detector.responsivity_a_per_w
        return (current - self.detector.dark_current_a) / scale

    def dot_products(self, input_power_w: float = 1.0) -> np.ndarray:
        """All banks' dot products in value units, shape ``(banks,)``."""
        return self._detect(self.channel_products(input_power_w), input_power_w)

    # --------------------------------------------------------------- matvec
    def matvec(
        self,
        matrix: np.ndarray,
        vector: np.ndarray,
        attacked_rows: dict[int, list[int]] | None = None,
        row_delta_t_k: dict[int, float] | None = None,
        sensitivity: ThermalSensitivity | None = None,
        input_power_w: float = 1.0,
    ) -> np.ndarray:
        """Optical ``matrix @ vector`` with one bank pair per matrix row.

        ``matrix`` must have shape ``(banks, size)``; the vector is imprinted
        on every input bank.  ``attacked_rows`` maps row → actuated weight-MR
        indices and ``row_delta_t_k`` maps row → bank temperature rise; a
        row's thermal attack overwrites its actuation detunings, matching the
        sequential attack application of the object path.
        """
        matrix = np.asarray(matrix, dtype=float)
        vector = np.asarray(vector, dtype=float)
        if matrix.shape != (self.banks, self.size):
            raise ValidationError(
                f"matrix must be ({self.banks}, {self.size}), got {matrix.shape}"
            )
        if vector.shape != (self.size,):
            raise ValidationError(
                f"vector must be ({self.size},), got {vector.shape}"
            )
        self.clear_attacks()
        self.program(vector, matrix)
        if attacked_rows:
            mask = np.zeros((self.banks, self.size), dtype=bool)
            for row, indices in attacked_rows.items():
                if indices:
                    mask[int(row), np.asarray(indices, dtype=int)] = True
            self.weight_bank.apply_actuation_attack(mask=mask)
        if row_delta_t_k:
            deltas = np.zeros((self.banks, 1))
            for row, delta in row_delta_t_k.items():
                deltas[int(row), 0] = float(delta)
            self.weight_bank.apply_thermal_attack(
                deltas, sensitivity, where=deltas > 0
            )
        return self.dot_products(input_power_w)

    # ---------------------------------------------------------- Monte Carlo
    def monte_carlo(
        self,
        delta_t_k: np.ndarray | None = None,
        actuation_masks: np.ndarray | None = None,
        sensitivity: ThermalSensitivity | None = None,
        input_power_w: float = 1.0,
        max_chunk_elements: int = 1 << 21,
    ) -> np.ndarray:
        """Batched attacked dot products over leading trial axes.

        For each trial the weight banks' attack state is rebuilt from scratch
        (the pair's stored attack state is the per-trial baseline): actuation
        masks push the selected rings :data:`OFF_RESONANCE_LINEWIDTHS` off
        resonance, then positive thermal deltas overwrite the affected rings
        — the same precedence as applying the attacks sequentially per trial.

        Parameters
        ----------
        delta_t_k:
            Temperature rises.  Axes are anchored at the *leading* side:
            ``(trials,)`` applies one temperature to every bank and ring of a
            trial, ``(trials, banks)`` one per bank, and
            ``(trials, banks, rings)`` one per ring; singleton axes broadcast
            (so ``(trials, 1, rings)`` is a per-ring profile shared by all
            banks).  Shapes that do not broadcast to ``(trials, banks,
            rings)`` raise :class:`ValidationError`.
        actuation_masks:
            Boolean masks with the same axis convention.
        max_chunk_elements:
            Upper bound on the ``trials*banks*rings*channels`` transmission
            cube held at once; larger sweeps are processed in trial chunks so
            the working set stays cache-resident (the in-place Lorentzian is
            memory-bound) without changing results.  The default keeps the
            cube around 16 MB.

        Returns
        -------
        ndarray of shape ``(trials, banks)``.
        """
        if delta_t_k is None and actuation_masks is None:
            raise ValidationError(
                "monte_carlo needs delta_t_k and/or actuation_masks"
            )
        bank_shape = (self.banks, self.size)

        def as_trial_axes(array: np.ndarray, dtype, name: str) -> np.ndarray:
            """Pad to (trials, banks, rings): missing trailing axes broadcast."""
            array = np.asarray(array, dtype=dtype)
            given_shape = array.shape
            if array.ndim > 3:
                raise ValidationError(
                    f"{name} must have at most 3 dims, got shape {given_shape}"
                )
            array = array.reshape(given_shape + (1,) * (3 - array.ndim))
            try:
                np.broadcast_shapes(array.shape[1:], bank_shape)
            except ValueError:
                raise ValidationError(
                    f"{name} with shape {given_shape} does not broadcast to "
                    f"(trials,) + {bank_shape}: after the leading trials axis, "
                    f"axes are (banks, rings)"
                ) from None
            return array

        trials = None
        if delta_t_k is not None:
            delta_t_k = as_trial_axes(delta_t_k, float, "delta_t_k")
            trials = delta_t_k.shape[0]
        if actuation_masks is not None:
            actuation_masks = as_trial_axes(actuation_masks, bool, "actuation_masks")
            if trials is not None and 1 not in (trials, actuation_masks.shape[0]) \
                    and actuation_masks.shape[0] != trials:
                raise ValidationError(
                    f"trial axes disagree: {actuation_masks.shape[0]} masks "
                    f"vs {trials} temperature rows"
                )
            trials = max(trials or 1, actuation_masks.shape[0])

        # Per-trial attack detunings, built on top of the stored attack state.
        attack = np.broadcast_to(
            self.weight_bank.attack_detuning_nm, (trials,) + bank_shape
        )
        if actuation_masks is not None:
            masks = np.broadcast_to(actuation_masks, (trials,) + bank_shape)
            attack = np.where(
                masks, self.weight_bank.actuation_detuning_nm(), attack
            )
        if delta_t_k is not None:
            deltas = np.broadcast_to(delta_t_k, (trials,) + bank_shape)
            shift = self.weight_bank.thermal_shift_nm(deltas, sensitivity)
            attack = np.where(deltas > 0, shift, attack)

        # The input banks carry no per-trial attacks: their transmission is
        # trial-invariant and computed once.
        input_ct = self.input_bank.channel_transmission()  # (banks, channels)

        cube_elements = self.banks * self.size * self.grid.num_channels
        chunk = max(1, int(max_chunk_elements // max(cube_elements, 1)))
        outputs = np.empty((trials, self.banks))
        for start in range(0, trials, chunk):
            stop = min(start + chunk, trials)
            drop = self.weight_bank.channel_drop_fraction(attack[start:stop])
            products = float(input_power_w) * input_ct * drop
            if self.noise_model is not None:
                products = self.noise_model.apply_all(products, num_mrs=2 * self.size)
            outputs[start:stop] = self._detect(products, input_power_w)
        return outputs
