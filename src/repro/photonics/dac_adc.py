"""Digital-to-analog and analog-to-digital converter models.

DAC arrays drive the MR tuning/actuation signals; ADC arrays digitize the
photodetector outputs (paper Fig. 2(e), (h)).  Both are modelled as uniform
quantizers over a configurable full-scale range; quantization of weights and
partial sums is one of the fidelity effects the accelerator simulation can
enable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import ValidationError, check_positive, check_positive_int

__all__ = ["DAC", "ADC"]


@dataclass(frozen=True)
class _Quantizer:
    """Shared uniform mid-rise quantizer."""

    bits: int
    full_scale: float = 1.0
    bipolar: bool = True

    def __post_init__(self) -> None:
        check_positive_int(self.bits, "bits")
        if self.bits > 32:
            raise ValidationError(f"bits must be <= 32, got {self.bits}")
        check_positive(self.full_scale, "full_scale")

    @property
    def levels(self) -> int:
        return 2**self.bits

    @property
    def step(self) -> float:
        span = 2.0 * self.full_scale if self.bipolar else self.full_scale
        return span / (self.levels - 1)

    def quantize(self, values: np.ndarray | float) -> np.ndarray | float:
        """Clip to full scale and round to the nearest quantizer level."""
        values = np.asarray(values, dtype=np.float64)
        low = -self.full_scale if self.bipolar else 0.0
        clipped = np.clip(values, low, self.full_scale)
        quantized = np.round((clipped - low) / self.step) * self.step + low
        if quantized.ndim == 0:
            return float(quantized)
        return quantized

    def quantization_error(self, values: np.ndarray | float) -> np.ndarray | float:
        """Difference between the quantized and original values."""
        return self.quantize(values) - np.asarray(values, dtype=np.float64)


@dataclass(frozen=True)
class DAC(_Quantizer):
    """Digital-to-analog converter driving the MR actuation signals.

    CrossLight-class accelerators use moderate-resolution DACs; the default
    matches the commonly assumed 8-bit weight/activation resolution.
    """

    bits: int = 8
    power_w: float = 3e-3
    latency_s: float = 0.5e-9

    def convert(self, digital_values: np.ndarray | float) -> np.ndarray | float:
        """Convert digital parameter values into (quantized) analog levels."""
        return self.quantize(digital_values)


@dataclass(frozen=True)
class ADC(_Quantizer):
    """Analog-to-digital converter digitizing the photodetector outputs."""

    bits: int = 10
    power_w: float = 15e-3
    latency_s: float = 1e-9

    def convert(self, analog_values: np.ndarray | float) -> np.ndarray | float:
        """Digitize analog partial sums into quantized values."""
        return self.quantize(analog_values)
