"""Seed object-per-ring MR bank implementation (reference path).

This is the original loop-based implementation of
:class:`~repro.photonics.mr_bank.MRBank` / ``MRBankPair``: one
:class:`~repro.photonics.microring.MicroringResonator` object per ring, with
per-ring Python loops for imprinting, attacks and transmission.  The public
classes in :mod:`repro.photonics.mr_bank` are now thin views over the
vectorized array-core (:mod:`repro.photonics.bank_array`); this module keeps
the object path alive for two purposes:

* **ground truth** — the array-core equivalence property tests compare
  :class:`~repro.photonics.bank_array.BankArray` against this path to 1e-9
  (``tests/test_bank_array.py``);
* **benchmark baseline** — ``benchmarks/bench_signal_core.py`` and
  ``python -m repro bench`` time the seed object path against the array-core.

Do not use these classes in new code; they are intentionally slow.
"""

from __future__ import annotations

import numpy as np

from repro.photonics.microring import MicroringResonator
from repro.photonics.noise_models import OpticalNoiseModel
from repro.photonics.photodetector import Photodetector
from repro.photonics.thermal_sensitivity import ThermalSensitivity
from repro.photonics.waveguide import WDMGrid
from repro.utils.validation import ValidationError, check_positive_int

__all__ = ["ObjectMRBank", "ObjectMRBankPair"]


class ObjectMRBank:
    """Seed loop-based bank of microrings, one per channel of a WDM grid."""

    def __init__(
        self,
        grid: WDMGrid,
        q_factor: float | None = None,
        extinction_ratio_db: float = 25.0,
        encoding: str = "through",
    ):
        if encoding not in ("through", "drop"):
            raise ValidationError(f"encoding must be 'through' or 'drop', got {encoding!r}")
        self.grid = grid
        self.encoding = encoding
        kwargs = {"extinction_ratio_db": extinction_ratio_db}
        if q_factor is not None:
            kwargs["q_factor"] = q_factor
        self.mrs: list[MicroringResonator] = [
            MicroringResonator(target_wavelength_nm=float(wl), **kwargs)
            for wl in grid.wavelengths_nm
        ]

    def __len__(self) -> int:
        return len(self.mrs)

    # ------------------------------------------------------------- imprinting
    def imprint(self, values: np.ndarray) -> None:
        """Imprint a vector of normalized values (one per ring/carrier)."""
        values = np.asarray(values, dtype=float)
        if values.shape != (len(self.mrs),):
            raise ValidationError(
                f"expected {len(self.mrs)} values, got shape {values.shape}"
            )
        if not np.all(np.isfinite(values)):
            raise ValidationError("imprinted values must be finite (got NaN or inf)")
        if np.any(values < 0) or np.any(values > 1):
            raise ValidationError("imprinted values must lie in [0, 1]")
        for ring, value in zip(self.mrs, values):
            if self.encoding == "drop":
                ring.imprint_drop(float(value))
            else:
                ring.imprint(float(value))

    def imprinted_values(self) -> np.ndarray:
        return np.array([ring.imprinted_value for ring in self.mrs])

    # ----------------------------------------------------------------- attacks
    def apply_actuation_attack(self, indices: np.ndarray | list[int]) -> None:
        for index in np.atleast_1d(np.asarray(indices, dtype=int)):
            self.mrs[int(index)].apply_actuation_attack()

    def apply_thermal_attack(
        self,
        delta_temperature_k: float | np.ndarray,
        sensitivity: ThermalSensitivity | None = None,
    ) -> None:
        sensitivity = sensitivity or ThermalSensitivity()
        deltas = np.broadcast_to(np.asarray(delta_temperature_k, dtype=float), (len(self.mrs),))
        for ring, delta_t in zip(self.mrs, deltas):
            shift = sensitivity.resonance_shift_nm(ring.target_wavelength_nm, float(delta_t))
            ring.apply_thermal_shift(shift)

    def clear_attacks(self) -> None:
        for ring in self.mrs:
            ring.clear_attack()

    # ------------------------------------------------------------ transmission
    def transmission_matrix(self) -> np.ndarray:
        """Through transmission of every ring at every carrier: (rings, channels)."""
        wavelengths = self.grid.wavelengths_nm
        return np.array([ring.through_transmission(wavelengths) for ring in self.mrs])

    def channel_transmission(self) -> np.ndarray:
        return np.prod(self.transmission_matrix(), axis=0)

    def channel_drop_fraction(self) -> np.ndarray:
        return 1.0 - self.channel_transmission()

    def effective_values(self) -> np.ndarray:
        if self.encoding == "drop":
            return self.channel_drop_fraction()
        return self.channel_transmission()


class ObjectMRBankPair:
    """Seed input bank + weight bank pair over per-ring objects."""

    def __init__(
        self,
        size: int,
        grid: WDMGrid | None = None,
        detector: Photodetector | None = None,
        noise_model: OpticalNoiseModel | None = None,
        q_factor: float | None = None,
    ):
        check_positive_int(size, "size")
        self.grid = grid or WDMGrid(num_channels=size)
        if self.grid.num_channels != size:
            raise ValidationError(
                f"grid has {self.grid.num_channels} channels but size={size}"
            )
        self.input_bank = ObjectMRBank(self.grid, q_factor=q_factor, encoding="through")
        self.weight_bank = ObjectMRBank(self.grid, q_factor=q_factor, encoding="drop")
        self.detector = detector or Photodetector()
        self.noise_model = noise_model

    @property
    def size(self) -> int:
        return self.grid.num_channels

    def program(self, inputs: np.ndarray, weights: np.ndarray) -> None:
        self.input_bank.imprint(inputs)
        self.weight_bank.imprint(weights)

    def channel_products(self, input_power_w: float = 1.0) -> np.ndarray:
        powers = np.full(self.size, float(input_power_w))
        powers = powers * self.input_bank.channel_transmission()
        powers = powers * self.weight_bank.channel_drop_fraction()
        if self.noise_model is not None:
            powers = self.noise_model.apply_all(powers, num_mrs=2 * self.size)
        return powers

    def dot_product(self, input_power_w: float = 1.0) -> float:
        products = self.channel_products(input_power_w)
        current = self.detector.detect(products)
        scale = input_power_w * self.detector.responsivity_a_per_w
        return float((current - self.detector.dark_current_a) / scale)

    def clear_attacks(self) -> None:
        self.input_bank.clear_attacks()
        self.weight_bank.clear_attacks()
