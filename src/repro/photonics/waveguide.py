"""Waveguides and the wavelength-division-multiplexing (WDM) channel grid."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.photonics import constants
from repro.utils.validation import check_positive, check_positive_int

__all__ = ["WDMGrid", "Waveguide"]


@dataclass(frozen=True)
class WDMGrid:
    """An evenly spaced WDM carrier grid centred on the C band.

    The number of channels equals the number of columns in each MR bank
    (paper §III.B.2): each column's MR pair is trimmed to one carrier.
    """

    num_channels: int
    spacing_nm: float = constants.DEFAULT_CHANNEL_SPACING_NM
    center_nm: float = constants.C_BAND_CENTER_NM

    def __post_init__(self) -> None:
        check_positive_int(self.num_channels, "num_channels")
        check_positive(self.spacing_nm, "spacing_nm")
        check_positive(self.center_nm, "center_nm")

    @property
    def wavelengths_nm(self) -> np.ndarray:
        """Carrier wavelengths, ascending [nm]."""
        offsets = (np.arange(self.num_channels) - (self.num_channels - 1) / 2.0)
        return self.center_nm + offsets * self.spacing_nm

    def channel_of(self, wavelength_nm: float) -> int | None:
        """Index of the carrier nearest ``wavelength_nm``.

        Returns ``None`` when the wavelength falls outside the grid by more
        than half a channel spacing (an "unsupported wavelength", as happens
        to the first MR in the paper's Fig. 5 hotspot example).
        """
        wavelengths = self.wavelengths_nm
        index = int(np.argmin(np.abs(wavelengths - wavelength_nm)))
        if abs(wavelengths[index] - wavelength_nm) > self.spacing_nm / 2.0:
            return None
        return index

    def shift_in_channels(self, shift_nm: float) -> int:
        """Number of whole channels a resonance shift of ``shift_nm`` spans."""
        return int(round(shift_nm / self.spacing_nm))


@dataclass(frozen=True)
class Waveguide:
    """A straight waveguide segment with propagation and coupling loss."""

    length_mm: float = 1.0
    propagation_loss_db_per_cm: float = 1.5
    coupling_loss_db: float = 0.5

    def __post_init__(self) -> None:
        check_positive(self.length_mm, "length_mm")
        if self.propagation_loss_db_per_cm < 0 or self.coupling_loss_db < 0:
            raise ValueError("losses must be non-negative")

    @property
    def total_loss_db(self) -> float:
        """Total insertion loss of the segment [dB]."""
        return self.propagation_loss_db_per_cm * self.length_mm / 10.0 + self.coupling_loss_db

    @property
    def transmission(self) -> float:
        """Linear power transmission of the segment."""
        return 10.0 ** (-self.total_loss_db / 10.0)

    def propagate(self, power_w: float | np.ndarray) -> float | np.ndarray:
        """Attenuate optical power through the segment."""
        return power_w * self.transmission
