"""MR peripheral tuning circuits (paper §II.B and Fig. 1(b)).

Two circuit families bias the MR resonance:

* **Electro-optic (EO)** carrier-injection tuning — nanosecond latency,
  ≈4 µW/nm, but only a small tuning range.  Used for signal actuation
  (imprinting activations/weights).  An HT here produces the *actuation
  attack*.
* **Thermo-optic (TO)** tuning through an integrated heater — microsecond
  latency, ≈27 mW/FSR, large range.  Used to counter fabrication/thermal
  drift.  An HT here overdrives the heater and produces the *thermal hotspot
  attack*.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.photonics import constants
from repro.utils.validation import ValidationError, check_positive

__all__ = ["TuningCircuit", "ElectroOpticTuner", "ThermoOpticTuner", "combined_tuning_cost"]


@dataclass(frozen=True)
class TuningCost:
    """Power and latency cost of a tuning operation."""

    power_w: float
    latency_s: float
    energy_j: float


class TuningCircuit:
    """Common interface of the EO and TO tuning circuits."""

    #: Maximum resonance shift this circuit can impose [nm].
    max_range_nm: float

    def cost_for_shift(self, shift_nm: float) -> TuningCost:
        """Power/latency/energy needed to hold a resonance shift of ``shift_nm``."""
        raise NotImplementedError

    def check_range(self, shift_nm: float) -> float:
        """Validate that ``shift_nm`` is within the achievable range."""
        if abs(shift_nm) > self.max_range_nm:
            raise ValidationError(
                f"{type(self).__name__} cannot shift by {shift_nm:.3f} nm "
                f"(max {self.max_range_nm:.3f} nm)"
            )
        return float(shift_nm)


class ElectroOpticTuner(TuningCircuit):
    """Carrier-injection (EO) tuning: fast, efficient, small range."""

    def __init__(
        self,
        power_per_nm_w: float = constants.EO_TUNING_POWER_W_PER_NM,
        latency_s: float = constants.EO_TUNING_LATENCY_S,
        max_range_nm: float = constants.EO_TUNING_RANGE_NM,
    ):
        self.power_per_nm_w = check_positive(power_per_nm_w, "power_per_nm_w")
        self.latency_s = check_positive(latency_s, "latency_s")
        self.max_range_nm = check_positive(max_range_nm, "max_range_nm")

    def cost_for_shift(self, shift_nm: float) -> TuningCost:
        shift_nm = self.check_range(shift_nm)
        power = self.power_per_nm_w * abs(shift_nm)
        return TuningCost(power_w=power, latency_s=self.latency_s,
                          energy_j=power * self.latency_s)


class ThermoOpticTuner(TuningCircuit):
    """Integrated-heater (TO) tuning: slow, power hungry, full-FSR range."""

    def __init__(
        self,
        power_per_fsr_w: float = constants.TO_TUNING_POWER_W_PER_FSR,
        latency_s: float = constants.TO_TUNING_LATENCY_S,
        fsr_nm: float = 10.0,
        max_range_nm: float | None = None,
    ):
        self.power_per_fsr_w = check_positive(power_per_fsr_w, "power_per_fsr_w")
        self.latency_s = check_positive(latency_s, "latency_s")
        self.fsr_nm = check_positive(fsr_nm, "fsr_nm")
        self.max_range_nm = (
            check_positive(max_range_nm, "max_range_nm") if max_range_nm is not None else fsr_nm
        )

    def cost_for_shift(self, shift_nm: float) -> TuningCost:
        shift_nm = self.check_range(shift_nm)
        power = self.power_per_fsr_w * abs(shift_nm) / self.fsr_nm
        return TuningCost(power_w=power, latency_s=self.latency_s,
                          energy_j=power * self.latency_s)

    def heater_power_for_temperature(self, delta_t_k: float,
                                     thermal_resistance_k_per_w: float = 1.5e3) -> float:
        """Heater power [W] needed to raise the ring temperature by ``delta_t_k``.

        ``thermal_resistance_k_per_w`` is the ring-to-substrate thermal
        resistance; typical in-resonator photoconductive heaters reach a few
        K/mW.  This is the quantity an HT manipulates in a hotspot attack.
        """
        if delta_t_k < 0:
            raise ValidationError(f"delta_t_k must be non-negative, got {delta_t_k}")
        check_positive(thermal_resistance_k_per_w, "thermal_resistance_k_per_w")
        return delta_t_k / thermal_resistance_k_per_w


def combined_tuning_cost(
    shift_nm: float,
    eo: ElectroOpticTuner | None = None,
    to: ThermoOpticTuner | None = None,
) -> TuningCost:
    """Cost of a hybrid EO-TO tuning step.

    Small shifts are handled by the EO circuit; anything beyond its range is
    handed to the TO circuit (the EO circuit then trims the residual).  This
    mirrors the combined EO-TO tuning discussed in the paper's §II.B.
    """
    eo = eo or ElectroOpticTuner()
    to = to or ThermoOpticTuner()
    if abs(shift_nm) <= eo.max_range_nm:
        return eo.cost_for_shift(shift_nm)
    to_shift = shift_nm - (eo.max_range_nm if shift_nm > 0 else -eo.max_range_nm)
    to_cost = to.cost_for_shift(to_shift)
    eo_cost = eo.cost_for_shift(eo.max_range_nm if shift_nm > 0 else -eo.max_range_nm)
    return TuningCost(
        power_w=to_cost.power_w + eo_cost.power_w,
        latency_s=max(to_cost.latency_s, eo_cost.latency_s),
        energy_j=to_cost.energy_j + eo_cost.energy_j,
    )
