"""Device-level models of the non-coherent silicon-photonic substrate.

The modules here model the components highlighted in the paper's Fig. 2:

* laser source (:mod:`repro.photonics.laser`),
* waveguides and the WDM channel grid (:mod:`repro.photonics.waveguide`),
* microring resonators and their tuning circuits
  (:mod:`repro.photonics.microring`, :mod:`repro.photonics.tuning`,
  :mod:`repro.photonics.thermal_sensitivity`),
* photodetectors and data converters (:mod:`repro.photonics.photodetector`,
  :mod:`repro.photonics.dac_adc`),
* MR banks and vector-dot-product units (:mod:`repro.photonics.mr_bank`,
  :mod:`repro.photonics.vdp`), both thin views over the vectorized
  struct-of-arrays core (:mod:`repro.photonics.bank_array`); the seed
  per-ring-object reference path lives in :mod:`repro.photonics.legacy`.
"""

from repro.photonics import constants
from repro.photonics.bank_array import BankArray, BankArrayPair
from repro.photonics.microring import MicroringResonator, MRState
from repro.photonics.thermal_sensitivity import ThermalSensitivity, resonance_shift
from repro.photonics.tuning import ElectroOpticTuner, ThermoOpticTuner, TuningCircuit
from repro.photonics.waveguide import WDMGrid, Waveguide
from repro.photonics.laser import LaserSource
from repro.photonics.photodetector import Photodetector
from repro.photonics.dac_adc import ADC, DAC
from repro.photonics.mr_bank import MRBank, MRBankPair, RingView
from repro.photonics.vdp import VDPUnit
from repro.photonics.noise_models import OpticalNoiseModel

__all__ = [
    "constants",
    "MicroringResonator",
    "MRState",
    "ThermalSensitivity",
    "resonance_shift",
    "TuningCircuit",
    "ElectroOpticTuner",
    "ThermoOpticTuner",
    "Waveguide",
    "WDMGrid",
    "LaserSource",
    "Photodetector",
    "DAC",
    "ADC",
    "BankArray",
    "BankArrayPair",
    "MRBank",
    "MRBankPair",
    "RingView",
    "VDPUnit",
    "OpticalNoiseModel",
]
