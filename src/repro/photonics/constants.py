"""Physical constants and typical silicon-photonic device parameters.

Values follow the references cited by the paper (CrossLight [7], LIBRA [24],
GHOST [20], Pintus et al. [18], Sepehrian et al. [19]) and standard silicon
photonics literature.  All wavelengths are in metres unless a ``_nm`` suffix
says otherwise.
"""

from __future__ import annotations

__all__ = [
    "SPEED_OF_LIGHT",
    "C_BAND_CENTER_NM",
    "SILICON_THERMO_OPTIC_COEFF",
    "SILICON_GROUP_INDEX",
    "SILICON_EFFECTIVE_INDEX",
    "SILICON_CONFINEMENT_FACTOR",
    "DEFAULT_MR_RADIUS_UM",
    "DEFAULT_MR_Q_FACTOR",
    "DEFAULT_CHANNEL_SPACING_NM",
    "EO_TUNING_POWER_W_PER_NM",
    "EO_TUNING_LATENCY_S",
    "EO_TUNING_RANGE_NM",
    "TO_TUNING_POWER_W_PER_FSR",
    "TO_TUNING_LATENCY_S",
    "AMBIENT_TEMPERATURE_K",
    "NOMINAL_OPERATING_TEMPERATURE_K",
]

#: Speed of light in vacuum [m/s].
SPEED_OF_LIGHT = 299_792_458.0

#: Centre of the optical C band [nm]; the WDM carriers are placed around it.
C_BAND_CENTER_NM = 1550.0

#: Thermo-optic coefficient of silicon, d(n_Si)/dT [1/K] (paper Eq. 2).
SILICON_THERMO_OPTIC_COEFF = 1.86e-4

#: Group refractive index of a silicon strip waveguide (n_g in Eq. 2).
SILICON_GROUP_INDEX = 4.2

#: Effective refractive index used in the MR resonance condition (Eq. 1).
SILICON_EFFECTIVE_INDEX = 2.45

#: Modal confinement factor of the silicon core (Gamma_Si in Eq. 2).
SILICON_CONFINEMENT_FACTOR = 0.8

#: Default microring radius [micrometres] (typical 5-10 um add-drop rings).
DEFAULT_MR_RADIUS_UM = 7.0

#: Default loaded quality factor of the microrings.
DEFAULT_MR_Q_FACTOR = 16_000.0

#: Default WDM channel spacing [nm] (≈100 GHz grid at 1550 nm).
DEFAULT_CHANNEL_SPACING_NM = 0.8

#: Electro-optic (carrier-injection) tuning power [W per nm of shift]
#: (paper §II.B quotes ≈4 µW/nm).
EO_TUNING_POWER_W_PER_NM = 4e-6

#: Electro-optic tuning latency [s] (ns range).
EO_TUNING_LATENCY_S = 1e-9

#: Maximum electro-optic tuning range [nm] (small-range tuning only).
EO_TUNING_RANGE_NM = 0.5

#: Thermo-optic tuning power [W per free spectral range of shift]
#: (paper §II.B quotes ≈27 mW/FSR).
TO_TUNING_POWER_W_PER_FSR = 27e-3

#: Thermo-optic tuning latency [s] (µs range).
TO_TUNING_LATENCY_S = 4e-6

#: Ambient temperature [K].
AMBIENT_TEMPERATURE_K = 300.0

#: Nominal chip operating temperature the MR banks are trimmed for [K].
NOMINAL_OPERATING_TEMPERATURE_K = 320.0
