"""Thermally induced resonance shift (paper Eq. 2).

``delta_lambda_MR = Gamma_Si * (d n_Si / dT) * lambda_MR / n_g * delta_T``

where ``Gamma_Si`` is the modal confinement factor of the silicon core,
``d n_Si / dT`` the thermo-optic coefficient of silicon and ``n_g`` the group
index of the MR waveguide.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.photonics import constants
from repro.utils.validation import check_positive

__all__ = ["ThermalSensitivity", "resonance_shift"]


@dataclass(frozen=True)
class ThermalSensitivity:
    """Material/modal parameters entering Eq. 2."""

    confinement_factor: float = constants.SILICON_CONFINEMENT_FACTOR
    thermo_optic_coeff: float = constants.SILICON_THERMO_OPTIC_COEFF
    group_index: float = constants.SILICON_GROUP_INDEX

    def __post_init__(self) -> None:
        check_positive(self.confinement_factor, "confinement_factor")
        check_positive(self.thermo_optic_coeff, "thermo_optic_coeff")
        check_positive(self.group_index, "group_index")

    def shift_per_kelvin(self, wavelength_nm: float | np.ndarray) -> float | np.ndarray:
        """Resonance shift per Kelvin [nm/K] at ``wavelength_nm``.

        Accepts a scalar wavelength or an ndarray of per-ring wavelengths (the
        vectorized bank array evaluates Eq. 2 for a whole bank at once).
        """
        return (
            self.confinement_factor
            * self.thermo_optic_coeff
            * wavelength_nm
            / self.group_index
        )

    def resonance_shift_nm(
        self,
        wavelength_nm: float | np.ndarray,
        delta_temperature_k: float | np.ndarray,
    ) -> float | np.ndarray:
        """Eq. 2: resonance shift [nm] for a temperature change [K].

        Both arguments broadcast against each other, so per-ring wavelength
        arrays and batched ``(trials, banks, rings)`` temperature axes work.
        """
        shift = self.shift_per_kelvin(wavelength_nm) * np.asarray(delta_temperature_k, dtype=float)
        if np.isscalar(delta_temperature_k) and np.isscalar(wavelength_nm):
            return float(shift)
        return shift

    def temperature_for_shift(self, wavelength_nm: float, shift_nm: float) -> float:
        """Inverse of Eq. 2: temperature change [K] producing ``shift_nm``."""
        return shift_nm / self.shift_per_kelvin(wavelength_nm)


def resonance_shift(
    wavelength_nm: float,
    delta_temperature_k: float | np.ndarray,
    sensitivity: ThermalSensitivity | None = None,
) -> float | np.ndarray:
    """Convenience wrapper around :meth:`ThermalSensitivity.resonance_shift_nm`."""
    sensitivity = sensitivity or ThermalSensitivity()
    return sensitivity.resonance_shift_nm(wavelength_nm, delta_temperature_k)
