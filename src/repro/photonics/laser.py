"""Multi-wavelength laser source feeding the MR banks."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.photonics.waveguide import WDMGrid
from repro.utils.validation import check_positive

__all__ = ["LaserSource"]


@dataclass(frozen=True)
class LaserSource:
    """A comb/laser array emitting one carrier per WDM channel.

    Parameters
    ----------
    grid:
        WDM grid describing the carriers.
    power_per_channel_mw:
        Optical power launched into the waveguide per carrier [mW].
    wall_plug_efficiency:
        Electrical-to-optical conversion efficiency (0, 1].
    rin_db_per_hz:
        Relative intensity noise (dB/Hz); used by the optical noise model.
    """

    grid: WDMGrid
    power_per_channel_mw: float = 1.0
    wall_plug_efficiency: float = 0.2
    rin_db_per_hz: float = -150.0

    def __post_init__(self) -> None:
        check_positive(self.power_per_channel_mw, "power_per_channel_mw")
        if not 0 < self.wall_plug_efficiency <= 1:
            raise ValueError(
                f"wall_plug_efficiency must be in (0, 1], got {self.wall_plug_efficiency}"
            )

    @property
    def output_powers_w(self) -> np.ndarray:
        """Optical power per carrier [W]."""
        return np.full(self.grid.num_channels, self.power_per_channel_mw * 1e-3)

    @property
    def electrical_power_w(self) -> float:
        """Total electrical power drawn by the source [W]."""
        return float(self.output_powers_w.sum() / self.wall_plug_efficiency)

    def emit(self) -> np.ndarray:
        """Return the launched per-channel optical power vector [W]."""
        return self.output_powers_w.copy()
