"""Analog non-idealities of the optical datapath.

These effects are independent of HT attacks: inter-channel crosstalk between
adjacent WDM carriers, insertion losses along the MR bank, and laser relative
intensity noise.  The functional accelerator path keeps them disabled by
default (the paper's susceptibility analysis isolates HT effects); the
detailed signal-level simulation can enable them to study compounding.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import default_rng

__all__ = ["OpticalNoiseModel"]


@dataclass
class OpticalNoiseModel:
    """Crosstalk, loss and intensity-noise model for an MR bank datapath.

    Parameters
    ----------
    crosstalk_db:
        Power coupled from each adjacent channel into a carrier (negative dB;
        ``-25`` means 0.3%).
    per_mr_insertion_loss_db:
        Through-port insertion loss added by each MR the carrier passes.
    rin_std:
        Relative intensity noise expressed as a fractional standard deviation
        per sample.
    seed:
        Noise stream seed.
    """

    crosstalk_db: float = -25.0
    per_mr_insertion_loss_db: float = 0.05
    rin_std: float = 0.0
    seed: int | None = None

    def __post_init__(self) -> None:
        if self.crosstalk_db > 0:
            raise ValueError(f"crosstalk_db must be <= 0 dB, got {self.crosstalk_db}")
        if self.per_mr_insertion_loss_db < 0:
            raise ValueError(
                f"per_mr_insertion_loss_db must be >= 0, got {self.per_mr_insertion_loss_db}"
            )
        if self.rin_std < 0:
            raise ValueError(f"rin_std must be >= 0, got {self.rin_std}")
        self._rng = default_rng(self.seed)

    @property
    def crosstalk_fraction(self) -> float:
        """Linear fraction of adjacent-channel power coupled into a carrier."""
        return 10.0 ** (self.crosstalk_db / 10.0)

    def apply_crosstalk(self, channel_powers: np.ndarray) -> np.ndarray:
        """Mix a fraction of each neighbouring channel into every carrier.

        The channel axis is the last one, so batched ``(..., channels)``
        arrays (one row per bank or Monte-Carlo trial) work unchanged.
        """
        powers = np.asarray(channel_powers, dtype=float)
        mixed = powers.copy()
        fraction = self.crosstalk_fraction
        if powers.shape[-1] > 1 and fraction > 0:
            mixed[..., :-1] += fraction * powers[..., 1:]
            mixed[..., 1:] += fraction * powers[..., :-1]
        return mixed

    def apply_insertion_loss(self, channel_powers: np.ndarray, num_mrs: int) -> np.ndarray:
        """Attenuate each carrier by the loss of ``num_mrs`` through-passes."""
        loss_db = self.per_mr_insertion_loss_db * max(num_mrs, 0)
        return np.asarray(channel_powers, dtype=float) * 10.0 ** (-loss_db / 10.0)

    def apply_intensity_noise(self, channel_powers: np.ndarray) -> np.ndarray:
        """Multiply each carrier by ``1 + N(0, rin_std)``."""
        powers = np.asarray(channel_powers, dtype=float)
        if self.rin_std <= 0:
            return powers
        noise = self._rng.normal(1.0, self.rin_std, size=powers.shape)
        return np.clip(powers * noise, 0.0, None)

    def apply_all(self, channel_powers: np.ndarray, num_mrs: int) -> np.ndarray:
        """Apply insertion loss, crosstalk and intensity noise in order."""
        powers = self.apply_insertion_loss(channel_powers, num_mrs)
        powers = self.apply_crosstalk(powers)
        return self.apply_intensity_noise(powers)
