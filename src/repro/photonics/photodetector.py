"""Photodetector model: optical summation and opto-electronic conversion.

In the non-coherent accelerator the per-wavelength products arriving at the
end of an MR bank are summed in the optical domain (total power on the
photodiode) and converted into a photocurrent, which the ADC then digitizes
(paper Fig. 2(g)-(h)).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import default_rng
from repro.utils.validation import check_positive

__all__ = ["Photodetector"]

_ELECTRON_CHARGE = 1.602176634e-19
_BOLTZMANN = 1.380649e-23


@dataclass
class Photodetector:
    """A PIN photodetector with responsivity, shot and thermal noise.

    Parameters
    ----------
    responsivity_a_per_w:
        Photocurrent per optical watt.
    bandwidth_hz:
        Detection bandwidth (sets the noise power).
    temperature_k:
        Device temperature for thermal (Johnson) noise.
    load_resistance_ohm:
        Transimpedance load.
    dark_current_a:
        Dark current contribution.
    enable_noise:
        When false the detector is ideal (deterministic), which is what the
        functional accelerator simulation uses; the detailed signal-level
        simulation enables noise.
    """

    responsivity_a_per_w: float = 1.0
    bandwidth_hz: float = 5e9
    temperature_k: float = 300.0
    load_resistance_ohm: float = 50.0
    dark_current_a: float = 5e-9
    enable_noise: bool = False
    seed: int | None = None

    def __post_init__(self) -> None:
        check_positive(self.responsivity_a_per_w, "responsivity_a_per_w")
        check_positive(self.bandwidth_hz, "bandwidth_hz")
        check_positive(self.temperature_k, "temperature_k")
        check_positive(self.load_resistance_ohm, "load_resistance_ohm")
        self._rng = default_rng(self.seed)

    def detect(self, channel_powers_w: np.ndarray) -> float:
        """Sum the per-channel optical powers and return the photocurrent [A]."""
        total_power = float(np.sum(np.clip(np.asarray(channel_powers_w, dtype=float), 0.0, None)))
        current = self.responsivity_a_per_w * total_power + self.dark_current_a
        if self.enable_noise:
            current += self._noise_current(current)
        return current

    def _noise_current(self, signal_current_a: float) -> float:
        """One sample of shot + thermal noise current [A]."""
        shot_var = 2.0 * _ELECTRON_CHARGE * max(signal_current_a, 0.0) * self.bandwidth_hz
        thermal_var = (
            4.0 * _BOLTZMANN * self.temperature_k * self.bandwidth_hz / self.load_resistance_ohm
        )
        sigma = np.sqrt(shot_var + thermal_var)
        return float(self._rng.normal(0.0, sigma))

    def to_voltage(self, current_a: float) -> float:
        """Convert photocurrent to the voltage seen by the ADC."""
        return current_a * self.load_resistance_ohm
