"""Content-addressed on-disk result store for campaign runs.

Each successful :class:`~repro.engine.records.RunRecord` is written to
``<root>/<experiment_id>/<fingerprint>.json``.  The fingerprint hashes the
resolved run spec together with the ``repro`` version, so a library upgrade
invalidates every cached point without any bookkeeping: old records simply
stop being addressed.

JSON keeps the store greppable and diffable; payloads are summary-sized
dictionaries (not raw arrays), so compactness is not a concern.

Corruption policy: a stored file that no longer parses (torn write frozen to
disk, bit rot, a concurrent writer killed mid-replace) is *quarantined* — moved
to ``<root>/corrupt/`` with its original experiment prefix — the first time a
read trips over it.  The lookup still reports a miss (the run recomputes and
rewrites), but the evidence is preserved for forensics and surfaced by
``repro report`` instead of being silently re-read and re-skipped forever.
Writers can additionally pass ``verify=True`` to :meth:`put` to read each
record back after writing and retry a bounded number of times, which is how
serve workers guarantee a completion report implies a durable on-disk result.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterator

from repro.engine.records import RunRecord
from repro.engine.spec import RunSpec, spec_fingerprint
from repro.faults import fault_point
from repro.utils.serialization import load_json, save_json
from repro.version import __version__

__all__ = ["ResultCache", "DEFAULT_CACHE_DIR", "CORRUPT_DIR_NAME"]

#: Default cache location (relative to the working directory); override with
#: the ``REPRO_CACHE_DIR`` environment variable or the CLI ``--cache-dir``.
DEFAULT_CACHE_DIR = ".repro-cache"

#: Subdirectory of the cache root where corrupt entries are quarantined.
CORRUPT_DIR_NAME = "corrupt"

#: Errors that mean "the file's content is bad" (vs. the file being
#: unreadable right now, which is an I/O condition, not evidence of rot).
_CONTENT_ERRORS = (json.JSONDecodeError, KeyError, TypeError, ValueError)


class ResultCache:
    """Filesystem-backed store of run records keyed by spec fingerprints."""

    def __init__(self, root: str | Path = DEFAULT_CACHE_DIR, version: str = __version__):
        self.root = Path(root)
        self.version = version

    # ------------------------------------------------------------- keying
    def fingerprint(self, spec: RunSpec) -> str:
        return spec_fingerprint(spec, self.version)

    def path_for(self, spec: RunSpec) -> Path:
        return self.root / spec.experiment_id / f"{self.fingerprint(spec)}.json"

    # -------------------------------------------------------- quarantine
    @property
    def corrupt_dir(self) -> Path:
        return self.root / CORRUPT_DIR_NAME

    def _quarantine(self, path: Path) -> None:
        """Move an unparseable entry to ``corrupt/`` (best-effort).

        The destination keeps the experiment prefix (``corrupt/<exp>-<fp>.json``)
        and grows a numeric suffix on collision, so repeated corruption of the
        same fingerprint never overwrites earlier evidence.  Quarantine must
        never turn a read problem into a crash — failures are swallowed and
        the entry simply stays in place until the next write replaces it.
        """
        try:
            self.corrupt_dir.mkdir(parents=True, exist_ok=True)
            base = f"{path.parent.name}-{path.name}"
            target = self.corrupt_dir / base
            counter = 0
            while target.exists():
                counter += 1
                target = self.corrupt_dir / f"{base}.{counter}"
            path.replace(target)
        except OSError:
            pass

    def quarantined_count(self) -> int:
        """Number of corrupt entries moved aside so far."""
        if not self.corrupt_dir.is_dir():
            return 0
        return sum(1 for p in self.corrupt_dir.iterdir() if p.is_file())

    # ------------------------------------------------------------ lookups
    def contains(self, spec: RunSpec) -> bool:
        return self.path_for(spec).is_file()

    def get(self, spec: RunSpec) -> RunRecord | None:
        """Return the cached record for ``spec``, or ``None`` on a miss.

        A corrupt entry is quarantined and reported as a miss (the executor
        recomputes and rewrites it); a transiently unreadable file is left in
        place and reported as a miss.
        """
        path = self.path_for(spec)
        if not path.is_file():
            return None
        try:
            record = RunRecord.from_dict(load_json(path))
        except _CONTENT_ERRORS:
            self._quarantine(path)
            return None
        except OSError:
            return None
        return record.as_cached()

    def put(
        self,
        record: RunRecord,
        verify: bool = False,
        max_write_attempts: int = 3,
    ) -> Path:
        """Persist a record (only successful runs are worth caching).

        The file is addressed by *this cache's* fingerprint of the spec, so
        a cache constructed for a different library version never serves (or
        shadows) records produced under another one.

        With ``verify=True`` the entry is read back after writing and the
        write retried (up to ``max_write_attempts`` total) until the stored
        bytes parse; an entry that stays corrupt is quarantined and the final
        ``OSError`` from the write path propagates.  Serve workers use this so
        "reported done" always implies "durably cached".
        """
        if not record.ok:
            raise ValueError(
                f"refusing to cache failed run {record.spec.label()}: {record.error}"
            )
        path = self.path_for(record.spec)
        attempts = max(1, max_write_attempts) if verify else 1
        last_error: OSError | None = None
        for _ in range(attempts):
            try:
                self._write(path, record)
            except OSError as exc:
                last_error = exc
                continue
            if not verify:
                return path
            try:
                RunRecord.from_dict(load_json(path))
            except _CONTENT_ERRORS:
                self._quarantine(path)
                last_error = OSError(f"cache write verification failed for {path}")
                continue
            except OSError as exc:
                last_error = exc
                continue
            return path
        raise last_error if last_error is not None else OSError(
            f"cache write failed for {path}"
        )

    def _write(self, path: Path, record: RunRecord) -> None:
        """One write attempt, honoring the ``cache.put`` fault point.

        The ``corrupt_write`` effect persists a truncated document *directly*
        (no atomic tmp+replace) — the torn write the atomic path is supposed
        to prevent, frozen to disk the way a kernel crash would leave it.
        """
        effect = fault_point("cache.put", key=record.spec.label())
        if effect == "corrupt_write":
            document = json.dumps(record.to_dict())
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(document[: max(1, len(document) // 3)])
            return
        save_json(path, record.to_dict())

    # --------------------------------------------------------- maintenance
    def invalidate(self, spec: RunSpec) -> bool:
        """Drop the cached record for ``spec``; returns whether one existed."""
        path = self.path_for(spec)
        if path.is_file():
            path.unlink()
            return True
        return False

    def clear(self) -> int:
        """Remove every record; returns the number of files deleted.

        Quarantined entries under ``corrupt/`` are evidence, not cache
        content — they survive a ``clear()``.
        """
        removed = 0
        for path in self.root.glob("*/*.json"):
            if path.parent.name == CORRUPT_DIR_NAME:
                continue
            path.unlink()
            removed += 1
        return removed

    def records(self, experiment_id: str | None = None) -> Iterator[RunRecord]:
        """Iterate stored records (optionally for one experiment), sorted by path.

        This walks *all* stored files including ones written under other
        library versions — it is the audit/report view, not the lookup path.
        Corrupt entries are quarantined as they are discovered.
        """
        pattern = f"{experiment_id}/*.json" if experiment_id else "*/*.json"
        for path in sorted(self.root.glob(pattern)):
            if path.parent.name == CORRUPT_DIR_NAME:
                continue
            try:
                yield RunRecord.from_dict(load_json(path)).as_cached()
            except _CONTENT_ERRORS:
                self._quarantine(path)
                continue
            except OSError:
                continue
