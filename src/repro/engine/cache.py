"""Content-addressed on-disk result store for campaign runs.

Each successful :class:`~repro.engine.records.RunRecord` is written to
``<root>/<experiment_id>/<fingerprint>.json``.  The fingerprint hashes the
resolved run spec together with the ``repro`` version, so a library upgrade
invalidates every cached point without any bookkeeping: old records simply
stop being addressed.

JSON keeps the store greppable and diffable; payloads are summary-sized
dictionaries (not raw arrays), so compactness is not a concern.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterator

from repro.engine.records import RunRecord
from repro.engine.spec import RunSpec, spec_fingerprint
from repro.utils.serialization import load_json, save_json
from repro.version import __version__

__all__ = ["ResultCache", "DEFAULT_CACHE_DIR"]

#: Default cache location (relative to the working directory); override with
#: the ``REPRO_CACHE_DIR`` environment variable or the CLI ``--cache-dir``.
DEFAULT_CACHE_DIR = ".repro-cache"


class ResultCache:
    """Filesystem-backed store of run records keyed by spec fingerprints."""

    def __init__(self, root: str | Path = DEFAULT_CACHE_DIR, version: str = __version__):
        self.root = Path(root)
        self.version = version

    # ------------------------------------------------------------- keying
    def fingerprint(self, spec: RunSpec) -> str:
        return spec_fingerprint(spec, self.version)

    def path_for(self, spec: RunSpec) -> Path:
        return self.root / spec.experiment_id / f"{self.fingerprint(spec)}.json"

    # ------------------------------------------------------------ lookups
    def contains(self, spec: RunSpec) -> bool:
        return self.path_for(spec).is_file()

    def get(self, spec: RunSpec) -> RunRecord | None:
        """Return the cached record for ``spec``, or ``None`` on a miss.

        Unreadable or corrupt entries are treated as misses (the executor
        will simply recompute and overwrite them).
        """
        path = self.path_for(spec)
        if not path.is_file():
            return None
        try:
            record = RunRecord.from_dict(load_json(path))
        except (json.JSONDecodeError, KeyError, TypeError, ValueError, OSError):
            return None
        return record.as_cached()

    def put(self, record: RunRecord) -> Path:
        """Persist a record (only successful runs are worth caching).

        The file is addressed by *this cache's* fingerprint of the spec, so
        a cache constructed for a different library version never serves (or
        shadows) records produced under another one.
        """
        if not record.ok:
            raise ValueError(
                f"refusing to cache failed run {record.spec.label()}: {record.error}"
            )
        return save_json(self.path_for(record.spec), record.to_dict())

    # --------------------------------------------------------- maintenance
    def invalidate(self, spec: RunSpec) -> bool:
        """Drop the cached record for ``spec``; returns whether one existed."""
        path = self.path_for(spec)
        if path.is_file():
            path.unlink()
            return True
        return False

    def clear(self) -> int:
        """Remove every record; returns the number of files deleted."""
        removed = 0
        for path in self.root.glob("*/*.json"):
            path.unlink()
            removed += 1
        return removed

    def records(self, experiment_id: str | None = None) -> Iterator[RunRecord]:
        """Iterate stored records (optionally for one experiment), sorted by path.

        This walks *all* stored files including ones written under other
        library versions — it is the audit/report view, not the lookup path.
        """
        pattern = f"{experiment_id}/*.json" if experiment_id else "*/*.json"
        for path in sorted(self.root.glob(pattern)):
            try:
                yield RunRecord.from_dict(load_json(path)).as_cached()
            except (json.JSONDecodeError, KeyError, TypeError, ValueError, OSError):
                continue
