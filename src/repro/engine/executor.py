"""Run-spec executors: serial and process-pool, with a run-level failure policy.

:func:`execute_run` is the single unit of work shared by every execution
strategy — it resolves the experiment, runs it with the spec's parameters
and seed, and wraps the outcome (or the failure) into a
:class:`~repro.engine.records.RunRecord`.  It is a module-level function so
the process pool can pickle references to it; only the plain-data
:class:`~repro.engine.spec.RunSpec` crosses process boundaries.

Failure policy: every executor takes an optional :class:`RetryPolicy`.  A run
that fails (error record, dead pool worker, or blown per-run deadline) is
re-executed up to ``max_attempts`` times with capped exponential backoff and
deterministic jitter; a run that exhausts its attempts is *quarantined* — its
final error record carries the attempt history in provenance and the sweep
moves on, so one poison point can never stall or crash-loop a campaign.  The
default policy (one attempt, no deadline) reproduces the historical behavior
exactly.

Determinism: each run's randomness is fully derived from ``spec.seed`` (the
experiment runners thread it through :mod:`repro.utils.rng`), so the same
spec produces byte-identical payloads whether it executes inline, in a fresh
process, in a pool worker that has already run other specs — or on the third
retry after two injected crashes (payloads never depend on attempt count).
Worker processes keep per-process caches of trained workloads (see
:mod:`repro.analysis.experiments`), which makes large sweeps dramatically
cheaper without affecting results.
"""

from __future__ import annotations

import os
import time
from abc import ABC, abstractmethod
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from datetime import datetime, timezone
from time import monotonic, perf_counter
from typing import Hashable, Iterable, Iterator, Sequence

import numpy as np

from repro.engine.records import RunRecord
from repro.engine.spec import RunSpec, spec_fingerprint
from repro.faults import fault_point
from repro.utils.rng import stable_hash
from repro.utils.validation import check_positive_int
from repro.version import __version__

__all__ = [
    "execute_run",
    "failure_record",
    "RetryPolicy",
    "RunBackend",
    "RunExecutor",
    "StreamExecutor",
    "SerialExecutor",
    "ProcessPoolRunExecutor",
    "make_executor",
    "run_all",
]


@dataclass(frozen=True)
class RetryPolicy:
    """How an executor (or the serve scheduler) treats a failing run.

    Attributes
    ----------
    max_attempts:
        Total executions allowed per run, including the first.  ``1`` (the
        default) means failures are final immediately — the historical
        behavior.  A run that fails ``max_attempts`` times is quarantined:
        recorded as failed with its attempt history, never dispatched again.
    backoff_s / backoff_cap_s:
        Exponential re-dispatch delay: attempt *n* waits
        ``min(cap, backoff_s * 2**(n-1))``, scaled by deterministic jitter in
        ``[0.5, 1.0]`` derived from ``(seed, run key, attempt)`` so a fleet
        of retries never stampedes in lockstep yet stays reproducible.
    deadline_s:
        Per-run wall-clock budget.  A run still executing past it is treated
        as hung: its worker is killed (serve pool) or the pool is rebuilt
        (process pool) and the run counts a failed attempt.  ``None``: no
        deadline.
    seed:
        Jitter seed.
    """

    max_attempts: int = 1
    backoff_s: float = 0.25
    backoff_cap_s: float = 10.0
    deadline_s: float | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        check_positive_int(self.max_attempts, "max_attempts")
        if self.backoff_s < 0 or self.backoff_cap_s < 0:
            raise ValueError("backoff_s and backoff_cap_s must be >= 0")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError(f"deadline_s must be positive, got {self.deadline_s}")

    def delay_s(self, attempt: int, key: str = "") -> float:
        """Backoff before re-dispatching after failed attempt ``attempt``."""
        base = min(self.backoff_cap_s, self.backoff_s * (2 ** max(0, attempt - 1)))
        if base <= 0:
            return 0.0
        rng = np.random.default_rng(
            np.random.SeedSequence([self.seed, stable_hash(key), attempt])
        )
        return base * (0.5 + 0.5 * float(rng.random()))

    def to_dict(self) -> dict:
        return {
            "max_attempts": self.max_attempts,
            "backoff_s": self.backoff_s,
            "backoff_cap_s": self.backoff_cap_s,
            "deadline_s": self.deadline_s,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data: dict, default: "RetryPolicy | None" = None) -> "RetryPolicy":
        """Build a policy from a (possibly partial) dict over ``default``."""
        base = default if default is not None else cls()
        known = {"max_attempts", "backoff_s", "backoff_cap_s", "deadline_s", "seed"}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(
                f"unknown retry-policy field(s) {unknown}; accepted: {sorted(known)}"
            )
        deadline = data.get("deadline_s", base.deadline_s)
        return cls(
            max_attempts=int(data.get("max_attempts", base.max_attempts)),
            backoff_s=float(data.get("backoff_s", base.backoff_s)),
            backoff_cap_s=float(data.get("backoff_cap_s", base.backoff_cap_s)),
            deadline_s=None if deadline is None else float(deadline),
            seed=int(data.get("seed", base.seed)),
        )


def execute_run(
    spec: RunSpec,
    version: str = __version__,
    executor_kind: str = "serial",
) -> RunRecord:
    """Execute one run spec and return its record (never raises).

    Failures are captured in the record (``status="error"``) so one bad grid
    point cannot abort a thousand-point sweep.  The ``worker.run`` fault
    point fires here, inside the try block, so an injected ``raise`` surfaces
    as an ordinary failed record while ``crash``/``hang`` behave exactly like
    a segfaulting or stuck native call.
    """
    from repro.analysis.experiments import get_experiment
    from repro.nn.backend import backend_provenance, use_backend

    # Per-run compute-backend selection: experiments that accept the
    # ``nn_backend``/``nn_threads`` params carry them in the (resolved) spec,
    # so they are part of the fingerprint; empty values inherit the ambient
    # (env-driven) selection.
    nn_backend = str(spec.params.get("nn_backend") or "") or None
    nn_threads = int(spec.params.get("nn_threads") or 0) or None
    started_at = datetime.now(timezone.utc).isoformat(timespec="seconds")
    start = perf_counter()
    try:
        fault_point("worker.run", key=spec.label())
        descriptor = get_experiment(spec.experiment_id)
        seed = spec.seed if descriptor.seedable else None
        with use_backend(nn_backend, nn_threads):
            payload = descriptor.run(spec.params, seed=seed)
        status, error = "ok", None
    except Exception as exc:  # noqa: BLE001 — sweep survives bad points
        payload, status, error = {}, "error", f"{type(exc).__name__}: {exc}"
    return RunRecord(
        fingerprint=spec_fingerprint(spec, version),
        spec=spec,
        payload=payload,
        status=status,
        error=error,
        duration_s=perf_counter() - start,
        started_at=started_at,
        provenance={
            "version": version,
            "executor": executor_kind,
            "pid": os.getpid(),
            **backend_provenance(nn_backend, nn_threads),
        },
    )


def failure_record(
    spec: RunSpec,
    error: str,
    executor_kind: str,
    attempts: int = 1,
    version: str = __version__,
) -> RunRecord:
    """A synthetic error record for a run that produced no record of its own.

    Used when the process executing a run died or was killed at its deadline:
    there is nobody left to report, so the supervising side records the
    failure (with its attempt history) on the run's behalf.
    """
    return RunRecord(
        fingerprint=spec_fingerprint(spec, version),
        spec=spec,
        payload={},
        status="error",
        error=error,
        started_at=datetime.now(timezone.utc).isoformat(timespec="seconds"),
        provenance={
            "version": version,
            "executor": executor_kind,
            "pid": os.getpid(),
            "attempts": attempts,
        },
    )


class RunExecutor(ABC):
    """Interface every run executor implements.

    ``run_specs`` is the batch contract :class:`~repro.engine.campaign.Campaign`
    consumes: feed it an ordered list of specs, stream back ``(index, record)``
    pairs in whatever order runs complete.  ``close`` releases long-lived
    resources (a no-op for the stateless built-ins; the serve worker pool
    terminates its processes here).
    """

    kind: str = "abstract"

    @abstractmethod
    def run_specs(self, specs: Sequence[RunSpec]) -> Iterator[tuple[int, RunRecord]]:
        """Yield ``(index, record)`` for every spec, in completion order."""

    def close(self) -> None:
        """Release executor resources (idempotent)."""


class StreamExecutor(RunExecutor):
    """Executors that accept tagged submissions from many campaigns at once.

    The one-pool-per-sweep model of :class:`ProcessPoolRunExecutor` ties the
    worker pool's lifetime to a single spec list.  A stream executor instead
    exposes the pool as a long-lived service: callers :meth:`submit` specs
    tagged with an opaque token (e.g. ``(job_id, index)``) whenever they like,
    and drain :meth:`completions` as results arrive — so N concurrently
    submitted sweeps share one set of workers and work-stealing across sweeps
    falls out of the shared queue.  The serve daemon's
    :class:`~repro.serve.workers.WorkerPool` is the canonical implementation.
    """

    @abstractmethod
    def submit(self, token: Hashable, spec: RunSpec) -> None:
        """Enqueue one run; ``token`` is echoed back with its completion."""

    @abstractmethod
    def completions(self, timeout: float | None = None) -> Iterator[tuple[Hashable, RunRecord]]:
        """Yield ``(token, record)`` for finished runs.

        With a ``timeout`` the iterator stops (without raising) once no
        completion arrives for that many seconds; with ``timeout=None`` it
        blocks until the next completion forever.
        """

    def run_specs(self, specs: Sequence[RunSpec]) -> Iterator[tuple[int, RunRecord]]:
        """Batch adapter: submit everything, drain until all runs report."""
        for index, spec in enumerate(specs):
            self.submit(index, spec)
        remaining = len(specs)
        while remaining:
            for token, record in self.completions(timeout=None):
                yield int(token), record  # type: ignore[call-overload]
                remaining -= 1
                if not remaining:
                    return


class RunBackend(StreamExecutor):
    """A supervisable :class:`StreamExecutor` the serve scheduler can drive.

    The scheduler's failure policy needs more than submit/drain: it must see
    which runs are physically executing (to enforce wall-clock deadlines),
    kill or fence one overdue run, and learn exactly which runs a dead
    executor lost so it can charge attempts and re-dispatch.  Everything the
    scheduler does flows through this interface, which is what lets it treat
    the local :class:`~repro.serve.workers.WorkerPool` and remote federated
    nodes (:class:`~repro.serve.federation.FederationBackend`) uniformly:
    a run leased to a machine across the network and a run handed to a child
    process are the same thing to the failure policy.
    """

    #: Short name used in dispatch bookkeeping and health documents.
    backend_name: str = "backend"

    @abstractmethod
    def try_submit(self, token: Hashable, spec: RunSpec) -> bool:
        """Non-blocking submit; False when the backend has no capacity now."""

    @abstractmethod
    def in_flight(self) -> dict:
        """Snapshot ``token -> (host id, started monotonic)`` of executing runs.

        The host id is backend-specific (a worker pid, a node id); callers
        only rely on the second element for deadline math.
        """

    @abstractmethod
    def kill_for(self, token: Hashable) -> bool:
        """Stop (or fence off) the execution of one run; False if unknown.

        After a successful call the backend must never report a completion
        for this token's current execution — the caller owns its retry.
        """

    @abstractmethod
    def reap(self) -> list:
        """Detect dead executors; return the tokens their deaths lost."""

    def withdraw(self, token: Hashable) -> bool:
        """Take back a submitted-but-not-yet-executing run, if possible.

        Backends that queue work where it can still be recalled (e.g. a
        claimable lease pool) return True and drop the run; backends whose
        queues cannot be recalled (an OS pipe to worker processes) return
        False and the caller falls back to stale-completion handling.
        """
        return False

    def health(self) -> dict:
        """Liveness/capacity summary for ``/healthz``-style reporting."""
        return {}


class SerialExecutor(RunExecutor):
    """Runs specs one after another in the current process."""

    kind = "serial"

    def __init__(self, retry: RetryPolicy | None = None):
        self.retry = retry if retry is not None else RetryPolicy()

    def run_specs(self, specs: Sequence[RunSpec]) -> Iterator[tuple[int, RunRecord]]:
        """Yield ``(index, record)`` for every spec, in order."""
        for index, spec in enumerate(specs):
            yield index, self._run_with_retry(spec)

    def _run_with_retry(self, spec: RunSpec) -> RunRecord:
        policy = self.retry
        attempt = 0
        while True:
            attempt += 1
            record = execute_run(spec, executor_kind=self.kind)
            if record.ok or attempt >= policy.max_attempts:
                if attempt > 1:
                    record = record.with_provenance(attempts=attempt)
                return record
            time.sleep(policy.delay_s(attempt, key=spec.label()))


class ProcessPoolRunExecutor(RunExecutor):
    """Fans specs out across a :class:`concurrent.futures.ProcessPoolExecutor`.

    Results are yielded as they complete (for progress streaming); callers
    that need spec order reassemble by the yielded index.  ``max_workers``
    defaults to the machine's CPU count capped at 8 — experiment runners are
    NumPy-heavy, so oversubscription beyond physical cores buys nothing.

    Failure policy: a broken pool (a worker process died — OOM killer,
    segfault, injected crash) is rebuilt and its unfinished runs re-submitted;
    every run that was in flight is charged a failed attempt (the stdlib pool
    fails them together, so they all genuinely died), and a run that exhausts
    :class:`RetryPolicy.max_attempts` is quarantined with a synthetic error
    record instead of being re-dispatched forever.  Submission is throttled
    to the worker count so a charged run was actually executing, and each
    *consecutive* broken rebuild halves the concurrency down to one — under a
    crash storm one bad run then takes only itself down per incident, so
    innocent neighbours stop bleeding shared attempts; any successful
    completion restores full width.  With a ``deadline_s`` the pool is also
    torn down and rebuilt when any run overstays its wall-clock budget
    (``ProcessPoolExecutor`` cannot kill a single worker), charging the
    overdue runs an attempt.  The serve
    :class:`~repro.serve.workers.WorkerPool` implements the same policy with
    precise per-worker tracking; this is the best-effort one-shot variant.
    """

    kind = "process-pool"

    #: Scheduler poll period while waiting on the pool (seconds) when a
    #: deadline must be enforced; without a deadline the wait is unbounded.
    _TICK_S = 0.25

    def __init__(self, max_workers: int | None = None, retry: RetryPolicy | None = None):
        if max_workers is None:
            max_workers = min(os.cpu_count() or 1, 8)
        self.max_workers = check_positive_int(max_workers, "max_workers")
        self.retry = retry if retry is not None else RetryPolicy()

    def run_specs(self, specs: Sequence[RunSpec]) -> Iterator[tuple[int, RunRecord]]:
        """Yield ``(index, record)`` as runs complete across the pool."""
        if not specs:
            return
        policy = self.retry
        size = min(self.max_workers, len(specs))
        #: Runs awaiting (re-)submission: (index, spec, attempt-to-run-next).
        work: deque[tuple[int, RunSpec, int]] = deque(
            (index, spec, 1) for index, spec in enumerate(specs)
        )
        pool = ProcessPoolExecutor(max_workers=size)
        outstanding: dict = {}  # future -> (index, spec, attempt, submitted_at)
        #: Consecutive broken rebuilds with no successful completion between
        #: them.  Halves the submission width each incident (down to one) so
        #: a crash storm stops charging innocent neighbours — at width one
        #: the charged run is exactly the one that died.
        storm = 0
        try:
            while work or outstanding:
                width = max(1, size >> min(storm, 6))
                while work and len(outstanding) < width:
                    index, spec, attempt = work.popleft()
                    if attempt > policy.max_attempts:
                        yield index, failure_record(
                            spec,
                            f"quarantined after {policy.max_attempts} attempts "
                            "(worker died or deadline exceeded every time)",
                            self.kind,
                            attempts=policy.max_attempts,
                        )
                        continue
                    future = pool.submit(execute_run, spec, __version__, self.kind)
                    outstanding[future] = (index, spec, attempt, monotonic())
                timeout = self._TICK_S if policy.deadline_s is not None else None
                done, _ = wait(
                    set(outstanding), timeout=timeout, return_when=FIRST_COMPLETED
                )
                broken = False
                for future in done:
                    index, spec, attempt, _ = outstanding.pop(future)
                    try:
                        record = future.result()
                    except BrokenProcessPool:
                        broken = True
                        work.append((index, spec, attempt + 1))
                        continue
                    storm = 0
                    if record.ok or attempt >= policy.max_attempts:
                        if attempt > 1:
                            record = record.with_provenance(attempts=attempt)
                        yield index, record
                    else:
                        time.sleep(policy.delay_s(attempt, key=spec.label()))
                        work.append((index, spec, attempt + 1))
                if broken or self._pool_is_broken(pool):
                    storm += 1
                    pool = self._rebuild(pool, outstanding, work, size, reason="broken")
                elif policy.deadline_s is not None and any(
                    monotonic() - submitted > policy.deadline_s
                    for (_, _, _, submitted) in outstanding.values()
                ):
                    pool = self._rebuild(
                        pool, outstanding, work, size,
                        reason="deadline", deadline_s=policy.deadline_s,
                    )
        finally:
            pool.shutdown(wait=False, cancel_futures=True)

    @staticmethod
    def _pool_is_broken(pool: ProcessPoolExecutor) -> bool:
        return getattr(pool, "_broken", False) is not False and bool(
            getattr(pool, "_broken", False)
        )

    def _rebuild(
        self,
        pool: ProcessPoolExecutor,
        outstanding: dict,
        work: deque,
        size: int,
        reason: str,
        deadline_s: float | None = None,
    ) -> ProcessPoolExecutor:
        """Tear the pool down and requeue its unfinished runs.

        Submission is throttled to the pool width, so on a break every
        in-flight run was genuinely executing and is charged an attempt (at
        most one per worker, oldest first — defensive if the throttle ever
        over-admits).  On a deadline rebuild only the overdue runs are
        charged; the rest keep their attempt count.
        """
        entries = sorted(outstanding.values(), key=lambda entry: entry[3])
        outstanding.clear()
        now = monotonic()
        for position, (index, spec, attempt, submitted) in enumerate(entries):
            charge = position < size
            if reason == "deadline" and deadline_s is not None:
                charge = now - submitted > deadline_s
            work.append((index, spec, attempt + 1 if charge else attempt))
        # A hung worker ignores shutdown(); terminate the processes directly
        # (best-effort — _processes is stdlib-internal but stable) so the
        # rebuild does not leak a stuck child per incident.
        for proc in list(getattr(pool, "_processes", {}).values() or []):
            try:
                proc.terminate()
            except (OSError, AttributeError):
                pass
        pool.shutdown(wait=False, cancel_futures=True)
        return ProcessPoolExecutor(max_workers=size)


def make_executor(
    workers: int | str | RunExecutor | None,
    retry: RetryPolicy | None = None,
) -> RunExecutor:
    """Build an executor from a worker-count knob.

    ``None``, ``0``, ``1`` or ``"serial"`` select the serial executor; any
    larger integer selects a process pool of that size.  A ready-made
    :class:`RunExecutor` instance passes through unchanged (``retry`` is
    ignored — a long-lived shared pool owns its own failure policy), which is
    how the serve daemon's pool is threaded into a
    :class:`~repro.engine.campaign.Campaign`.
    """
    if isinstance(workers, RunExecutor):
        return workers
    if workers == "serial":
        return SerialExecutor(retry=retry)
    if isinstance(workers, str):
        workers = int(workers)
    if workers in (None, 0, 1):
        return SerialExecutor(retry=retry)
    return ProcessPoolRunExecutor(max_workers=workers, retry=retry)


def run_all(
    executor: RunExecutor,
    specs: Iterable[RunSpec],
) -> list[RunRecord]:
    """Convenience: execute ``specs`` and return records in spec order."""
    specs = list(specs)
    records: list[RunRecord | None] = [None] * len(specs)
    for index, record in executor.run_specs(specs):
        records[index] = record
    return [record for record in records if record is not None]
