"""Run-spec executors: serial and process-pool.

:func:`execute_run` is the single unit of work shared by both execution
strategies — it resolves the experiment, runs it with the spec's parameters
and seed, and wraps the outcome (or the failure) into a
:class:`~repro.engine.records.RunRecord`.  It is a module-level function so
the process pool can pickle references to it; only the plain-data
:class:`~repro.engine.spec.RunSpec` crosses process boundaries.

Determinism: each run's randomness is fully derived from ``spec.seed`` (the
experiment runners thread it through :mod:`repro.utils.rng`), so the same
spec produces byte-identical payloads whether it executes inline, in a fresh
process, or in a pool worker that has already run other specs.  Worker
processes keep per-process caches of trained workloads (see
:mod:`repro.analysis.experiments`), which makes large sweeps dramatically
cheaper without affecting results.
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from datetime import datetime, timezone
from time import perf_counter
from typing import Hashable, Iterable, Iterator, Sequence

from repro.engine.records import RunRecord
from repro.engine.spec import RunSpec, spec_fingerprint
from repro.utils.validation import check_positive_int
from repro.version import __version__

__all__ = [
    "execute_run",
    "RunExecutor",
    "StreamExecutor",
    "SerialExecutor",
    "ProcessPoolRunExecutor",
    "make_executor",
    "run_all",
]


def execute_run(
    spec: RunSpec,
    version: str = __version__,
    executor_kind: str = "serial",
) -> RunRecord:
    """Execute one run spec and return its record (never raises).

    Failures are captured in the record (``status="error"``) so one bad grid
    point cannot abort a thousand-point sweep.
    """
    from repro.analysis.experiments import get_experiment

    started_at = datetime.now(timezone.utc).isoformat(timespec="seconds")
    start = perf_counter()
    try:
        descriptor = get_experiment(spec.experiment_id)
        seed = spec.seed if descriptor.seedable else None
        payload = descriptor.run(spec.params, seed=seed)
        status, error = "ok", None
    except Exception as exc:  # noqa: BLE001 — sweep survives bad points
        payload, status, error = {}, "error", f"{type(exc).__name__}: {exc}"
    return RunRecord(
        fingerprint=spec_fingerprint(spec, version),
        spec=spec,
        payload=payload,
        status=status,
        error=error,
        duration_s=perf_counter() - start,
        started_at=started_at,
        provenance={
            "version": version,
            "executor": executor_kind,
            "pid": os.getpid(),
        },
    )


class RunExecutor(ABC):
    """Interface every run executor implements.

    ``run_specs`` is the batch contract :class:`~repro.engine.campaign.Campaign`
    consumes: feed it an ordered list of specs, stream back ``(index, record)``
    pairs in whatever order runs complete.  ``close`` releases long-lived
    resources (a no-op for the stateless built-ins; the serve worker pool
    terminates its processes here).
    """

    kind: str = "abstract"

    @abstractmethod
    def run_specs(self, specs: Sequence[RunSpec]) -> Iterator[tuple[int, RunRecord]]:
        """Yield ``(index, record)`` for every spec, in completion order."""

    def close(self) -> None:
        """Release executor resources (idempotent)."""


class StreamExecutor(RunExecutor):
    """Executors that accept tagged submissions from many campaigns at once.

    The one-pool-per-sweep model of :class:`ProcessPoolRunExecutor` ties the
    worker pool's lifetime to a single spec list.  A stream executor instead
    exposes the pool as a long-lived service: callers :meth:`submit` specs
    tagged with an opaque token (e.g. ``(job_id, index)``) whenever they like,
    and drain :meth:`completions` as results arrive — so N concurrently
    submitted sweeps share one set of workers and work-stealing across sweeps
    falls out of the shared queue.  The serve daemon's
    :class:`~repro.serve.workers.WorkerPool` is the canonical implementation.
    """

    @abstractmethod
    def submit(self, token: Hashable, spec: RunSpec) -> None:
        """Enqueue one run; ``token`` is echoed back with its completion."""

    @abstractmethod
    def completions(self, timeout: float | None = None) -> Iterator[tuple[Hashable, RunRecord]]:
        """Yield ``(token, record)`` for finished runs.

        With a ``timeout`` the iterator stops (without raising) once no
        completion arrives for that many seconds; with ``timeout=None`` it
        blocks until the next completion forever.
        """

    def run_specs(self, specs: Sequence[RunSpec]) -> Iterator[tuple[int, RunRecord]]:
        """Batch adapter: submit everything, drain until all runs report."""
        for index, spec in enumerate(specs):
            self.submit(index, spec)
        remaining = len(specs)
        while remaining:
            for token, record in self.completions(timeout=None):
                yield int(token), record  # type: ignore[call-overload]
                remaining -= 1
                if not remaining:
                    return


class SerialExecutor(RunExecutor):
    """Runs specs one after another in the current process."""

    kind = "serial"

    def run_specs(self, specs: Sequence[RunSpec]) -> Iterator[tuple[int, RunRecord]]:
        """Yield ``(index, record)`` for every spec, in order."""
        for index, spec in enumerate(specs):
            yield index, execute_run(spec, executor_kind=self.kind)


class ProcessPoolRunExecutor(RunExecutor):
    """Fans specs out across a :class:`concurrent.futures.ProcessPoolExecutor`.

    Results are yielded as they complete (for progress streaming); callers
    that need spec order reassemble by the yielded index.  ``max_workers``
    defaults to the machine's CPU count capped at 8 — experiment runners are
    NumPy-heavy, so oversubscription beyond physical cores buys nothing.
    """

    kind = "process-pool"

    def __init__(self, max_workers: int | None = None):
        if max_workers is None:
            max_workers = min(os.cpu_count() or 1, 8)
        self.max_workers = check_positive_int(max_workers, "max_workers")

    def run_specs(self, specs: Sequence[RunSpec]) -> Iterator[tuple[int, RunRecord]]:
        """Yield ``(index, record)`` as runs complete across the pool."""
        if not specs:
            return
        with ProcessPoolExecutor(max_workers=min(self.max_workers, len(specs))) as pool:
            futures = {
                pool.submit(execute_run, spec, __version__, self.kind): index
                for index, spec in enumerate(specs)
            }
            pending = set(futures)
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    yield futures[future], future.result()


def make_executor(
    workers: int | str | RunExecutor | None,
) -> RunExecutor:
    """Build an executor from a worker-count knob.

    ``None``, ``0``, ``1`` or ``"serial"`` select the serial executor; any
    larger integer selects a process pool of that size.  A ready-made
    :class:`RunExecutor` instance passes through unchanged, which is how a
    long-lived shared pool (e.g. the serve daemon's) is threaded into a
    :class:`~repro.engine.campaign.Campaign`.
    """
    if isinstance(workers, RunExecutor):
        return workers
    if workers == "serial":
        return SerialExecutor()
    if isinstance(workers, str):
        workers = int(workers)
    if workers in (None, 0, 1):
        return SerialExecutor()
    return ProcessPoolRunExecutor(max_workers=workers)


def run_all(
    executor: RunExecutor,
    specs: Iterable[RunSpec],
) -> list[RunRecord]:
    """Convenience: execute ``specs`` and return records in spec order."""
    specs = list(specs)
    records: list[RunRecord | None] = [None] * len(specs)
    for index, record in executor.run_specs(specs):
        records[index] = record
    return [record for record in records if record is not None]
