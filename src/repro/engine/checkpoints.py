"""Content-addressed on-disk store for trained model checkpoints.

Mirrors :mod:`repro.engine.cache` for *models* instead of result payloads:
each checkpoint is addressed by the SHA-256 of a canonical-JSON key payload
(model identity + resolved training configuration + dataset identity, built
by :func:`repro.mitigation.robust_training.variant_checkpoint_key`) combined
with the ``repro`` version, so a library upgrade invalidates every stored
model without any bookkeeping.

Each entry is a pair of files under ``<root>/<group>/``:

* ``<fingerprint>.npz`` — the model's full state (parameters **and**
  buffers such as batch-norm running statistics), via
  :func:`repro.utils.serialization.save_arrays`;
* ``<fingerprint>.json`` — JSON metadata (the key payload for auditability,
  baseline accuracy, training history, and a best-effort ``hits`` counter
  that ``python -m repro report`` surfaces).

The mitigation studies (`MitigationStudy`, ``fig8_variant``, sweeps) consult
this store before training; ``python -m repro train`` pre-warms it.
"""

from __future__ import annotations

import hashlib
import json
import os
import zipfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Mapping

import numpy as np

from repro.engine.cache import DEFAULT_CACHE_DIR
from repro.engine.spec import canonical_json
from repro.utils.serialization import load_arrays, load_json, save_arrays, save_json
from repro.version import __version__

__all__ = [
    "CheckpointCache",
    "ModelCheckpoint",
    "DEFAULT_CHECKPOINT_DIR",
    "default_checkpoint_dir",
]

#: Default checkpoint location; override with ``REPRO_CHECKPOINT_DIR`` or the
#: CLI ``--checkpoint-dir``.
DEFAULT_CHECKPOINT_DIR = os.path.join(DEFAULT_CACHE_DIR, "checkpoints")


def default_checkpoint_dir() -> str:
    """Resolve the checkpoint directory from the environment or the default."""
    return os.environ.get("REPRO_CHECKPOINT_DIR", DEFAULT_CHECKPOINT_DIR)


@dataclass
class ModelCheckpoint:
    """One stored trained model: full state arrays plus JSON metadata."""

    arrays: dict[str, np.ndarray]
    meta: dict = field(default_factory=dict)


class CheckpointCache:
    """Filesystem-backed store of trained models keyed by content hashes."""

    def __init__(
        self, root: str | Path | None = None, version: str = __version__
    ):
        self.root = Path(root if root is not None else default_checkpoint_dir())
        self.version = version
        #: In-process accounting surfaced by the studies/CLI.
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------- keying
    def fingerprint(self, key: Mapping) -> str:
        """Content hash of ``(key, version)`` — the checkpoint address."""
        digest = hashlib.sha256()
        digest.update(
            canonical_json({"key": dict(key), "version": self.version}).encode()
        )
        return digest.hexdigest()

    def _group(self, key: Mapping) -> str:
        return str(key.get("model", "model"))

    def path_for(self, key: Mapping) -> Path:
        """Path of the ``.npz`` state archive for ``key``."""
        return self.root / self._group(key) / f"{self.fingerprint(key)}.npz"

    def meta_path_for(self, key: Mapping) -> Path:
        return self.path_for(key).with_suffix(".json")

    # ------------------------------------------------------------ lookups
    def contains(self, key: Mapping) -> bool:
        return self.path_for(key).is_file()

    def get(self, key: Mapping) -> ModelCheckpoint | None:
        """Load the checkpoint for ``key``, or ``None`` on a miss.

        Unreadable or corrupt entries count as misses (the caller simply
        retrains and overwrites them) — including an orphaned ``.npz`` whose
        ``.json`` sidecar is gone (``put`` writes the archive first, so an
        interrupted store leaves exactly that shape behind).  Successful
        loads bump the entry's persisted ``hits`` counter best-effort.
        """
        path = self.path_for(key)
        meta_path = self.meta_path_for(key)
        if not path.is_file() or not meta_path.is_file():
            self.misses += 1
            return None
        try:
            arrays = load_arrays(path)
            meta = load_json(meta_path)
        except (
            OSError,
            ValueError,
            KeyError,
            json.JSONDecodeError,
            zipfile.BadZipFile,  # truncated .npz that kept its zip magic
        ):
            self.misses += 1
            return None
        self.hits += 1
        try:
            meta["hits"] = int(meta.get("hits", 0)) + 1
            save_json(meta_path, meta)
        except OSError:
            pass  # hit accounting is advisory; never fail a load over it
        return ModelCheckpoint(arrays=arrays, meta=meta)

    def put(self, key: Mapping, arrays: Mapping[str, np.ndarray], meta: Mapping) -> Path:
        """Persist a trained model under ``key``; returns the ``.npz`` path."""
        path = save_arrays(self.path_for(key), dict(arrays))
        payload = dict(meta)
        payload.setdefault("hits", 0)
        payload["key"] = dict(key)
        payload["version"] = self.version
        save_json(self.meta_path_for(key), payload)
        return path

    # --------------------------------------------------------- maintenance
    def invalidate(self, key: Mapping) -> bool:
        """Drop the checkpoint for ``key``; returns whether one existed."""
        existed = False
        for path in (self.path_for(key), self.meta_path_for(key)):
            if path.is_file():
                path.unlink()
                existed = True
        return existed

    def clear(self) -> int:
        """Remove every checkpoint; returns the number of entries deleted."""
        removed = 0
        for path in self.root.glob("*/*.npz"):
            path.unlink()
            sidecar = path.with_suffix(".json")
            if sidecar.is_file():
                sidecar.unlink()
            removed += 1
        return removed

    def entries(self, group: str | None = None) -> Iterator[dict]:
        """Iterate stored entry summaries (for ``python -m repro report``).

        Walks *all* stored files including ones written under other library
        versions — the audit view, not the lookup path.
        """
        pattern = f"{group}/*.npz" if group else "*/*.npz"
        for path in sorted(self.root.glob(pattern)):
            meta_path = path.with_suffix(".json")
            try:
                meta = load_json(meta_path) if meta_path.is_file() else {}
            except (OSError, json.JSONDecodeError):
                meta = {}
            yield {
                "group": path.parent.name,
                "fingerprint": path.stem,
                "size_bytes": path.stat().st_size,
                "variant": meta.get("variant"),
                "baseline_accuracy": meta.get("baseline_accuracy"),
                "hits": int(meta.get("hits", 0)),
                "version": meta.get("version"),
            }
