"""High-level campaign API: specs + executor + cache, with streamed progress.

A :class:`Campaign` takes a :class:`~repro.engine.spec.SweepSpec` (or an
explicit list of :class:`~repro.engine.spec.RunSpec` points), partitions the
points into cache hits and pending work, fans the pending work out through an
executor, persists fresh results, and returns a :class:`CampaignResult` whose
records are in spec order regardless of completion order.

Progress is streamed through an optional callback so CLIs and benchmarks can
report liveness without the engine knowing anything about terminals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from time import perf_counter
from typing import Callable, Sequence

from repro.engine.cache import ResultCache
from repro.engine.executor import RetryPolicy, RunExecutor, make_executor
from repro.engine.records import RunRecord
from repro.engine.spec import RunSpec, SweepSpec

__all__ = ["Campaign", "CampaignResult", "ProgressEvent"]


@dataclass(frozen=True)
class ProgressEvent:
    """One completed point, as reported to the progress callback."""

    record: RunRecord
    done: int
    total: int

    @property
    def message(self) -> str:
        source = "cache" if self.record.cached else f"{self.record.duration_s:.2f}s"
        status = "" if self.record.ok else f"  ERROR {self.record.error}"
        return (
            f"[{self.done}/{self.total}] {self.record.spec.label()} ({source}){status}"
        )


@dataclass
class CampaignResult:
    """All records of a campaign plus execution statistics."""

    records: list[RunRecord] = field(default_factory=list)
    cache_hits: int = 0
    executed: int = 0
    failures: int = 0
    cache_write_errors: int = 0
    duration_s: float = 0.0
    executor_kind: str = "serial"

    @property
    def payloads(self) -> list[dict]:
        """Successful payloads in spec order."""
        return [dict(r.payload) for r in self.records if r.ok]

    def summary(self) -> dict:
        return {
            "points": len(self.records),
            "executed": self.executed,
            "cache_hits": self.cache_hits,
            "failures": self.failures,
            "cache_write_errors": self.cache_write_errors,
            "duration_s": round(self.duration_s, 3),
            "executor": self.executor_kind,
        }


class Campaign:
    """Ties a sweep, an executor and a result cache into one runnable unit.

    Parameters
    ----------
    sweep:
        A :class:`SweepSpec`, or any sequence of :class:`RunSpec` points.
    cache:
        A :class:`ResultCache`, a directory path to create one at, or
        ``None`` to disable caching entirely.
    workers:
        Executor knob (see :func:`repro.engine.executor.make_executor`):
        ``None``/``1`` runs serially, larger integers use a process pool, and
        a :class:`~repro.engine.executor.RunExecutor` instance (e.g. a shared
        long-lived worker pool) is used as-is.
    progress:
        Optional callback invoked with a :class:`ProgressEvent` after every
        completed point (cache hits included).
    retry:
        Optional :class:`~repro.engine.executor.RetryPolicy` threaded into the
        executor built from ``workers`` (ignored when ``workers`` is already a
        :class:`RunExecutor` instance, which owns its own policy).
    """

    def __init__(
        self,
        sweep: SweepSpec | Sequence[RunSpec],
        cache: ResultCache | str | Path | None = None,
        workers: int | str | RunExecutor | None = None,
        progress: Callable[[ProgressEvent], None] | None = None,
        retry: RetryPolicy | None = None,
    ):
        if isinstance(sweep, SweepSpec):
            self.specs: list[RunSpec] = sweep.expand()
        else:
            self.specs = list(sweep)
        if isinstance(cache, (str, Path)):
            cache = ResultCache(cache)
        self.cache = cache
        self.executor: RunExecutor = make_executor(workers, retry=retry)
        self.progress = progress

    # ------------------------------------------------------------------ run
    def run(self) -> CampaignResult:
        """Execute every point, serving repeats from the cache."""
        start = perf_counter()
        result = CampaignResult(executor_kind=self.executor.kind)
        records: list[RunRecord | None] = [None] * len(self.specs)

        pending: list[tuple[int, RunSpec]] = []
        for index, spec in enumerate(self.specs):
            cached = self.cache.get(spec) if self.cache is not None else None
            if cached is not None:
                records[index] = cached
                result.cache_hits += 1
            else:
                pending.append((index, spec))

        done = result.cache_hits
        total = len(self.specs)
        # Cache hits are announced up front, in spec order.
        if self.progress is not None:
            for hit_number, record in enumerate(
                (r for r in records if r is not None), start=1
            ):
                self.progress(ProgressEvent(record=record, done=hit_number, total=total))

        pending_specs = [spec for _, spec in pending]
        for position, record in self.executor.run_specs(pending_specs):
            index = pending[position][0]
            records[index] = record
            result.executed += 1
            done += 1
            if record.ok:
                if self.cache is not None:
                    # A failed cache write (disk full, injected ENOSPC) costs
                    # future reuse, not this campaign's results.
                    try:
                        self.cache.put(record)
                    except OSError:
                        result.cache_write_errors += 1
            else:
                result.failures += 1
            if self.progress is not None:
                self.progress(ProgressEvent(record=record, done=done, total=total))

        result.records = [record for record in records if record is not None]
        result.duration_s = perf_counter() - start
        return result
