"""Parallel experiment-campaign engine.

Turns the experiment registry (:mod:`repro.analysis.experiments`) into a
scalable orchestration layer:

* :mod:`repro.engine.spec` — declarative :class:`RunSpec`/:class:`SweepSpec`
  definitions (Cartesian grids, zipped lists, seed replication).
* :mod:`repro.engine.executor` — the :class:`RunExecutor` interface with
  serial and process-pool implementations (deterministic per-run seeding),
  plus the :class:`StreamExecutor` extension for long-lived shared pools
  (implemented by the serve daemon's worker pool in :mod:`repro.serve`).
* :mod:`repro.engine.cache` — content-addressed on-disk result store keyed
  by spec fingerprint + library version.
* :mod:`repro.engine.checkpoints` — content-addressed trained-model store
  (full parameter + buffer state) consulted by the mitigation studies and
  pre-warmed by ``python -m repro train``.
* :mod:`repro.engine.records` — structured :class:`RunRecord` results with
  timing and provenance metadata.
* :mod:`repro.engine.campaign` — the high-level :class:`Campaign` API tying
  specs, executor and cache together with streamed progress.
* :mod:`repro.engine.cli` — the ``python -m repro`` command line.
"""

from repro.engine.cache import DEFAULT_CACHE_DIR, ResultCache
from repro.engine.campaign import Campaign, CampaignResult, ProgressEvent
from repro.engine.checkpoints import (
    DEFAULT_CHECKPOINT_DIR,
    CheckpointCache,
    ModelCheckpoint,
    default_checkpoint_dir,
)
from repro.engine.executor import (
    ProcessPoolRunExecutor,
    RetryPolicy,
    RunBackend,
    RunExecutor,
    SerialExecutor,
    StreamExecutor,
    execute_run,
    failure_record,
    make_executor,
    run_all,
)
from repro.engine.records import RunRecord
from repro.engine.spec import RunSpec, SweepSpec, canonical_json, spec_fingerprint

__all__ = [
    "Campaign",
    "CampaignResult",
    "ProgressEvent",
    "DEFAULT_CACHE_DIR",
    "ResultCache",
    "DEFAULT_CHECKPOINT_DIR",
    "CheckpointCache",
    "ModelCheckpoint",
    "default_checkpoint_dir",
    "RunRecord",
    "RunSpec",
    "SweepSpec",
    "RetryPolicy",
    "RunBackend",
    "RunExecutor",
    "StreamExecutor",
    "SerialExecutor",
    "ProcessPoolRunExecutor",
    "execute_run",
    "failure_record",
    "make_executor",
    "run_all",
    "canonical_json",
    "spec_fingerprint",
]
