"""Structured run results with timing and provenance metadata.

A :class:`RunRecord` is what the executor hands back for every
:class:`~repro.engine.spec.RunSpec`: the experiment payload plus enough
metadata (fingerprint, duration, worker pid, library version) to audit where
a number came from.  Records serialize to plain JSON dictionaries, which is
the on-disk format of :class:`~repro.engine.cache.ResultCache`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Mapping

from repro.engine.spec import RunSpec, canonical_json

__all__ = ["RunRecord"]


@dataclass(frozen=True)
class RunRecord:
    """Outcome of one experiment run.

    Attributes
    ----------
    fingerprint:
        Content hash of (spec, version) — the cache key.
    spec:
        The resolved run specification.
    payload:
        The experiment's summary dictionary (empty on failure).  Payloads are
        deterministic for a given spec; all wall-clock metadata lives in the
        sibling fields, so payload bytes can be compared across executors.
    status / error:
        ``"ok"`` or ``"error"``; failed runs keep the sweep alive and carry
        the exception text instead of the payload.
    duration_s, started_at:
        Wall-clock timing of the run (not part of the cache key).
    provenance:
        Execution context: library version, executor kind, worker pid.
    cached:
        True when the record was served from the result cache rather than
        executed; never persisted as True.
    """

    fingerprint: str
    spec: RunSpec
    payload: Mapping[str, object] = field(default_factory=dict)
    status: str = "ok"
    error: str | None = None
    duration_s: float = 0.0
    started_at: str = ""
    provenance: Mapping[str, object] = field(default_factory=dict)
    cached: bool = False

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def canonical_payload(self) -> str:
        """Canonical JSON bytes of the payload (for determinism checks)."""
        return canonical_json(dict(self.payload))

    def as_cached(self) -> "RunRecord":
        """A copy marked as served-from-cache."""
        return replace(self, cached=True)

    def with_provenance(self, **extra: object) -> "RunRecord":
        """A copy with ``extra`` merged into the provenance mapping.

        Executors use this to stamp retry/attempt bookkeeping onto a record
        without the run machinery knowing about failure policy.
        """
        return replace(self, provenance={**dict(self.provenance), **extra})

    # -------------------------------------------------------- serialization
    def to_dict(self) -> dict:
        return {
            "fingerprint": self.fingerprint,
            "spec": self.spec.canonical(),
            "payload": dict(self.payload),
            "status": self.status,
            "error": self.error,
            "duration_s": self.duration_s,
            "started_at": self.started_at,
            "provenance": dict(self.provenance),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "RunRecord":
        spec_data = dict(data["spec"])  # type: ignore[arg-type]
        spec = RunSpec(
            experiment_id=str(spec_data["experiment_id"]),
            params=dict(spec_data.get("params", {})),
            seed=int(spec_data.get("seed", 0)),
        )
        return cls(
            fingerprint=str(data["fingerprint"]),
            spec=spec,
            payload=dict(data.get("payload", {})),
            status=str(data.get("status", "ok")),
            error=data.get("error"),  # type: ignore[arg-type]
            duration_s=float(data.get("duration_s", 0.0)),
            started_at=str(data.get("started_at", "")),
            provenance=dict(data.get("provenance", {})),
        )
