"""``python -m repro`` — campaign CLI for the paper's experiments.

Subcommands
-----------
``list``
    Show every registered experiment with its paper artefact and parameters.
``attacks``
    Show every registered attack kind with its physical parameters and the
    experiments that sweep over kinds (mirroring ``list``).
``run <experiment_id>``
    Execute one experiment (through the cache) and print its payload.
``sweep <experiment_id>``
    Expand a parameter sweep (``--grid``/``--zip``/``--set``/``--seeds``)
    and run it through the serial or process-pool executor with caching.
``search <kind>``
    Black-box adversarial attack search: a deterministic optimizer
    (``random``, ``evolutionary`` or ``halving``) drives the kind's bounded
    parameter space to maximize accuracy drop per attacked MR, reducing the
    evaluated candidates to a Pareto front over stealth vs. damage.  Every
    candidate is a cached ``fig7_candidate`` run, so interrupted searches
    resume from the result cache; ``--serve`` dispatches each generation to
    a running daemon as a zipped sweep.
``train``
    Pre-warm the trained-model checkpoint cache: train mitigation variant
    grids (stacked by default) and store every trained model
    content-addressed, so later ``fig8``/``fig9``/``fig8_variant`` runs and
    :class:`MitigationStudy` instances load instead of re-train.
``report``
    Summarize the records accumulated in the result cache, including
    min/mean/max per-run wall time per experiment, the trained-model
    checkpoint store (entries, size, hits), and Pareto fronts rebuilt from
    cached ``fig7_candidate``/``fig7_adversarial`` records.
``bench``
    Run the benchmark suites: ``--suite signal`` (seed object path vs
    vectorized array-core, ``BENCH_signal_core.json``), ``--suite scenario``
    (per-scenario vs scenario-batched attacked inference,
    ``BENCH_scenario_batch.json``), ``--suite training`` (stacked vs serial
    variant-grid training + checkpoint-cache pipeline,
    ``BENCH_training.json``), ``--suite search`` (batched vs serial
    candidate throughput + searched front vs the fixed Cartesian grid at
    equal budget, ``BENCH_search.json``), ``--suite backends`` (fast vs
    reference compute backend with tolerance-tested agreement,
    ``BENCH_backends.json``) or ``--suite all``.

Most compute-heavy subcommands accept ``--backend fast --threads N`` to
select the compute backend (:mod:`repro.nn.backend`) their NN kernels
dispatch to; the selection is exported via ``REPRO_NN_BACKEND`` /
``REPRO_NN_THREADS`` so worker processes inherit it and run fingerprints
key on it.
``serve``
    Run the persistent campaign service: a durable on-disk job queue, N
    worker processes shared by every submitted sweep (work-stealing across
    concurrent campaigns) and the HTTP API (``POST /sweeps``,
    ``GET /jobs/<id>``, ``GET /results/<id>``, …).  Interrupted campaigns
    resume from the result cache on restart.
``submit``
    Submit a sweep (same ``--grid``/``--zip``/``--set``/``--seeds`` flags as
    ``sweep``) to a running daemon and, by default, wait streaming progress.
``jobs``
    List a daemon's jobs (plus worker-pool and per-node cluster health),
    show/cancel one, or fetch its cached results.
``node``
    Run a federated worker node: register with a coordinator daemon, pull
    runs via time-bounded leases, execute them on a local worker pool, and
    upload results.  SIGTERM/Ctrl-C drains gracefully (finish leased runs,
    upload, deregister); a second signal stops hard — held leases then
    expire on the coordinator and re-dispatch elsewhere.

``repro --version`` prints the library version that keys the caches.

Parameter values are parsed as JSON when possible (``0.05`` → float,
``true`` → bool, ``[1,2]`` → list) and fall back to plain strings, so
``--grid kind=actuation,hotspot`` and ``--set fraction=0.05`` both do what
they look like they do.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import sys
from typing import Sequence

from repro.engine.cache import DEFAULT_CACHE_DIR, ResultCache
from repro.engine.campaign import Campaign, ProgressEvent
from repro.engine.spec import RunSpec, SweepSpec
from repro.version import __version__

__all__ = ["main", "build_parser"]

#: Exit code for a graceful Ctrl-C/SIGTERM stop (128 + SIGINT).
EXIT_INTERRUPTED = 130


# ------------------------------------------------------------------ parsing
def parse_value(text: str):
    """Parse one CLI value: JSON when valid, bare string otherwise."""
    try:
        return json.loads(text)
    except json.JSONDecodeError:
        return text


def parse_assignment(text: str) -> tuple[str, object]:
    """Parse ``name=value`` into a (name, parsed value) pair."""
    name, sep, value = text.partition("=")
    if not sep or not name:
        raise argparse.ArgumentTypeError(
            f"expected name=value, got {text!r}"
        )
    return name, parse_value(value)


def _split_top_level(text: str) -> list[str]:
    """Split on commas that are not nested inside brackets or quotes."""
    parts: list[str] = []
    depth = 0
    quote: str | None = None
    current = ""
    for char in text:
        if quote is not None:
            current += char
            if char == quote:
                quote = None
        elif char in "\"'":
            quote = char
            current += char
        elif char in "[{(":
            depth += 1
            current += char
        elif char in ")}]":
            depth -= 1
            current += char
        elif char == "," and depth == 0:
            parts.append(current)
            current = ""
        else:
            current += char
    parts.append(current)
    return [part for part in parts if part]


def parse_axis(text: str) -> tuple[str, list]:
    """Parse ``name=v1,v2,v3`` into a (name, values) sweep axis.

    Values are split on top-level commas only, so JSON lists work as single
    axis values: ``shifts_nm=[0.2,2.0],[1.0]`` is a two-point axis.
    """
    name, sep, raw = text.partition("=")
    if not sep or not name:
        raise argparse.ArgumentTypeError(f"expected name=value, got {text!r}")
    return name, [parse_value(part) for part in _split_top_level(raw)]


def parse_seeds(text: str) -> tuple[int, ...]:
    return tuple(int(part) for part in text.split(",") if part)


# -------------------------------------------------------------------- parser
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run and sweep the paper's experiments through the campaign engine.",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}",
        help="print the library version that keys the result/checkpoint caches",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list registered experiments")

    attacks = sub.add_parser("attacks", help="list registered attack kinds")
    attacks.add_argument("--json", action="store_true", help="print the registry as JSON")

    def add_cache_args(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--cache-dir",
            default=os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR),
            help="result-cache directory (env: REPRO_CACHE_DIR)",
        )
        p.add_argument(
            "--no-cache", action="store_true", help="bypass the result cache"
        )

    def add_backend_args(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--backend", default=None, metavar="NAME",
            help="compute backend for the NN kernels: reference (bit-exact "
                 "default) or fast (workspace-reusing, threaded; env: "
                 "REPRO_NN_BACKEND) — the selection keys the result cache",
        )
        p.add_argument(
            "--threads", type=int, default=None, metavar="N",
            help="threads for the fast backend's stacked kernels "
                 "(env: REPRO_NN_THREADS; default: all cores)",
        )

    run = sub.add_parser("run", help="run one experiment")
    run.add_argument("experiment_id")
    run.add_argument(
        "--set", "-p", dest="params", type=parse_assignment, action="append",
        default=[], metavar="NAME=VALUE", help="override one parameter",
    )
    run.add_argument("--seed", type=int, default=None, help="experiment seed")
    run.add_argument("--json", action="store_true", help="print the payload as JSON")
    add_backend_args(run)
    add_cache_args(run)

    def add_sweep_axis_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("experiment_id")
        p.add_argument(
            "--grid", type=parse_axis, action="append", default=[],
            metavar="NAME=V1,V2,..", help="Cartesian sweep axis (repeatable)",
        )
        p.add_argument(
            "--zip", dest="zipped", type=parse_axis, action="append", default=[],
            metavar="NAME=V1,V2,..", help="position-wise sweep axis (repeatable)",
        )
        p.add_argument(
            "--set", "-p", dest="params", type=parse_assignment, action="append",
            default=[], metavar="NAME=VALUE", help="fixed parameter override",
        )
        p.add_argument(
            "--seeds", type=parse_seeds, default=(0,), metavar="S1,S2,..",
            help="seeds replicated over every point (default: 0)",
        )

    def add_retry_args(p: argparse.ArgumentParser, scope: str) -> None:
        p.add_argument(
            "--max-attempts", type=int, default=None, metavar="N",
            help=f"total attempts per run before it is quarantined "
                 f"({scope})",
        )
        p.add_argument(
            "--run-deadline", type=float, default=None, metavar="SECONDS",
            help="per-run wall-clock budget; a run past it is killed and "
                 "charged a failed attempt (default: none)",
        )
        p.add_argument(
            "--retry-backoff", type=float, default=None, metavar="SECONDS",
            help="base re-dispatch delay, doubled per attempt with "
                 "deterministic jitter",
        )

    sweep = sub.add_parser("sweep", help="run a parameter sweep")
    add_sweep_axis_args(sweep)
    add_retry_args(sweep, scope="default: 1 — failures are final")
    sweep.add_argument(
        "--workers", "-j", default=None,
        help="process-pool size (default/1: run serially)",
    )
    sweep.add_argument("--serial", action="store_true", help="force serial execution")
    sweep.add_argument("--json", action="store_true", help="print payloads as JSON")
    sweep.add_argument("--quiet", "-q", action="store_true", help="no per-point progress")
    add_backend_args(sweep)
    add_cache_args(sweep)

    train = sub.add_parser(
        "train", help="pre-warm the trained-model checkpoint cache"
    )
    train.add_argument(
        "models", nargs="*", default=["cnn_mnist"],
        help="workload models to train (default: cnn_mnist)",
    )
    train.add_argument(
        "--variants", default="all", metavar="V1,V2,..",
        help="variant names ('all': the paper's 11-variant grid; "
             "e.g. Original,L2_reg,l2+n3)",
    )
    train.add_argument("--seed", type=int, default=0, help="study master seed")
    train.add_argument(
        "--serial", action="store_true",
        help="train one variant at a time instead of the stacked grid pass",
    )
    train.add_argument(
        "--checkpoint-dir", default=None,
        help="checkpoint store (env: REPRO_CHECKPOINT_DIR; "
             "default: .repro-cache/checkpoints)",
    )
    train.add_argument("--json", action="store_true", help="print the summary as JSON")
    add_backend_args(train)

    report = sub.add_parser("report", help="summarize cached campaign records")
    report.add_argument("--experiment", default=None, help="restrict to one experiment id")
    report.add_argument("--json", action="store_true", help="print the summary as JSON")
    report.add_argument(
        "--cache-dir",
        default=os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR),
        help="result-cache directory (env: REPRO_CACHE_DIR)",
    )
    report.add_argument(
        "--checkpoint-dir", default=None,
        help="checkpoint store to summarize (env: REPRO_CHECKPOINT_DIR)",
    )

    bench = sub.add_parser(
        "bench", help="run the performance benchmark suites"
    )
    bench.add_argument(
        "--suite",
        choices=("signal", "scenario", "training", "search", "backends", "all"),
        default="signal",
        help="signal: array-core vs seed object path; scenario: batched vs "
             "per-scenario attacked inference; training: stacked vs serial "
             "variant-grid training + checkpoint cache; search: attack-search "
             "throughput + grid-vs-search fronts; backends: fast vs reference "
             "compute backend with tolerance-tested agreement (default: signal)",
    )
    bench.add_argument(
        "--matvec-size", type=int, default=64, help="[signal] matrix-vector operand size"
    )
    bench.add_argument(
        "--mc-size", type=int, default=64, help="[signal] Monte-Carlo bank size (rings)"
    )
    bench.add_argument(
        "--trials", type=int, default=1000, help="[signal] Monte-Carlo attack trials"
    )
    bench.add_argument(
        "--bench-model", default="cnn_mnist", help="[scenario] workload model"
    )
    bench.add_argument(
        "--fc-placements", type=int, default=10,
        help="[scenario] placements per FC-column grid point",
    )
    bench.add_argument(
        "--mixed-placements", type=int, default=3,
        help="[scenario] placements per mixed-grid point",
    )
    bench.add_argument(
        "--train-samples", type=int, default=320,
        help="[training] dataset size for the variant-grid comparison",
    )
    bench.add_argument(
        "--train-epochs", type=int, default=2,
        help="[training] epochs for the variant-grid comparison",
    )
    bench.add_argument(
        "--search-kinds", default="laser_power,hotspot", metavar="K1,K2,..",
        help="[search] attack kinds to compare against their fixed grids",
    )
    bench.add_argument(
        "--search-optimizers", default="random,evolutionary,halving",
        metavar="O1,O2,..",
        help="[search] optimizers run at the grid's evaluation budget",
    )
    bench.add_argument(
        "--repeats", type=int, default=None,
        help="timing repeats, best-of (default: 3 signal, 1 scenario)",
    )
    bench.add_argument("--seed", type=int, default=0, help="operand/attack seed")
    bench.add_argument(
        "--output", default=None,
        help="JSON output path ('-' to skip writing; default: the suite's "
             "BENCH_*.json; ignored for --suite all)",
    )
    bench.add_argument(
        "--bench-models", default="cnn_mnist,resnet18,vgg16_variant",
        metavar="M1,M2,..",
        help="[backends] workload models compared across backends",
    )
    bench.add_argument("--json", action="store_true", help="print the results as JSON")
    add_backend_args(bench)

    serve = sub.add_parser(
        "serve", help="run the persistent campaign service (job queue + HTTP API)"
    )
    serve.add_argument("--host", default=None, help="bind address (default: 127.0.0.1)")
    serve.add_argument("--port", type=int, default=None, help="bind port (default: 8321)")
    serve.add_argument(
        "--workers", "-j", type=int, default=2,
        help="local worker processes shared by all submitted sweeps "
             "(default: 2; 0 = coordinator-only, capacity comes from "
             "federated repro node agents)",
    )
    serve.add_argument(
        "--max-jobs", type=int, default=32,
        help="admission bound: active (queued+running) jobs before submits "
             "get 429 (default: 32)",
    )
    serve.add_argument(
        "--max-jobs-per-client", type=int, default=None, metavar="N",
        help="per-client admission bound under --max-jobs, keyed by the "
             "X-Repro-Client header (default: none)",
    )
    serve.add_argument(
        "--jobstore-dir", default=None,
        help="durable job-store directory (env: REPRO_JOBSTORE_DIR; "
             "default: <cache-dir>/jobs)",
    )
    serve.add_argument(
        "--lease-ttl", type=float, default=15.0, metavar="SECONDS",
        help="federated lease time-to-live; a node must renew within this "
             "or its runs re-dispatch (default: 15)",
    )
    serve.add_argument(
        "--heartbeat", type=float, default=2.0, metavar="SECONDS",
        help="heartbeat cadence node agents must follow (default: 2)",
    )
    serve.add_argument(
        "--node-timeout", type=float, default=None, metavar="SECONDS",
        help="silence before a node is declared dead and its leases requeue "
             "(default: 5 heartbeats)",
    )
    add_retry_args(serve, scope="service default: 3; per-job overridable")
    add_cache_args(serve)

    def add_client_args(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--url", default=os.environ.get("REPRO_SERVE_URL", None),
            help="daemon base URL (env: REPRO_SERVE_URL; "
                 "default: http://127.0.0.1:8321)",
        )
        p.add_argument(
            "--client", default=os.environ.get("REPRO_CLIENT", ""),
            metavar="NAME",
            help="client identity sent as X-Repro-Client for per-client "
                 "quotas (env: REPRO_CLIENT; default: anonymous)",
        )

    node = sub.add_parser(
        "node", help="run a federated worker node against a coordinator daemon"
    )
    node.add_argument(
        "--coordinator", default=os.environ.get("REPRO_SERVE_URL", None),
        metavar="URL",
        help="coordinator base URL (env: REPRO_SERVE_URL; "
             "default: http://127.0.0.1:8321)",
    )
    node.add_argument(
        "--workers", "-j", type=int, default=2,
        help="local worker processes this node contributes (default: 2)",
    )
    node.add_argument(
        "--node-id", default=None,
        help="stable node identity (default: <hostname>-<pid>)",
    )
    node.add_argument(
        "--cache-dir", default=os.environ.get("REPRO_CACHE_DIR", None),
        help="optional local result cache for the node's workers (env: "
             "REPRO_CACHE_DIR; results are always uploaded to the "
             "coordinator's cache — sharing one directory on the same host "
             "makes local runs cache hits too)",
    )

    submit = sub.add_parser(
        "submit", help="submit a sweep to a running repro serve daemon"
    )
    add_sweep_axis_args(submit)
    add_retry_args(submit, scope="default: the daemon's policy")
    add_client_args(submit)
    submit.add_argument(
        "--no-wait", action="store_true",
        help="return immediately after submission instead of streaming progress",
    )
    submit.add_argument(
        "--timeout", type=float, default=None,
        help="max seconds to wait for completion (default: forever)",
    )
    submit.add_argument("--json", action="store_true", help="print the job as JSON")
    submit.add_argument("--quiet", "-q", action="store_true", help="no per-point progress")

    jobs = sub.add_parser("jobs", help="inspect a running daemon's jobs")
    jobs.add_argument("job_id", nargs="?", default=None, help="show one job")
    add_client_args(jobs)
    jobs.add_argument(
        "--cancel", action="store_true", help="cancel the given job"
    )
    jobs.add_argument(
        "--results", action="store_true",
        help="fetch the given job's cached results",
    )
    jobs.add_argument(
        "--events", action="store_true",
        help="print the given job's progress lines",
    )
    jobs.add_argument("--json", action="store_true", help="print as JSON")

    search = sub.add_parser(
        "search",
        help="black-box attack search: Pareto front over damage vs. stealth",
    )
    search.add_argument(
        "kind", nargs="?", default="hotspot",
        help="attack kind whose parameter space to search (default: hotspot)",
    )
    search.add_argument(
        "--model", default="cnn_mnist", help="workload model (default: cnn_mnist)"
    )
    search.add_argument(
        "--variant", default="", metavar="V1,V2,..",
        help="mitigation variant(s) to attack, one search per name "
             "(default: the unmitigated model)",
    )
    search.add_argument(
        "--block", default="both", choices=("conv", "fc", "both"),
        help="attacked accelerator block (default: both)",
    )
    search.add_argument(
        "--optimizer", default="random",
        choices=("random", "evolutionary", "halving"),
        help="random: uniform sampling; evolutionary: (mu+lambda) ES; "
             "halving: successive halving over placement budgets "
             "(default: random)",
    )
    search.add_argument(
        "--budget", type=int, default=64,
        help="scenario-evaluation budget — each candidate costs its "
             "placement count (default: 64)",
    )
    search.add_argument(
        "--generation", dest="generation_size", type=int, default=8,
        help="candidates asked per optimizer generation (default: 8)",
    )
    search.add_argument(
        "--placements", type=int, default=2,
        help="random placements evaluated per candidate (default: 2)",
    )
    search.add_argument(
        "--fraction-range", default="0.005,0.1", metavar="LO,HI",
        help="attacked-MR fraction bounds (default: 0.005,0.1)",
    )
    search.add_argument(
        "--sigma", type=float, default=0.2,
        help="[evolutionary] mutation scale in the unit cube (default: 0.2)",
    )
    search.add_argument(
        "--mu", type=int, default=0,
        help="[evolutionary] parents kept per generation "
             "(default: generation/4)",
    )
    search.add_argument(
        "--eta", type=int, default=2,
        help="[halving] survivor divisor per rung (default: 2)",
    )
    search.add_argument("--seed", type=int, default=0, help="search seed")
    search.add_argument(
        "--workers", "-j", default=None,
        help="evaluate generations on a process pool of this size instead "
             "of the stacked in-process path",
    )
    search.add_argument(
        "--serial", action="store_true",
        help="evaluate generations through the serial campaign executor",
    )
    search.add_argument(
        "--serve", action="store_true",
        help="submit each generation to a repro serve daemon as a zipped "
             "sweep (inherits its retry/quarantine policy)",
    )
    add_client_args(search)
    search.add_argument(
        "--timeout", type=float, default=3600.0,
        help="[--serve] max seconds to wait per generation (default: 3600)",
    )
    add_retry_args(search, scope="campaign/serve backends")
    search.add_argument(
        "--checkpoint-cache", action="store_true",
        help="load/store the variant's trained-model checkpoint",
    )
    search.add_argument("--json", action="store_true", help="print the result as JSON")
    search.add_argument("--quiet", "-q", action="store_true", help="no per-generation progress")
    add_backend_args(search)
    add_cache_args(search)
    return parser


# ----------------------------------------------------------------- commands
def _cmd_list() -> int:
    from repro.analysis.experiments import EXPERIMENTS
    from repro.analysis.reporting import format_table

    rows = [
        (
            descriptor.experiment_id,
            descriptor.paper_reference,
            descriptor.title,
            ", ".join(sorted(descriptor.default_params)) or "-",
        )
        for descriptor in EXPERIMENTS.values()
    ]
    print(format_table(("id", "artefact", "title", "parameters"), rows))
    return 0


def _cmd_attacks(args: argparse.Namespace) -> int:
    """List the attack-kind registry and where each kind can be swept."""
    from repro.analysis.experiments import EXPERIMENTS
    from repro.analysis.reporting import format_table
    from repro.attacks import attack_kind_info

    accepting = [
        descriptor.experiment_id
        for descriptor in EXPERIMENTS.values()
        if descriptor.attack_kind_params
    ]
    kinds = attack_kind_info()
    if args.json:
        print(json.dumps(
            {"kinds": kinds, "experiments": accepting},
            indent=2, sort_keys=True, default=str,
        ))
        return 0
    rows = []
    for info in kinds:
        params = ", ".join(
            f"{name}={value}{_param_domain(info['param_info'].get(name, {}))}"
            for name, value in info["params"].items()
        ) or "-"
        rows.append((info["kind"], params, info["summary"]))
    print(format_table(("kind", "parameters", "threat model"), rows))
    print(
        "\nexperiments accepting attack kinds (via their kind/kinds parameter): "
        + ", ".join(accepting)
    )
    print("e.g.  python -m repro sweep fig7_point --grid kind=" +
          ",".join(info["kind"] for info in kinds))
    print("e.g.  python -m repro search hotspot --optimizer evolutionary --budget 64")
    return 0


def _param_domain(info: dict) -> str:
    """Render one parameter's search domain: ``[lo..hi]``/``{a|b}`` suffix."""
    bounds = info.get("bounds")
    if bounds is not None:
        lo, hi = bounds
        log = ",log" if info.get("log") else ""
        return f"[{lo:g}..{hi:g}{log}]"
    choices = info.get("choices")
    if choices is not None:
        return "{" + "|".join(str(choice) for choice in choices) + "}"
    return ""


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.analysis.experiments import get_experiment

    try:
        descriptor = get_experiment(args.experiment_id)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 1
    params = dict(args.params)
    if "seed" in params and args.seed is None:
        args.seed = int(params.pop("seed"))  # --set seed=N behaves like --seed N
    if args.seed is not None and not descriptor.seedable:
        print(f"error: experiment {args.experiment_id!r} does not take a seed",
              file=sys.stderr)
        return 2
    resolved = descriptor.resolve_params(params)
    resolved.pop("seed", None)
    spec = RunSpec(
        experiment_id=args.experiment_id,
        params=resolved,
        seed=args.seed if args.seed is not None else 0,
    )
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    campaign = Campaign([spec], cache=cache)
    result = campaign.run()
    record = result.records[0]
    if not record.ok:
        print(f"error: {record.error}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(dict(record.payload), indent=2, sort_keys=True))
    else:
        source = "cache" if record.cached else f"executed in {record.duration_s:.2f}s"
        print(f"{descriptor.experiment_id} ({descriptor.paper_reference}) — {source}")
        for key, value in record.payload.items():
            print(f"  {key}: {value}")
    return 0


def _retry_overrides(args: argparse.Namespace) -> dict | None:
    """The retry-policy fields explicitly set on the command line, or None."""
    overrides: dict = {}
    if getattr(args, "max_attempts", None) is not None:
        overrides["max_attempts"] = args.max_attempts
    if getattr(args, "run_deadline", None) is not None:
        overrides["deadline_s"] = args.run_deadline
    if getattr(args, "retry_backoff", None) is not None:
        overrides["backoff_s"] = args.retry_backoff
    return overrides or None


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.engine.executor import RetryPolicy

    workers = "serial" if args.serial else args.workers
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    completed = {"count": 0}  # progress survives an interrupt for the report

    def progress(event: ProgressEvent) -> None:
        completed["count"] = event.done
        if not args.quiet and not args.json:
            print(event.message, flush=True)

    try:
        overrides = _retry_overrides(args)
        retry = RetryPolicy.from_dict(overrides) if overrides else None
        sweep = SweepSpec(
            experiment_id=args.experiment_id,
            base=dict(args.params),
            grid=dict(args.grid),
            zipped=dict(args.zipped),
            seeds=args.seeds,
        )
        campaign = Campaign(
            sweep, cache=cache, workers=workers, progress=progress, retry=retry
        )
    except (KeyError, ValueError) as exc:
        message = exc.args[0] if exc.args else exc
        print(f"error: {message}", file=sys.stderr)
        return 1
    total = len(campaign.specs)
    print(
        f"sweep {args.experiment_id}: {total} points ({campaign.executor.kind})",
        file=sys.stderr,
    )
    # Ctrl-C / SIGTERM stop the sweep *gracefully*: every completed point is
    # already flushed to the cache (Campaign persists per completion), so a
    # re-run resumes exactly where this one stopped.
    with _graceful_sigterm():
        try:
            result = campaign.run()
        except KeyboardInterrupt:
            done = completed["count"]
            where = f"{done}/{total} points complete"
            resume = (
                "; completed runs are cached — re-run the same sweep to resume"
                if cache is not None
                else ""
            )
            print(f"\ninterrupted: {where}{resume}", file=sys.stderr)
            return EXIT_INTERRUPTED
    if args.json:
        print(json.dumps(
            {"summary": result.summary(), "payloads": result.payloads},
            indent=2, sort_keys=True,
        ))
    else:
        summary = result.summary()
        print(
            f"done: {summary['points']} points, {summary['executed']} executed, "
            f"{summary['cache_hits']} cache hits, {summary['failures']} failures "
            f"in {summary['duration_s']}s"
        )
    return 1 if result.failures else 0


def _cmd_search(args: argparse.Namespace) -> int:
    """Run one black-box attack search per requested mitigation variant."""
    from repro.analysis.reporting import format_pareto_table
    from repro.attacks.search import AttackSearch, AttackSearchConfig, SearchError
    from repro.engine.executor import RetryPolicy

    try:
        parts = [float(part) for part in args.fraction_range.split(",")]
        fraction_range = (parts[0], parts[1])
        if len(parts) != 2:
            raise ValueError
    except (IndexError, ValueError):
        print("error: --fraction-range expects LO,HI (e.g. 0.005,0.1)",
              file=sys.stderr)
        return 2
    overrides = _retry_overrides(args)
    retry = RetryPolicy.from_dict(overrides) if overrides else None
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    client = _make_client(args) if args.serve else None
    workers = "serial" if args.serial else args.workers
    variants = (
        [part.strip() for part in args.variant.split(",")] if args.variant else [""]
    )
    payloads: dict[str, dict] = {}
    for variant in variants:
        try:
            config = AttackSearchConfig(
                kind=args.kind,
                model=args.model,
                variant=variant,
                block=args.block,
                optimizer=args.optimizer,
                budget=args.budget,
                generation_size=args.generation_size,
                placements=args.placements,
                fraction_range=fraction_range,
                sigma=args.sigma,
                mu=args.mu or None,
                eta=args.eta,
                checkpoint_cache=args.checkpoint_cache,
                seed=args.seed,
            )
            search = AttackSearch(
                config, cache=cache, workers=workers, client=client,
                retry=retry, serve_timeout=args.timeout,
            )
        except (KeyError, ValueError) as exc:
            message = exc.args[0] if exc.args else exc
            print(f"error: {message}", file=sys.stderr)
            return 1
        name = variant or "(unmitigated)"
        print(
            f"search {args.kind} on {args.model} {name}: "
            f"{args.optimizer} optimizer, budget {args.budget} "
            f"({search.evaluator.name} evaluation)",
            file=sys.stderr,
        )

        def progress(result) -> None:
            if args.quiet or args.json:
                return
            best = result.best
            best_note = (
                f", best drop {best['drop_mean']:.3f} @ "
                f"{best['num_attacked_mrs']} MRs" if best else ""
            )
            print(
                f"[gen {result.generations}] {result.evaluations}/"
                f"{config.budget} evaluations, {len(result.candidates)} "
                f"candidates{best_note}",
                flush=True,
            )

        with _graceful_sigterm():
            try:
                result = search.run(progress=progress)
            except SearchError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 1
            except KeyboardInterrupt:
                resume = (
                    "; evaluated candidates are cached — re-run the same "
                    "search to resume" if cache is not None else ""
                )
                print(f"\ninterrupted{resume}", file=sys.stderr)
                return EXIT_INTERRUPTED
        payloads[name] = result.to_payload()
        if not args.json:
            title = (
                f"Pareto front — {args.model} {name} {args.kind} "
                f"({len(result.candidates)} candidates, "
                f"baseline {result.baseline:.4f})"
            )
            print(format_pareto_table(result.front, title=title))
            best = result.best
            if best is not None:
                print(
                    f"best damage/MR: {best['damage_per_mr']:.2e} "
                    f"(drop {best['drop_mean']:.3f} over "
                    f"{best['num_attacked_mrs']} MRs at fraction "
                    f"{best['fraction']:g})"
                )
            print(
                f"done: {result.evaluations} evaluations in "
                f"{result.generations} generations — {result.executed} "
                f"executed, {result.cache_hits} cache hits in "
                f"{result.duration_s:.2f}s"
            )
    if args.json:
        print(json.dumps(
            payloads if len(payloads) > 1 else payloads[next(iter(payloads))],
            indent=2, sort_keys=True,
        ))
    return 0


class _graceful_sigterm:
    """Context manager turning SIGTERM into KeyboardInterrupt (main thread).

    Lets ``repro sweep`` and ``repro serve`` treat a polite ``kill`` exactly
    like Ctrl-C: flush state, report progress, exit without a traceback.
    Outside the main thread (e.g. tests driving ``cli_main`` from a worker
    thread) signal handlers cannot be installed, so it degrades to a no-op.
    """

    def __enter__(self):
        self._previous = None
        try:
            self._previous = signal.signal(
                signal.SIGTERM, lambda signum, frame: (_ for _ in ()).throw(
                    KeyboardInterrupt()
                )
            )
        except ValueError:  # not the main thread
            pass
        return self

    def __exit__(self, *exc_info):
        if self._previous is not None:
            signal.signal(signal.SIGTERM, self._previous)
        return False


def _jobstore_dir(args: argparse.Namespace) -> str:
    if args.jobstore_dir:
        return args.jobstore_dir
    env = os.environ.get("REPRO_JOBSTORE_DIR")
    if env:
        return env
    return os.path.join(args.cache_dir, "jobs")


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the persistent campaign service until interrupted."""
    from repro.engine.executor import RetryPolicy
    from repro.faults import active_plan
    from repro.serve.api import DEFAULT_HOST, DEFAULT_PORT, ServeDaemon
    from repro.serve.service import DEFAULT_POLICY, CampaignService

    if args.no_cache:
        print(
            "error: repro serve requires the result cache — it is what makes "
            "jobs durable and repeat queries free",
            file=sys.stderr,
        )
        return 2
    plan = active_plan()
    if plan is not None:
        # A forgotten REPRO_FAULTS in a real deployment would look like
        # mysterious crashes/hangs; make the chaos plan impossible to miss.
        print(
            f"WARNING: fault injection ACTIVE (REPRO_FAULTS): {plan.describe()}",
            file=sys.stderr, flush=True,
        )
    overrides = _retry_overrides(args)
    policy = RetryPolicy.from_dict(overrides, default=DEFAULT_POLICY) if overrides else None
    if args.workers < 0:
        print("error: --workers must be >= 0", file=sys.stderr)
        return 2
    service = CampaignService(
        jobstore_dir=_jobstore_dir(args),
        cache_dir=args.cache_dir,
        workers=args.workers,
        max_jobs=args.max_jobs,
        max_jobs_per_client=args.max_jobs_per_client,
        policy=policy,
        lease_ttl_s=args.lease_ttl,
        heartbeat_s=args.heartbeat,
        node_timeout_s=args.node_timeout,
    )
    daemon = ServeDaemon(
        service,
        host=args.host if args.host is not None else DEFAULT_HOST,
        port=args.port if args.port is not None else DEFAULT_PORT,
    )
    recovered = service.start()  # recover before accepting traffic
    for job in recovered:
        print(f"resuming job {job.job_id} ({job.total} points)", file=sys.stderr)
    workers_note = (
        f"{args.workers} local workers" if args.workers else "coordinator-only"
    )
    print(
        f"repro serve listening on {daemon.url} "
        f"({workers_note}, cache {service.cache.root}, "
        f"jobs {service.store.root})",
        file=sys.stderr, flush=True,
    )
    with _graceful_sigterm():
        try:
            daemon.serve_forever()
        except KeyboardInterrupt:
            print(
                "\nshutting down: letting workers finish their current runs "
                "(completed points are cached; active jobs resume on restart)",
                file=sys.stderr,
            )
            daemon.shutdown(graceful=True)
            return 0
    return 0


def _sweep_payload(args: argparse.Namespace) -> dict:
    payload = {
        "experiment_id": args.experiment_id,
        "base": dict(args.params),
        "grid": dict(args.grid),
        "zipped": dict(args.zipped),
        "seeds": list(args.seeds),
    }
    overrides = _retry_overrides(args)
    if overrides:
        payload["policy"] = overrides
    return payload


def _make_client(args: argparse.Namespace):
    from repro.serve.client import DEFAULT_URL, ServeClient

    return ServeClient(
        args.url or DEFAULT_URL, client=getattr(args, "client", "") or ""
    )


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro.serve.client import JobFailedError, ServeError

    client = _make_client(args)
    try:
        job = client.submit(_sweep_payload(args))
    except ServeError as exc:
        if exc.status == 429:
            print(f"busy (429): {exc}", file=sys.stderr)
            return 3
        print(f"error: {exc}", file=sys.stderr)
        return 1
    deduped = "" if job.get("created") else " (deduplicated to existing job)"
    print(
        f"job {job['job_id']}: {job['state']}, {job['total']} points{deduped}",
        file=sys.stderr,
    )
    if args.no_wait:
        if args.json:
            print(json.dumps(job, indent=2, sort_keys=True))
        return 0
    on_event = None
    if not args.quiet and not args.json:
        def on_event(line: str) -> None:
            print(line, flush=True)
    try:
        job = client.wait(job["job_id"], timeout=args.timeout, on_event=on_event)
    except JobFailedError as exc:
        # The campaign reached a bad terminal state (distinct from transport
        # errors): report what was given up on and exit non-zero.
        print(f"error: {exc}", file=sys.stderr)
        for entry in exc.quarantined:
            print(
                f"  quarantined: {entry.get('label')} after "
                f"{entry.get('attempts')} attempts — {entry.get('error')}",
                file=sys.stderr,
            )
        if args.json:
            print(json.dumps(exc.job, indent=2, sort_keys=True))
        return 1
    except ServeError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except KeyboardInterrupt:
        print(
            f"\ndetached from job {job['job_id']} (it keeps running; "
            f"check it with: repro jobs {job['job_id']})",
            file=sys.stderr,
        )
        return EXIT_INTERRUPTED
    if args.json:
        print(json.dumps(client.results(job["job_id"]), indent=2, sort_keys=True))
    else:
        print(
            f"{job['state']}: {job['total']} points, {job['executed']} executed, "
            f"{job['cache_hits']} cache hits, {job['failures']} failures"
        )
    return 0 if job["state"] == "done" else 1


def _cmd_jobs(args: argparse.Namespace) -> int:
    from repro.analysis.reporting import format_table
    from repro.serve.client import ServeError

    client = _make_client(args)
    try:
        if args.job_id is None:
            jobs = client.jobs()
            health = client.health()
            pool = health.get("pool", {})
            nodes = health.get("nodes", [])
            if args.json:
                print(json.dumps(
                    {"jobs": jobs, "pool": pool, "nodes": nodes,
                     "degraded": health.get("degraded", False)},
                    indent=2, sort_keys=True,
                ))
                return 0
            print(
                f"workers: {pool.get('alive', '?')}/{pool.get('workers', '?')} alive, "
                f"{pool.get('respawns', 0)}/{pool.get('max_respawns', '?')} respawns"
                + (" — DEGRADED (respawn budget spent)" if pool.get("degraded") else ""),
                file=sys.stderr,
            )
            for entry in nodes:
                flags = "".join(
                    f" [{flag}]"
                    for flag, on in (
                        ("draining", entry.get("draining")),
                        ("quarantined", entry.get("quarantined")),
                    )
                    if on
                )
                print(
                    f"node {entry['node_id']}: {entry['state']}, "
                    f"{entry['leases']} leased / {entry['workers']} workers, "
                    f"{entry['completed']} completed, "
                    f"last heartbeat {entry['last_heartbeat_age_s']}s ago"
                    f"{flags}",
                    file=sys.stderr,
                )
            if health.get("degraded") and any(
                entry["state"] in ("dead", "quarantined") for entry in nodes
            ):
                print(
                    "cluster DEGRADED: dead or quarantined node(s) above",
                    file=sys.stderr,
                )
            if not jobs:
                print("no jobs")
            else:
                rows = [
                    (
                        job["job_id"], job.get("experiment_id", "-"), job["state"],
                        f"{job['done']}/{job['total']}", job["executed"],
                        job["cache_hits"], job["failures"], job["created_at"],
                    )
                    for job in jobs
                ]
                print(format_table(
                    ("job", "experiment", "state", "done", "executed",
                     "cache_hits", "failures", "created"),
                    rows,
                ))
            return 0
        if args.cancel:
            payload = client.cancel(args.job_id)
        elif args.results:
            payload = client.results(args.job_id)
        elif args.events:
            for line in client.events(args.job_id):
                print(line)
            return 0
        else:
            payload = client.job(args.job_id)
        if args.json or args.results:
            print(json.dumps(payload, indent=2, sort_keys=True))
        else:
            for key in (
                "job_id", "state", "total", "done", "executed", "cache_hits",
                "failures", "submits", "created_at", "started_at",
                "finished_at", "error", "note",
            ):
                if key in payload and payload[key] not in (None, ""):
                    print(f"  {key}: {payload[key]}")
            for entry in payload.get("quarantined", ()) or ():
                print(
                    f"  quarantined: {entry.get('label')} after "
                    f"{entry.get('attempts')} attempts — {entry.get('error')}"
                )
        return 0
    except ServeError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


def _cmd_node(args: argparse.Namespace) -> int:
    """Run a federated worker node until drained or stopped."""
    from repro.faults import active_plan
    from repro.serve.client import DEFAULT_URL
    from repro.serve.federation import NodeAgent

    plan = active_plan()
    if plan is not None:
        print(
            f"WARNING: fault injection ACTIVE (REPRO_FAULTS): {plan.describe()}",
            file=sys.stderr, flush=True,
        )
    agent = NodeAgent(
        coordinator=args.coordinator or DEFAULT_URL,
        workers=args.workers,
        node_id=args.node_id or "",
        cache_dir=args.cache_dir,
    )

    signals = {"count": 0}

    def _on_signal(signum, frame):  # noqa: ARG001 — signal signature
        signals["count"] += 1
        if signals["count"] == 1:
            print(
                "\ndraining: finishing leased runs, then deregistering "
                "(signal again to stop hard)",
                file=sys.stderr, flush=True,
            )
            agent.request_drain()
        else:
            agent.stop()

    try:
        signal.signal(signal.SIGTERM, _on_signal)
        signal.signal(signal.SIGINT, _on_signal)
    except ValueError:
        pass  # not the main thread (tests): drain via the agent API instead
    print(
        f"repro node {agent.node_id}: {args.workers} workers -> "
        f"{agent.coordinator}",
        file=sys.stderr, flush=True,
    )
    abandoned = agent.run()
    stats = agent.stats
    print(
        f"node {agent.node_id} exiting: {stats['executed']} executed, "
        f"{stats['uploaded']} uploaded, {stats['fenced']} fenced, "
        f"{abandoned} abandoned",
        file=sys.stderr, flush=True,
    )
    return 0 if not abandoned else EXIT_INTERRUPTED


def _cmd_train(args: argparse.Namespace) -> int:
    """Pre-warm the trained-model checkpoint cache for the given workloads."""
    from time import perf_counter

    from repro.analysis.mitigation_analysis import MitigationAnalysisConfig, MitigationStudy
    from repro.mitigation.robust_training import variant_spec_from_name

    if args.variants == "all":
        variants = None  # the study resolves this to the default 11-variant grid
    else:
        try:
            variants = tuple(
                variant_spec_from_name(name)
                for name in args.variants.split(",")
                if name
            )
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
    summary: dict[str, dict] = {}
    for model in args.models:
        config = MitigationAnalysisConfig(
            model_names=(model,),
            variants=variants,
            seed=args.seed,
            stacked_training=not args.serial,
            checkpoint_cache=True,
            checkpoint_dir=args.checkpoint_dir,
        )
        study = MitigationStudy(config)
        try:
            split = study.prepare_split(model)
        except KeyError:
            print(f"error: unknown workload model {model!r}", file=sys.stderr)
            return 1
        start = perf_counter()
        study.train_variants(model, split)
        stats = dict(study.last_training_stats[model])
        stats["duration_s"] = round(perf_counter() - start, 3)
        summary[model] = stats
        if not args.json:
            print(
                f"{model}: {stats['variants']} variants — "
                f"{stats['checkpoint_hits']} loaded from cache, "
                f"{stats['trained']} trained "
                f"({'stacked' if stats['stacked_training'] else 'serial'}, "
                f"{stats['training_steps']} steps) in {stats['duration_s']:.2f}s"
            )
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        from repro.engine.checkpoints import CheckpointCache

        cache = CheckpointCache(args.checkpoint_dir)
        print(f"checkpoint store: {cache.root}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.analysis.reporting import format_table

    cache = ResultCache(args.cache_dir)
    durations: dict[str, list[float]] = {}
    last_runs: dict[str, str] = {}
    pareto_groups: dict[tuple, list] = {}
    for record in cache.records(args.experiment):
        experiment_id = record.spec.experiment_id
        durations.setdefault(experiment_id, []).append(record.duration_s)
        last_runs[experiment_id] = max(
            last_runs.get(experiment_id, ""), record.started_at
        )
        _collect_pareto_points(record, pareto_groups)
    per_experiment = {
        experiment_id: {
            "records": len(times),
            "total_duration_s": sum(times),
            "min_duration_s": min(times),
            "mean_duration_s": sum(times) / len(times),
            "max_duration_s": max(times),
            "last_run": last_runs[experiment_id],
        }
        for experiment_id, times in durations.items()
    }
    checkpoints = _checkpoint_report(args.checkpoint_dir)
    corrupt = cache.quarantined_count()
    fronts = _pareto_report(pareto_groups)
    if args.json:
        print(json.dumps(
            {
                "experiments": per_experiment,
                "checkpoints": checkpoints,
                "corrupt_quarantined": corrupt,
                "pareto": {
                    "/".join(part or "-" for part in key): payload
                    for key, payload in fronts.items()
                },
            },
            indent=2, sort_keys=True,
        ))
        return 0
    if not per_experiment:
        print(f"no cached records under {cache.root}")
    else:
        rows = [
            (
                experiment_id,
                stats["records"],
                f"{stats['total_duration_s']:.2f}",
                f"{stats['min_duration_s']:.3f}",
                f"{stats['mean_duration_s']:.3f}",
                f"{stats['max_duration_s']:.3f}",
                stats["last_run"] or "-",
            )
            for experiment_id, stats in sorted(per_experiment.items())
        ]
        print(format_table(
            ("experiment", "records", "compute_s", "min_s", "mean_s", "max_s", "last_run"),
            rows,
        ))
    if checkpoints:
        rows = [
            (
                model,
                stats["checkpoints"],
                f"{stats['size_mb']:.2f}",
                stats["cache_hits"],
            )
            for model, stats in sorted(checkpoints.items())
        ]
        print()
        print(format_table(
            ("model checkpoints", "entries", "size_mb", "cache_hits"), rows
        ))
    if fronts:
        from repro.analysis.reporting import format_pareto_table

        for key in sorted(fronts):
            model, variant, kind = key
            evaluated = len(pareto_groups[key])
            title = (
                f"Pareto front — {model} {variant or '(unmitigated)'} {kind} "
                f"({evaluated} cached candidates)"
            )
            print()
            print(format_pareto_table(fronts[key], title=title))
    if corrupt:
        print(
            f"\nWARNING: {corrupt} corrupt cache file(s) quarantined under "
            f"{cache.corrupt_dir} (recomputed on next access; inspect or delete)"
        )
    return 0


def _checkpoint_report(checkpoint_dir: str | None) -> dict[str, dict]:
    """Per-model summary of the trained-model checkpoint store."""
    from repro.engine.checkpoints import CheckpointCache

    cache = CheckpointCache(checkpoint_dir)
    summary: dict[str, dict] = {}
    for entry in cache.entries():
        stats = summary.setdefault(
            entry["group"], {"checkpoints": 0, "size_mb": 0.0, "cache_hits": 0}
        )
        stats["checkpoints"] += 1
        stats["size_mb"] += entry["size_bytes"] / 1e6
        stats["cache_hits"] += entry["hits"]
    return summary


def _collect_pareto_points(record, groups: dict[tuple, list]) -> None:
    """Fold one cached record into the (model, variant, kind) Pareto pools.

    ``fig7_candidate`` records contribute themselves; ``fig7_adversarial``
    records contribute their embedded front (already reduced per search).
    """
    from repro.attacks.search.pareto import ParetoPoint

    if not record.ok or not record.payload:
        return
    payload = record.payload
    experiment_id = record.spec.experiment_id
    if experiment_id == "fig7_candidate":
        key = (payload["model"], payload.get("variant", ""), payload["kind"])
        params = ",".join(
            f"{k}={v}" for k, v in sorted((payload.get("attack_params") or {}).items())
        )
        inner = f"fraction={payload['fraction']}" + (f",{params}" if params else "")
        groups.setdefault(key, []).append(ParetoPoint(
            stealth=int(payload["num_attacked_mrs"]),
            damage=float(payload["drop_mean"]),
            label=f"{payload['kind']}[{inner}]x{payload['placements']}",
        ))
    elif experiment_id == "fig7_adversarial":
        key = (payload["model"], payload.get("variant", ""), payload["kind"])
        for point in payload.get("front", ()):
            groups.setdefault(key, []).append(ParetoPoint(
                stealth=int(point["num_attacked_mrs"]),
                damage=float(point["accuracy_drop"]),
                label=point.get("label", ""),
            ))


def _pareto_report(groups: dict[tuple, list]) -> dict[tuple, list]:
    """Reduce each candidate pool to its front, as JSON-ready dicts."""
    from repro.attacks.search.pareto import front_payload, pareto_front

    return {
        key: front_payload(pareto_front(points))
        for key, points in groups.items()
    }


def _cmd_bench(args: argparse.Namespace) -> int:
    suites = (
        ("signal", "scenario", "training", "search", "backends")
        if args.suite == "all"
        else (args.suite,)
    )
    payloads: dict[str, dict] = {}
    reports: list[str] = []
    for suite in suites:
        if args.suite == "all":
            output = _default_bench_output(suite)
        elif args.output == "-":
            output = None
        else:
            output = args.output or _default_bench_output(suite)
        if suite == "signal":
            from repro.analysis.signal_bench import (
                format_bench_report,
                run_signal_core_bench,
            )

            results = run_signal_core_bench(
                matvec_size=args.matvec_size,
                mc_size=args.mc_size,
                mc_trials=args.trials,
                repeats=args.repeats if args.repeats is not None else 3,
                seed=args.seed,
                output=output,
            )
            report = format_bench_report(results)
        elif suite == "training":
            from repro.analysis.training_bench import (
                format_training_bench_report,
                run_training_bench,
            )

            results = run_training_bench(
                model=args.bench_model,
                num_samples=args.train_samples,
                epochs=args.train_epochs,
                repeats=args.repeats if args.repeats is not None else 1,
                seed=args.seed,
                output=output,
            )
            report = format_training_bench_report(results)
        elif suite == "search":
            from repro.analysis.search_bench import (
                format_search_bench_report,
                run_attack_search_bench,
            )

            results = run_attack_search_bench(
                model=args.bench_model,
                kinds=tuple(
                    part for part in args.search_kinds.split(",") if part
                ),
                optimizers=tuple(
                    part for part in args.search_optimizers.split(",") if part
                ),
                seed=args.seed,
                output=output,
            )
            report = format_search_bench_report(results)
        elif suite == "backends":
            from repro.analysis.backends_bench import (
                format_backends_bench_report,
                run_backends_bench,
            )

            results = run_backends_bench(
                models=tuple(
                    part for part in args.bench_models.split(",") if part
                ),
                threads=getattr(args, "threads", None),
                repeats=args.repeats if args.repeats is not None else 2,
                seed=args.seed,
                output=output,
            )
            report = format_backends_bench_report(results)
        else:
            from repro.analysis.scenario_batch_bench import (
                format_scenario_bench_report,
                run_scenario_batch_bench,
            )

            results = run_scenario_batch_bench(
                model=args.bench_model,
                fc_placements=args.fc_placements,
                mixed_placements=args.mixed_placements,
                repeats=args.repeats if args.repeats is not None else 1,
                seed=args.seed,
                output=output,
            )
            report = format_scenario_bench_report(results)
        payloads[suite] = results
        if output is not None:
            report += f"\n\nwrote {output}"
        reports.append(report)
    if args.json:
        print(json.dumps(
            payloads if len(payloads) > 1 else payloads[suites[0]],
            indent=2, sort_keys=True,
        ))
    else:
        print("\n\n".join(reports))
    return 0


def _default_bench_output(suite: str) -> str:
    return {
        "signal": "BENCH_signal_core.json",
        "scenario": "BENCH_scenario_batch.json",
        "training": "BENCH_training.json",
        "search": "BENCH_search.json",
        "backends": "BENCH_backends.json",
    }[suite]


def _apply_backend_selection(args: argparse.Namespace) -> int:
    """Export ``--backend``/``--threads`` as the process-wide selection.

    The flags are applied through the ``REPRO_NN_BACKEND``/``REPRO_NN_THREADS``
    environment variables rather than a context manager so that (a) process
    pools spawned later inherit the selection and (b) run fingerprints pick
    it up via :func:`repro.engine.spec.runtime_environment` no matter where
    they are computed.  Returns 0, or 2 for an unknown backend name.
    """
    backend = getattr(args, "backend", None)
    threads = getattr(args, "threads", None)
    if backend:
        from repro.nn.backend import registered_backends

        if backend not in registered_backends():
            print(
                f"error: unknown backend {backend!r}; "
                f"available: {', '.join(registered_backends())}",
                file=sys.stderr,
            )
            return 2
        os.environ["REPRO_NN_BACKEND"] = backend
    if threads is not None:
        if threads < 1:
            print("error: --threads must be >= 1", file=sys.stderr)
            return 2
        os.environ["REPRO_NN_THREADS"] = str(threads)
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    status = _apply_backend_selection(args)
    if status:
        return status
    try:
        if args.command == "list":
            return _cmd_list()
        if args.command == "attacks":
            return _cmd_attacks(args)
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "sweep":
            return _cmd_sweep(args)
        if args.command == "search":
            return _cmd_search(args)
        if args.command == "train":
            return _cmd_train(args)
        if args.command == "report":
            return _cmd_report(args)
        if args.command == "bench":
            return _cmd_bench(args)
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "node":
            return _cmd_node(args)
        if args.command == "submit":
            return _cmd_submit(args)
        if args.command == "jobs":
            return _cmd_jobs(args)
    except BrokenPipeError:  # e.g. `python -m repro list | head`
        sys.stderr.close()  # suppress the interpreter's flush-time warning
        return 0
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    raise SystemExit(main())
