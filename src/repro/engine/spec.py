"""Declarative run and sweep specifications for the campaign engine.

A :class:`RunSpec` names one unit of work: an experiment id from
:mod:`repro.analysis.experiments`, parameter overrides for its runner and a
seed.  A :class:`SweepSpec` declares a whole campaign — Cartesian ``grid``
axes, position-wise ``zipped`` lists and a set of ``seeds`` — and expands it
into the ordered list of concrete :class:`RunSpec` points.

Both specs are plain data: everything inside them must survive a JSON
round-trip, which is what makes run fingerprints (and therefore the result
cache) stable across processes and sessions.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Iterator, Mapping, Sequence

from repro.utils.validation import ValidationError, check_positive_int

__all__ = [
    "RunSpec",
    "SweepSpec",
    "canonical_json",
    "spec_fingerprint",
    "runtime_environment",
]


def canonical_json(payload: object) -> str:
    """Serialize ``payload`` to a canonical (sorted, compact) JSON string.

    Used both for run fingerprints and for byte-identical result comparisons,
    so the formatting here must stay deterministic.
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class RunSpec:
    """One concrete experiment execution: id + parameter overrides + seed."""

    experiment_id: str
    params: Mapping[str, object] = field(default_factory=dict)
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.experiment_id:
            raise ValidationError("experiment_id must be a non-empty string")
        if "seed" in self.params:
            raise ValidationError(
                "the seed belongs in RunSpec.seed, not in params "
                "(sweeps replicate seeds via SweepSpec.seeds)"
            )
        object.__setattr__(self, "params", dict(self.params))
        try:
            canonical_json(self.params)
        except TypeError as exc:
            raise ValidationError(
                f"RunSpec params must be JSON-serializable: {exc}"
            ) from exc

    def canonical(self) -> dict:
        """The JSON-stable identity of this run (used for fingerprints)."""
        return {
            "experiment_id": self.experiment_id,
            "params": dict(self.params),
            "seed": self.seed,
        }

    def label(self) -> str:
        """Compact human-readable label, e.g. ``fig7_point[kind=hotspot,...]``."""
        inner = ",".join(f"{k}={self.params[k]}" for k in sorted(self.params))
        suffix = f"@s{self.seed}" if self.seed else ""
        return f"{self.experiment_id}[{inner}]{suffix}" if inner else (
            f"{self.experiment_id}{suffix}"
        )


def runtime_environment() -> dict[str, object]:
    """Process-level compute-backend state that must key the result cache.

    Delegates to :func:`repro.nn.backend.cache_environment`: empty under the
    default configuration (so historical fingerprints stay valid), and
    carrying the backend name / thread count whenever ``REPRO_NN_BACKEND`` or
    ``REPRO_NN_THREADS`` select a non-default configuration — cached results
    are never silently served across compute backends.
    """
    from repro.nn.backend import cache_environment

    return cache_environment()


def spec_fingerprint(
    spec: RunSpec, version: str, environment: Mapping[str, object] | None = None
) -> str:
    """Content-addressed identity of a run under a library version.

    The hash covers the resolved spec, the ``repro`` version and the
    non-default runtime environment (compute backend selection), so cached
    results are automatically invalidated when the library — or the numeric
    backend producing them — changes.  ``environment=None`` reads the ambient
    :func:`runtime_environment`; pass an explicit mapping (possibly empty) to
    pin it.
    """
    if environment is None:
        environment = runtime_environment()
    payload: dict[str, object] = {"spec": spec.canonical(), "version": version}
    if environment:
        payload["environment"] = dict(environment)
    digest = hashlib.sha256()
    digest.update(canonical_json(payload).encode())
    return digest.hexdigest()


@dataclass(frozen=True)
class SweepSpec:
    """Declarative sweep over an experiment's parameter space.

    Attributes
    ----------
    experiment_id:
        Experiment to sweep (must exist in the registry when expanded with
        ``validate=True``).
    base:
        Parameter overrides applied to every point.
    grid:
        Cartesian axes: every combination of values is enumerated, in the
        deterministic order given by the axis insertion order.
    zipped:
        Position-wise lists (all the same length) advanced together — the
        classic ``zip`` sweep for correlated parameters such as a variant
        name and its noise level.
    seeds:
        Seeds replicated over every parameter point.
    """

    experiment_id: str
    base: Mapping[str, object] = field(default_factory=dict)
    grid: Mapping[str, Sequence[object]] = field(default_factory=dict)
    zipped: Mapping[str, Sequence[object]] = field(default_factory=dict)
    seeds: Sequence[int] = (0,)

    def __post_init__(self) -> None:
        object.__setattr__(self, "base", dict(self.base))
        object.__setattr__(
            self, "grid", {name: list(values) for name, values in self.grid.items()}
        )
        object.__setattr__(
            self, "zipped", {name: list(values) for name, values in self.zipped.items()}
        )
        object.__setattr__(self, "seeds", tuple(self.seeds))
        self._validate_axes()

    def _validate_axes(self) -> None:
        if not self.seeds:
            raise ValidationError("seeds must contain at least one seed")
        for name, values in self.grid.items():
            if not values:
                raise ValidationError(f"grid axis {name!r} must be non-empty")
        lengths = {name: len(values) for name, values in self.zipped.items()}
        if lengths and len(set(lengths.values())) > 1:
            raise ValidationError(
                f"zipped axes must have equal lengths, got {lengths}"
            )
        for a, b, what in (
            (self.base, self.grid, "base and grid"),
            (self.base, self.zipped, "base and zipped"),
            (self.grid, self.zipped, "grid and zipped"),
        ):
            overlap = sorted(set(a) & set(b))
            if overlap:
                raise ValidationError(
                    f"{what} parameters must be disjoint, both define {overlap}"
                )

    # ------------------------------------------------------------ expansion
    @property
    def num_points(self) -> int:
        """Number of RunSpecs :meth:`expand` produces."""
        total = 1
        for values in self.grid.values():
            total *= len(values)
        if self.zipped:
            total *= len(next(iter(self.zipped.values())))
        return total * len(self.seeds)

    def _parameter_points(self) -> Iterator[dict]:
        grid_names = list(self.grid)
        zip_rows: list[dict]
        if self.zipped:
            length = len(next(iter(self.zipped.values())))
            zip_rows = [
                {name: values[i] for name, values in self.zipped.items()}
                for i in range(length)
            ]
        else:
            zip_rows = [{}]

        def recurse(axis: int, chosen: dict) -> Iterator[dict]:
            if axis == len(grid_names):
                for row in zip_rows:
                    yield {**self.base, **chosen, **row}
                return
            name = grid_names[axis]
            for value in self.grid[name]:
                yield from recurse(axis + 1, {**chosen, name: value})

        yield from recurse(0, {})

    def expand(self, validate: bool = True) -> list[RunSpec]:
        """Expand into the ordered list of concrete :class:`RunSpec` points.

        With ``validate=True`` every point's parameters are resolved against
        the experiment registry — unknown experiment ids or parameter names
        fail before any work is scheduled — and each :class:`RunSpec` stores
        the *fully resolved* parameters, so a point's fingerprint does not
        depend on which values were spelled out versus defaulted.
        """
        check_positive_int(self.num_points, "num_points")
        descriptor = None
        if validate:
            from repro.analysis.experiments import get_experiment

            descriptor = get_experiment(self.experiment_id)
        specs: list[RunSpec] = []
        for params in self._parameter_points():
            if "seed" in params:
                raise ValidationError(
                    "sweep the seed via SweepSpec.seeds, not a parameter axis"
                )
            if descriptor is not None:
                params = descriptor.resolve_params(params)
                params.pop("seed", None)
            for seed in self.seeds:
                specs.append(
                    RunSpec(experiment_id=self.experiment_id, params=params, seed=seed)
                )
        return specs
