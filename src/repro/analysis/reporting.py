"""Plain-text report formatting for the reproduced tables and figures.

All formatters return strings so examples, benchmarks and tests can print or
assert on them without depending on a plotting stack.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.analysis.metrics import box_stats, percent
from repro.analysis.susceptibility import SusceptibilityResult

__all__ = [
    "format_table",
    "format_table1",
    "format_fig7_table",
    "format_fig8_table",
    "format_fig9_table",
    "format_deployment_report",
    "format_pareto_table",
]


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = "") -> str:
    """Render an ASCII table with aligned columns."""
    str_rows = [[_stringify(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = " | ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row in str_rows:
        lines.append(" | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _stringify(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.4g}"
    return str(cell)


def format_table1(rows: list[dict[str, object]]) -> str:
    """Render the Table I reproduction (paper vs. measured parameter counts)."""
    headers = [
        "Model", "Dataset",
        "CONV layers (paper/ours)", "CONV params (paper/ours)",
        "FC layers (paper/ours)", "FC params (paper/ours)",
        "Total (paper/ours)",
    ]
    table_rows = []
    for row in rows:
        table_rows.append(
            [
                row["model"],
                row["dataset"],
                f"{row['paper_conv_layers']} / {row.get('measured_conv_layers', '-')}",
                f"{row['paper_conv_parameters']:,} / {row.get('measured_conv_parameters', 0):,}",
                f"{row['paper_fc_layers']} / {row.get('measured_fc_layers', '-')}",
                f"{row['paper_fc_parameters']:,} / {row.get('measured_fc_parameters', 0):,}",
                f"{row['paper_total_parameters']:,} / {row.get('measured_total_parameters', 0):,}",
            ]
        )
    return format_table(headers, table_rows, title="Table I: CNN model parameters")


def format_fig7_table(result: SusceptibilityResult, model: str) -> str:
    """Summarize the Fig. 7 susceptibility series for one workload."""
    headers = ["Attack", "Block", "Fraction", "Mean acc", "Min acc", "Max drop"]
    baseline = result.baselines.get(model, float("nan"))
    rows = []
    for kind in result.config.kinds:
        for block in result.config.blocks:
            for fraction in result.config.fractions:
                accs = result.accuracies_for(model, kind=kind, block=block, fraction=fraction)
                if accs.size == 0:
                    continue
                rows.append(
                    [
                        kind,
                        block,
                        f"{round(fraction * 100)}%",
                        percent(float(accs.mean())),
                        percent(float(accs.min())),
                        percent(float(baseline - accs.min())),
                    ]
                )
    title = f"Fig. 7 ({model}): attacked accuracy, baseline {percent(baseline)}"
    return format_table(headers, rows, title=title)


def format_fig8_table(distributions, model: str) -> str:
    """Summarize the Fig. 8 box-plot data for one workload."""
    headers = ["Variant", "Baseline", "Min", "Q1", "Median", "Q3", "Max"]
    rows = []
    for dist in distributions:
        if dist.model != model:
            continue
        stats = box_stats(dist.accuracies)
        rows.append(
            [
                dist.variant,
                percent(dist.baseline_accuracy),
                percent(stats.minimum),
                percent(stats.q1),
                percent(stats.median),
                percent(stats.q3),
                percent(stats.maximum),
            ]
        )
    return format_table(headers, rows, title=f"Fig. 8 ({model}): accuracy across attack scenarios")


def format_fig9_table(comparison_rows, model: str) -> str:
    """Summarize the Fig. 9 robust-vs-original comparison for one workload."""
    headers = [
        "Attack", "Fraction",
        "Original mean", "Original worst",
        "Robust mean", "Robust worst",
        "Worst-case recovery",
    ]
    rows = []
    for row in comparison_rows:
        if row.model != model:
            continue
        rows.append(
            [
                row.kind,
                f"{round(row.fraction * 100)}%",
                percent(row.original_accuracy_mean),
                percent(row.original_accuracy_min),
                percent(row.robust_accuracy_mean),
                percent(row.robust_accuracy_min),
                percent(row.recovery),
            ]
        )
    return format_table(
        headers, rows, title=f"Fig. 9 ({model}): robust vs. original under CONV+FC attacks"
    )


def format_pareto_table(front: Sequence[object], title: str = "Pareto front") -> str:
    """Render a stealth-vs-damage Pareto front.

    Accepts :class:`~repro.attacks.search.pareto.ParetoPoint` objects or the
    dicts :func:`~repro.attacks.search.pareto.front_payload` emits.
    """
    headers = ["Attacked MRs", "Accuracy drop", "Candidate"]
    rows = []
    for point in front:
        if isinstance(point, dict):
            stealth = point.get("num_attacked_mrs", 0)
            damage = point.get("accuracy_drop", 0.0)
            label = point.get("label", "")
        else:
            stealth = point.stealth
            damage = point.damage
            label = point.label
        rows.append([int(stealth), percent(float(damage)), label])
    return format_table(headers, rows, title=title)


def format_deployment_report(report: dict[str, object]) -> str:
    """Render an accelerator deployment report (mapping summary)."""
    headers = ["Field", "Value"]
    rows = [[key, value] for key, value in report.items()]
    return format_table(headers, rows, title="Accelerator deployment")
