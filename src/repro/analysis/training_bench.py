"""Stacked vs serial variant-grid training benchmark.

Times the two training paths of the mitigation grid on a reduced-but-
representative workload:

* ``serial`` — :func:`~repro.mitigation.robust_training.train_variant_grid`,
  one :class:`~repro.nn.training.Trainer.fit` per variant (the paper-faithful
  reference);
* ``stacked`` —
  :func:`~repro.mitigation.robust_training.train_variant_grid_stacked`, all
  variants advancing together through one variant-stacked forward/backward
  per data batch.

The two paths are numerically equivalent — the benchmark verifies it
directly (max per-variant final-accuracy and weight disagreement) and the CI
workflow fails loudly when the check is violated, while the wall-clock
numbers stay a non-gating perf-trajectory artefact (``BENCH_training.json``).

Two speedups are recorded:

* ``speedup_stacked_vs_serial`` — one stacked pass vs one fit per variant on
  the same grid.  This is bounded by hardware: on multi-core machines the
  stacked path amortizes per-op overhead across all ``V`` weight slabs, while
  on a single-core memory-bound box the two equal-FLOP paths converge.
* ``speedup_pipeline_warm_cache`` — the *headline* Fig. 8/9 pipeline number:
  a second :class:`~repro.analysis.mitigation_analysis.MitigationStudy`
  variant-training pass against a warm content-addressed checkpoint cache
  (pure load, **zero training steps**) vs the cold pass that trained and
  stored the grid.  This is where repeated studies and sweeps spend their
  time, and it is routinely two orders of magnitude.
"""

from __future__ import annotations

import json
import platform
import tempfile
from pathlib import Path
from time import perf_counter

import numpy as np

from repro.version import __version__

__all__ = ["run_training_bench", "format_training_bench_report"]

#: Disagreement bounds between the stacked and serial training paths (in
#: practice both are bit-identical; see tests/test_stacked_training.py).
ACCURACY_TOL = 1e-9
WEIGHT_TOL = 1e-6


def run_training_bench(
    model: str = "cnn_mnist",
    num_samples: int = 320,
    epochs: int = 2,
    batch_size: int = 32,
    num_variants: int | None = None,
    repeats: int = 1,
    seed: int = 0,
    output: str | Path | None = None,
) -> dict:
    """Run the stacked-vs-serial grid benchmark and the checkpoint section.

    ``num_variants`` truncates the default 11-variant paper grid (``None``
    keeps all of it).  Returns the result dictionary and optionally writes it
    as JSON.
    """
    from repro.datasets.base import train_test_split
    from repro.datasets.registry import load_dataset
    from repro.mitigation.robust_training import (
        default_variant_grid,
        train_variant_grid,
        train_variant_grid_stacked,
    )
    from repro.nn.models.registry import MODEL_DATASETS
    from repro.nn.training import TrainingConfig

    dataset = load_dataset(MODEL_DATASETS[model], num_samples=num_samples, seed=seed)
    split = train_test_split(dataset, 0.25, seed=seed + 1)
    config = TrainingConfig(epochs=epochs, batch_size=batch_size, lr=2e-3, seed=seed)
    variants = default_variant_grid()
    if num_variants is not None:
        variants = variants[:num_variants]

    serial_s = float("inf")
    stacked_s = float("inf")
    serial = stacked = None
    for _ in range(max(repeats, 1)):
        start = perf_counter()
        serial = train_variant_grid(model, split, config, variants=variants)
        serial_s = min(serial_s, perf_counter() - start)
        start = perf_counter()
        stacked = train_variant_grid_stacked(model, split, config, variants=variants)
        stacked_s = min(stacked_s, perf_counter() - start)

    accuracy_diff = max(
        abs(a.baseline_accuracy - b.baseline_accuracy)
        for a, b in zip(serial, stacked)
    )
    weight_diff = 0.0
    for a, b in zip(serial, stacked):
        state_a, state_b = a.model.full_state_dict(), b.model.full_state_dict()
        weight_diff = max(
            weight_diff,
            max(float(np.max(np.abs(state_a[k] - state_b[k]))) for k in state_a),
        )

    results = {
        "benchmark": "training",
        "version": __version__,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "model": model,
        "num_variants": len(variants),
        "train_samples": len(split.train),
        "epochs": epochs,
        "batch_size": batch_size,
        "serial_s": serial_s,
        "stacked_s": stacked_s,
        "speedup_stacked_vs_serial": serial_s / stacked_s,
        "max_abs_accuracy_diff": float(accuracy_diff),
        "max_abs_weight_diff": float(weight_diff),
        "equivalent_within_tol": bool(
            accuracy_diff <= ACCURACY_TOL and weight_diff <= WEIGHT_TOL
        ),
        "checkpoint_cache": _bench_checkpoint_cache(model, seed),
    }
    results["speedup_pipeline_warm_cache"] = results["checkpoint_cache"][
        "speedup_warm_vs_cold"
    ]
    if output is not None:
        Path(output).write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
    return results


def _bench_checkpoint_cache(model: str, seed: int) -> dict:
    """Cold (train + store) vs warm (pure load) study training pass."""
    from repro.analysis.mitigation_analysis import (
        MitigationAnalysisConfig,
        MitigationStudy,
    )

    from repro.mitigation.robust_training import default_variant_grid

    with tempfile.TemporaryDirectory(prefix="repro-ckpt-bench-") as tmp:
        config = MitigationAnalysisConfig.quick(
            model_names=(model,),
            variants=tuple(default_variant_grid()),
            seed=seed,
            checkpoint_cache=True,
            checkpoint_dir=tmp,
        )
        study = MitigationStudy(config)
        split = study.prepare_split(model)
        start = perf_counter()
        study.train_variants(model, split)
        cold_s = perf_counter() - start
        cold_stats = dict(study.last_training_stats[model])
        start = perf_counter()
        study.train_variants(model, split)
        warm_s = perf_counter() - start
        warm_stats = dict(study.last_training_stats[model])
    return {
        "variants": cold_stats["variants"],
        "cold_s": cold_s,
        "warm_s": warm_s,
        "speedup_warm_vs_cold": cold_s / warm_s if warm_s > 0 else float("inf"),
        "cold_training_steps": cold_stats["training_steps"],
        "warm_training_steps": warm_stats["training_steps"],
        "warm_checkpoint_hits": warm_stats["checkpoint_hits"],
    }


def format_training_bench_report(results: dict) -> str:
    """Human-readable summary of a :func:`run_training_bench` result."""
    checkpoint = results["checkpoint_cache"]
    lines = [
        f"variant-grid training benchmark (repro {results['version']}, "
        f"python {results['python']}, numpy {results['numpy']})",
        f"workload: {results['model']}, {results['num_variants']} variants, "
        f"{results['train_samples']} train samples, {results['epochs']} epochs",
        "",
        f"  serial grid (one fit per variant)   {results['serial_s']:8.2f} s",
        f"  stacked grid (one pass, all slabs)  {results['stacked_s']:8.2f} s"
        f"   ({results['speedup_stacked_vs_serial']:.1f}x)",
        f"  max |accuracy diff|   {results['max_abs_accuracy_diff']:.2e}",
        f"  max |weight diff|     {results['max_abs_weight_diff']:.2e}",
        f"  paths equivalent within tol: {results['equivalent_within_tol']}",
        "",
        f"Fig. 8/9 pipeline, checkpoint cache ({checkpoint['variants']} variants):",
        f"  cold study training (train + store) {checkpoint['cold_s']:8.2f} s"
        f"   ({checkpoint['cold_training_steps']} steps)",
        f"  warm study training (pure load)     {checkpoint['warm_s']:8.2f} s"
        f"   ({checkpoint['warm_training_steps']} steps, "
        f"{checkpoint['warm_checkpoint_hits']} hits, "
        f"{checkpoint['speedup_warm_vs_cold']:.0f}x)",
    ]
    return "\n".join(lines)
