"""Experiment harnesses reproducing the paper's tables and figures.

* :mod:`repro.analysis.metrics` — accuracy drop / recovery metrics and
  box-plot statistics.
* :mod:`repro.analysis.susceptibility` — the Fig. 7 susceptibility study
  (attacked accuracy across the attack grid for each workload).
* :mod:`repro.analysis.mitigation_analysis` — the Fig. 8 variant comparison
  and the Fig. 9 robust-vs-original comparison.
* :mod:`repro.analysis.reporting` — plain-text tables matching the paper's
  artefacts (printed by the examples and benchmarks).
* :mod:`repro.analysis.experiments` — registry of experiment ids (Table I,
  Fig. 6-9, ablations) with their runners.
* :mod:`repro.analysis.signal_bench` / :mod:`repro.analysis.scenario_batch_bench`
  — the ``python -m repro bench`` suites (array-core vs seed object path,
  scenario-batched vs per-scenario attacked inference).
"""

from repro.analysis.metrics import (
    BoxStats,
    accuracy_drop,
    accuracy_recovery,
    box_stats,
    percent,
)
from repro.analysis.susceptibility import (
    ScenarioAccuracy,
    SusceptibilityConfig,
    SusceptibilityResult,
    SusceptibilityStudy,
)
from repro.analysis.mitigation_analysis import (
    MitigationAnalysisConfig,
    MitigationStudy,
    MitigationStudyResult,
    RobustComparisonRow,
)
from repro.analysis.reporting import (
    format_fig7_table,
    format_fig8_table,
    format_fig9_table,
    format_table,
    format_table1,
)
from repro.analysis.experiments import (
    EXPERIMENTS,
    ExperimentDescriptor,
    experiment_ids,
    get_experiment,
)

__all__ = [
    "BoxStats",
    "accuracy_drop",
    "accuracy_recovery",
    "box_stats",
    "percent",
    "ScenarioAccuracy",
    "SusceptibilityConfig",
    "SusceptibilityResult",
    "SusceptibilityStudy",
    "MitigationAnalysisConfig",
    "MitigationStudy",
    "MitigationStudyResult",
    "RobustComparisonRow",
    "format_table",
    "format_table1",
    "format_fig7_table",
    "format_fig8_table",
    "format_fig9_table",
    "EXPERIMENTS",
    "ExperimentDescriptor",
    "experiment_ids",
    "get_experiment",
]
