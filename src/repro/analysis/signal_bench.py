"""Seed-vs-vectorized signal-core benchmark (``python -m repro bench``).

Times the two device-simulation paths against each other on the workloads the
array-core refactor targets:

* ``matvec`` — an ``n x n`` signal-level matrix-vector product.  The *seed*
  path reconstructs a fresh per-ring-object bank pair for every row (exactly
  what the seed ``SignalLevelSimulator.dot`` did); the *object-reuse* path is
  the same loop over one reused pair; the *array* path evaluates every row as
  one broadcast Lorentzian.
* ``monte_carlo`` — a thermal-hotspot attack sweep over random per-trial
  temperatures.  The seed path rebuilds and re-attacks an object pair per
  trial; the array path runs all trials as one batched evaluation.

Each section records wall times (``time.perf_counter``), the speedups, and
the maximum disagreement between the paths (the array-core must track the
seed path to 1e-9).  :func:`run_signal_core_bench` returns the result
dictionary and optionally writes it as JSON (``BENCH_signal_core.json``),
which the CI workflow uploads as a non-gating perf-trajectory record.
"""

from __future__ import annotations

import json
import platform
from pathlib import Path
from time import perf_counter
from typing import Callable

import numpy as np

from repro.version import __version__

__all__ = ["run_signal_core_bench", "format_bench_report"]

#: Disagreement bound between the seed object path and the array-core.
EQUIVALENCE_TOL = 1e-9


def _time(fn: Callable[[], object], repeats: int) -> tuple[float, object]:
    """Best-of-``repeats`` wall time and the last result."""
    best = float("inf")
    result = None
    for _ in range(max(repeats, 1)):
        start = perf_counter()
        result = fn()
        best = min(best, perf_counter() - start)
    return best, result


def _seed_dot(
    grid,
    q_factor: float,
    inputs: np.ndarray,
    weights: np.ndarray,
    delta_t_k: float = 0.0,
) -> float:
    """One dot product exactly as the seed simulator computed it: a fresh
    object pair (2·n ring objects) constructed, programmed and attacked per
    call."""
    from repro.photonics.legacy import ObjectMRBankPair
    from repro.photonics.thermal_sensitivity import ThermalSensitivity

    pair = ObjectMRBankPair(grid.num_channels, grid=grid, q_factor=q_factor)
    pair.program(inputs, weights)
    if delta_t_k > 0:
        pair.weight_bank.apply_thermal_attack(delta_t_k, ThermalSensitivity())
    return pair.dot_product()


def _bench_matvec(size: int, repeats: int, seed: int) -> dict:
    from repro.accelerator.signal_sim import SignalLevelSimulator

    rng = np.random.default_rng(seed)
    matrix = rng.random((size, size))
    vector = rng.random(size)

    sim_array = SignalLevelSimulator(size)
    sim_object = SignalLevelSimulator(size, backend="object")
    grid = sim_array.grid
    q_factor = sim_array.q_factor

    def seed_matvec() -> np.ndarray:
        return np.array([
            _seed_dot(grid, q_factor, vector, matrix[row]) for row in range(size)
        ])

    sim_array.matvec(matrix, vector)  # warm the persistent pair stack
    seed_s, seed_out = _time(seed_matvec, repeats)
    reuse_s, reuse_out = _time(lambda: sim_object.matvec(matrix, vector), repeats)
    array_s, array_out = _time(lambda: sim_array.matvec(matrix, vector), repeats)
    return {
        "size": size,
        "seed_s": seed_s,
        "object_reuse_s": reuse_s,
        "array_s": array_s,
        "speedup_array_vs_seed": seed_s / array_s,
        "speedup_array_vs_object_reuse": reuse_s / array_s,
        "max_abs_diff_vs_seed": float(
            max(
                np.max(np.abs(np.asarray(array_out) - seed_out)),
                np.max(np.abs(np.asarray(reuse_out) - seed_out)),
            )
        ),
    }


def _bench_monte_carlo(size: int, trials: int, repeats: int, seed: int) -> dict:
    from repro.accelerator.signal_sim import SignalLevelSimulator

    rng = np.random.default_rng(seed)
    inputs = rng.random(size)
    weights = rng.random(size)
    deltas = rng.uniform(0.0, 30.0, trials)

    sim_array = SignalLevelSimulator(size)
    grid = sim_array.grid
    q_factor = sim_array.q_factor

    def seed_sweep() -> np.ndarray:
        return np.array([
            _seed_dot(grid, q_factor, inputs, weights, delta_t_k=delta)
            for delta in deltas
        ])

    sim_array.monte_carlo(inputs, weights, delta_t_k=deltas[: min(8, trials)])  # warm
    seed_s, seed_out = _time(seed_sweep, repeats)
    array_s, array_out = _time(
        lambda: sim_array.monte_carlo(inputs, weights, delta_t_k=deltas), repeats
    )
    return {
        "size": size,
        "trials": trials,
        "seed_s": seed_s,
        "array_s": array_s,
        "speedup_array_vs_seed": seed_s / array_s,
        "max_abs_diff_vs_seed": float(np.max(np.abs(np.asarray(array_out) - seed_out))),
    }


def run_signal_core_bench(
    matvec_size: int = 64,
    mc_size: int = 64,
    mc_trials: int = 1000,
    repeats: int = 3,
    seed: int = 0,
    output: str | Path | None = None,
) -> dict:
    """Run both benchmark sections and optionally write the JSON record."""
    results = {
        "benchmark": "signal_core",
        "version": __version__,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "matvec": _bench_matvec(matvec_size, repeats, seed),
        "monte_carlo": _bench_monte_carlo(mc_size, mc_trials, repeats, seed),
    }
    results["equivalent_within_tol"] = bool(
        results["matvec"]["max_abs_diff_vs_seed"] <= EQUIVALENCE_TOL
        and results["monte_carlo"]["max_abs_diff_vs_seed"] <= EQUIVALENCE_TOL
    )
    if output is not None:
        Path(output).write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
    return results


def format_bench_report(results: dict) -> str:
    """Human-readable summary of a :func:`run_signal_core_bench` result."""
    matvec = results["matvec"]
    mc = results["monte_carlo"]
    lines = [
        f"signal-core benchmark (repro {results['version']}, "
        f"python {results['python']}, numpy {results['numpy']})",
        "",
        f"matvec {matvec['size']}x{matvec['size']}:",
        f"  seed object path      {matvec['seed_s'] * 1e3:9.2f} ms",
        f"  object path (reused)  {matvec['object_reuse_s'] * 1e3:9.2f} ms",
        f"  array-core            {matvec['array_s'] * 1e3:9.2f} ms"
        f"   ({matvec['speedup_array_vs_seed']:.1f}x vs seed)",
        f"  max |diff| vs seed    {matvec['max_abs_diff_vs_seed']:.2e}",
        "",
        f"thermal Monte-Carlo ({mc['trials']} trials, {mc['size']} rings):",
        f"  seed object path      {mc['seed_s'] * 1e3:9.2f} ms",
        f"  array-core            {mc['array_s'] * 1e3:9.2f} ms"
        f"   ({mc['speedup_array_vs_seed']:.1f}x vs seed)",
        f"  max |diff| vs seed    {mc['max_abs_diff_vs_seed']:.2e}",
        "",
        f"paths agree within {EQUIVALENCE_TOL:g}: {results['equivalent_within_tol']}",
    ]
    return "\n".join(lines)
