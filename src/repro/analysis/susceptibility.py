"""Susceptibility analysis (paper §IV, Fig. 7).

For every workload the study trains the baseline model, deploys it on the
accelerator, samples the attack grid (the paper's actuation + hotspot kinds
by default — any registered attack kind is a valid axis value — at 1/5/10%
intensity, CONV / FC / CONV+FC targets, several random placements) and
records the attacked inference accuracy of every scenario.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.accelerator.config import AcceleratorConfig
from repro.accelerator.inference import AttackedInferenceEngine
from repro.attacks.base import BLOCKS, PAPER_KINDS
from repro.attacks.hotspot import HotspotAttackConfig
from repro.attacks.scenario import (
    DEFAULT_FRACTIONS,
    AttackScenario,
    generate_scenarios,
    sample_outcome,
)
from repro.datasets.base import DatasetSplit, train_test_split
from repro.datasets.registry import load_dataset
from repro.nn.backend import use_backend
from repro.nn.models.registry import MODEL_DATASETS, build_model
from repro.nn.module import Module
from repro.nn.training import Trainer, TrainingConfig
from repro.utils.validation import check_positive_int

__all__ = ["SusceptibilityConfig", "ScenarioAccuracy", "SusceptibilityResult",
           "SusceptibilityStudy"]

#: Per-workload defaults for dataset synthesis and training, sized for CPU runs.
_WORKLOAD_DEFAULTS: dict[str, dict[str, object]] = {
    "cnn_mnist": {
        "num_samples": 700,
        "dataset_kwargs": {},
        "model_kwargs": {},
        "training": dict(epochs=4, batch_size=32, lr=2e-3),
    },
    "resnet18": {
        "num_samples": 400,
        "dataset_kwargs": {},
        "model_kwargs": {},
        "training": dict(epochs=3, batch_size=32, lr=2e-3),
    },
    "vgg16_variant": {
        "num_samples": 450,
        "dataset_kwargs": {"image_size": 48},
        "model_kwargs": {"image_size": 48},
        "training": dict(epochs=4, batch_size=32, lr=2e-3),
    },
}


@dataclass
class SusceptibilityConfig:
    """Configuration of the Fig. 7 study.

    Attributes
    ----------
    model_names:
        Workloads to evaluate (default: all three Table I models).
    kinds, blocks, fractions:
        Attack grid axes; ``kinds`` accepts any registered attack kind
        (default: the paper's actuation + hotspot pair).
    num_placements:
        Random trojan placements per grid point (the paper uses 10).
    seed:
        Master seed controlling datasets, training and placements.
    accelerator:
        Accelerator configuration (defaults to the scaled CrossLight config).
    quantize_weights:
        Apply DAC-resolution quantization when mapping weights.
    test_fraction:
        Fraction of each synthetic dataset held out for accuracy measurement.
    scenario_batch:
        Evaluate all placed scenarios of a workload through the stacked
        ensemble forward (:meth:`AttackedInferenceEngine.accuracy_under_attacks`)
        instead of one full test-set pass per scenario.  The per-scenario
        path remains available as the reference the batch path is
        property-tested against.
    scenario_chunk:
        Scenarios per stacked forward pass (``None``: memory-aware auto).
    kind_params:
        Per-kind physical parameters (kind name → params dataclass or
        mapping of overrides) for non-default grid kinds, forwarded to
        :func:`~repro.attacks.scenario.sample_outcome`.
    backend, nn_threads:
        Compute backend (:mod:`repro.nn.backend`) the study's training and
        attacked-inference kernels dispatch to, and its thread count.  The
        empty defaults inherit the ambient selection (``REPRO_NN_BACKEND`` /
        ``REPRO_NN_THREADS`` or ``reference``).
    """

    model_names: Sequence[str] = ("cnn_mnist", "resnet18", "vgg16_variant")
    kinds: Sequence[str] = PAPER_KINDS
    blocks: Sequence[str] = BLOCKS
    fractions: Sequence[float] = DEFAULT_FRACTIONS
    num_placements: int = 10
    seed: int = 0
    accelerator: AcceleratorConfig = field(default_factory=AcceleratorConfig.scaled_config)
    hotspot: HotspotAttackConfig = field(default_factory=HotspotAttackConfig)
    kind_params: dict | None = None
    quantize_weights: bool = True
    test_fraction: float = 0.25
    scenario_batch: bool = True
    scenario_chunk: int | None = None
    backend: str = ""
    nn_threads: int = 0

    def __post_init__(self) -> None:
        check_positive_int(self.num_placements, "num_placements")

    @classmethod
    def quick(cls, **overrides) -> "SusceptibilityConfig":
        """A reduced grid suitable for tests and benchmark runs."""
        defaults = dict(
            model_names=("cnn_mnist",),
            num_placements=2,
            fractions=(0.01, 0.10),
            blocks=("both",),
        )
        defaults.update(overrides)
        return cls(**defaults)


@dataclass(frozen=True)
class ScenarioAccuracy:
    """Attacked accuracy of one workload under one placed attack scenario."""

    model: str
    kind: str
    block: str
    fraction: float
    placement: int
    accuracy: float
    corrupted_fraction: float

    def key(self) -> tuple[str, str, str, float]:
        return (self.model, self.kind, self.block, self.fraction)


@dataclass
class SusceptibilityResult:
    """All scenario accuracies plus per-model baselines."""

    config: SusceptibilityConfig
    baselines: dict[str, float] = field(default_factory=dict)
    scenarios: list[ScenarioAccuracy] = field(default_factory=list)

    def accuracies_for(
        self, model: str, kind: str | None = None, block: str | None = None,
        fraction: float | None = None,
    ) -> np.ndarray:
        """Accuracies of the scenarios matching the given filters."""
        values = [
            s.accuracy
            for s in self.scenarios
            if s.model == model
            and (kind is None or s.kind == kind)
            and (block is None or s.block == block)
            and (fraction is None or np.isclose(s.fraction, fraction))
        ]
        return np.asarray(values, dtype=float)

    def worst_case_drop(self, model: str, kind: str | None = None) -> float:
        """Largest accuracy drop observed for a model (optionally per kind)."""
        accuracies = self.accuracies_for(model, kind=kind)
        if accuracies.size == 0:
            return 0.0
        return float(self.baselines[model] - accuracies.min())

    def series_for_figure(self, model: str) -> dict[str, list[float]]:
        """Fig. 7-style series: one list of accuracies per (kind, block, fraction)."""
        series: dict[str, list[float]] = {}
        for scenario in self.scenarios:
            if scenario.model != model:
                continue
            label = f"{scenario.kind}-{scenario.block}-{round(scenario.fraction * 100)}%"
            series.setdefault(label, []).append(scenario.accuracy)
        return series


class SusceptibilityStudy:
    """Runs the Fig. 7 susceptibility analysis."""

    def __init__(self, config: SusceptibilityConfig | None = None):
        self.config = config or SusceptibilityConfig()

    def _backend_context(self):
        """Context applying the config's compute-backend selection."""
        return use_backend(
            self.config.backend or None, int(self.config.nn_threads) or None
        )

    # ------------------------------------------------------------ workloads
    def prepare_workload(self, model_name: str) -> tuple[Module, DatasetSplit]:
        """Synthesize the dataset and train the baseline model for a workload."""
        with self._backend_context():
            return self._prepare_workload(model_name)

    def _prepare_workload(self, model_name: str) -> tuple[Module, DatasetSplit]:
        defaults = _WORKLOAD_DEFAULTS[model_name]
        dataset = load_dataset(
            MODEL_DATASETS[model_name],
            num_samples=int(defaults["num_samples"]),
            seed=self.config.seed,
            **dict(defaults["dataset_kwargs"]),
        )
        split = train_test_split(dataset, self.config.test_fraction, seed=self.config.seed + 1)
        model = build_model(
            model_name, profile="scaled", rng=self.config.seed, **dict(defaults["model_kwargs"])
        )
        training = TrainingConfig(seed=self.config.seed, **dict(defaults["training"]))
        Trainer(model, training).fit(split.train)
        return model, split

    # ------------------------------------------------------------------ run
    def run(self, prepared: dict[str, tuple[Module, DatasetSplit]] | None = None) -> SusceptibilityResult:
        """Run the full study.

        ``prepared`` may supply already-trained ``(model, split)`` pairs per
        workload (used by the mitigation study to avoid re-training).
        """
        with self._backend_context():
            return self._run(prepared)

    def _run(self, prepared: dict[str, tuple[Module, DatasetSplit]] | None) -> SusceptibilityResult:
        result = SusceptibilityResult(config=self.config)
        scenarios = generate_scenarios(
            kinds=self.config.kinds,
            blocks=self.config.blocks,
            fractions=self.config.fractions,
            num_placements=self.config.num_placements,
            master_seed=self.config.seed,
        )
        for model_name in self.config.model_names:
            if prepared and model_name in prepared:
                model, split = prepared[model_name]
            else:
                model, split = self._prepare_workload(model_name)
            engine = AttackedInferenceEngine(
                model,
                config=self.config.accelerator,
                quantize_weights=self.config.quantize_weights,
                scenario_chunk=self.config.scenario_chunk,
            )
            result.baselines[model_name] = engine.clean_accuracy(split.test)
            result.scenarios.extend(
                self._evaluate_scenarios(model_name, engine, split, scenarios)
            )
        return result

    def _evaluate_scenarios(
        self,
        model_name: str,
        engine: AttackedInferenceEngine,
        split: DatasetSplit,
        scenarios: Sequence[AttackScenario],
    ) -> list[ScenarioAccuracy]:
        """Evaluate every placed scenario of one workload.

        The default scenario-batch backend samples all outcomes up front and
        runs them through stacked ensemble forwards; the per-scenario
        fallback (``scenario_batch=False``) evaluates them one by one via the
        reference path.
        """
        outcomes = [
            sample_outcome(
                scenario,
                self.config.accelerator,
                self.config.hotspot,
                kind_params=self.config.kind_params,
            )
            for scenario in scenarios
        ]
        if self.config.scenario_batch:
            accuracies = engine.accuracy_under_attacks(split.test, outcomes)
            corrupted = engine.weight_corruption_fractions(outcomes)
        else:
            accuracies = [
                engine.accuracy_under_attack(split.test, outcome) for outcome in outcomes
            ]
            corrupted = [engine.weight_corruption_fraction(outcome) for outcome in outcomes]
        return [
            ScenarioAccuracy(
                model=model_name,
                kind=scenario.spec.kind,
                block=scenario.spec.target_block,
                fraction=scenario.spec.fraction,
                placement=scenario.placement,
                accuracy=float(accuracy),
                corrupted_fraction=float(fraction),
            )
            for scenario, accuracy, fraction in zip(scenarios, accuracies, corrupted)
        ]
