"""Fast vs reference compute-backend benchmark.

Compares the two registered compute backends (:mod:`repro.nn.backend`) on
the workloads where the backend choice matters:

* per-model **inference agreement + timing** — the plain forward and a
  stacked multi-scenario ensemble forward of each workload model, fast vs
  reference, with the maximum logits disagreement recorded;
* the **stacked variant-grid training benchmark** — the headline number:
  one :func:`~repro.mitigation.robust_training.train_variant_grid_stacked`
  pass over the mitigation grid under each backend, with the speedup and the
  final-weight / baseline-accuracy disagreement.

The reference backend *is* the historical code path (bit-identical by
construction); the fast backend is tolerance-tested, not bit-exact — its
workspace reuse and fused reductions may reorder float operations — so the
agreement checks use explicit tolerances and the combined verdict lands in
``equivalent_within_tol``.  The wall-clock numbers are a non-gating
perf-trajectory artefact (``BENCH_backends.json``); the tolerance checks are
what CI fails loudly on.

Threaded speedups are hardware-bound: on a single-core box the fast
backend's thread pool cannot help and the two backends converge to the cost
of their shared BLAS calls, so ``cpu_count`` is recorded next to every
timing.
"""

from __future__ import annotations

import json
import os
import platform
from pathlib import Path
from time import perf_counter

import numpy as np

from repro.version import __version__

__all__ = [
    "run_backends_bench",
    "format_backends_bench_report",
    "FORWARD_TOL",
    "WEIGHT_TOL",
    "ACCURACY_TOL",
]

#: Max |logits| disagreement allowed between backends on a forward pass.
FORWARD_TOL = 1e-4
#: Max |weight| disagreement after a full stacked variant-grid training run.
WEIGHT_TOL = 5e-4
#: Max baseline-accuracy disagreement after a full training run.
ACCURACY_TOL = 0.02

#: Scenario count of the stacked ensemble-forward comparison.
_STACKED_SCENARIOS = 6

#: Per-workload sizing for the inference comparison, kept small enough that
#: the three-model sweep stays a CI-friendly artefact.
_MODEL_DEFAULTS: dict[str, dict[str, object]] = {
    "cnn_mnist": {
        "num_samples": 128,
        "dataset_kwargs": {},
        "model_kwargs": {},
    },
    "resnet18": {
        "num_samples": 96,
        "dataset_kwargs": {},
        "model_kwargs": {},
    },
    "vgg16_variant": {
        "num_samples": 96,
        "dataset_kwargs": {"image_size": 48},
        "model_kwargs": {"image_size": 48},
    },
}


def run_backends_bench(
    models: tuple[str, ...] = ("cnn_mnist", "resnet18", "vgg16_variant"),
    threads: int | None = None,
    train_model: str = "cnn_mnist",
    train_samples: int = 256,
    epochs: int = 2,
    num_variants: int | None = None,
    repeats: int = 2,
    seed: int = 0,
    output: str | Path | None = None,
) -> dict:
    """Run the backend comparison and optionally write it as JSON.

    ``threads`` sizes the fast backend's pool (``None``: ``REPRO_NN_THREADS``
    or all cores); the reference backend ignores it.  ``num_variants``
    truncates the default 11-variant grid of the training section.
    """
    from repro.nn import _numba_kernels
    from repro.nn.backend import resolve_threads

    resolved_threads = resolve_threads(threads)
    results: dict = {
        "benchmark": "backends",
        "version": __version__,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "cpu_count": os.cpu_count(),
        "threads": resolved_threads,
        "numba": bool(_numba_kernels.NUMBA_AVAILABLE),
        "tolerances": {
            "forward": FORWARD_TOL,
            "weight": WEIGHT_TOL,
            "accuracy": ACCURACY_TOL,
        },
        "models": {},
    }
    for model in models:
        results["models"][model] = _inference_section(model, threads, repeats, seed)
    results["training"] = _training_section(
        train_model, threads, train_samples, epochs, num_variants, repeats, seed
    )
    results["speedup"] = results["training"]["speedup_fast_vs_reference"]
    results["equivalent_within_tol"] = bool(
        results["training"]["equivalent_within_tol"]
        and all(
            section["equivalent_within_tol"]
            for section in results["models"].values()
        )
    )
    if output is not None:
        Path(output).write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
    return results


def _first_batch(model_name: str, seed: int) -> np.ndarray:
    """One deterministic evaluation batch of the workload's dataset."""
    from repro.datasets.base import DataLoader
    from repro.datasets.registry import load_dataset
    from repro.nn.models.registry import MODEL_DATASETS

    defaults = _MODEL_DEFAULTS[model_name]
    dataset = load_dataset(
        MODEL_DATASETS[model_name],
        num_samples=int(defaults["num_samples"]),
        seed=seed,
        **dict(defaults["dataset_kwargs"]),
    )
    loader = DataLoader(dataset, batch_size=64, shuffle=False)
    images, _ = next(iter(loader))
    return images


def _perturbed_stack(state: dict[str, np.ndarray], scenarios: int) -> dict:
    """A deterministic ``name -> (S, *shape)`` stack of perturbed weights."""
    from repro.nn.ensemble import stack_state_dicts

    states = [
        {
            name: (value * (1.0 + 0.003 * s)).astype(value.dtype, copy=False)
            for name, value in state.items()
        }
        for s in range(scenarios)
    ]
    return stack_state_dicts(states)


def _inference_section(
    model_name: str, threads: int | None, repeats: int, seed: int
) -> dict:
    """Plain + stacked forward agreement and timing for one workload."""
    from repro.nn.backend import get_backend, use_backend
    from repro.nn.ensemble import stacked_state
    from repro.nn.models.registry import build_model

    defaults = _MODEL_DEFAULTS[model_name]
    images = _first_batch(model_name, seed)
    model = build_model(
        model_name, profile="scaled", rng=seed, **dict(defaults["model_kwargs"])
    )
    model.eval()
    stacked = _perturbed_stack(model.state_dict(), _STACKED_SCENARIOS)
    timings: dict[str, dict[str, float]] = {}
    logits: dict[str, dict[str, np.ndarray]] = {}
    for backend in ("reference", "fast"):
        with use_backend(backend, threads):
            plain_s = float("inf")
            stacked_s = float("inf")
            for _ in range(max(repeats, 1)):
                start = perf_counter()
                plain = model(images)
                plain_s = min(plain_s, perf_counter() - start)
                with stacked_state(model, stacked):
                    start = perf_counter()
                    ensemble = model(images)
                    stacked_s = min(stacked_s, perf_counter() - start)
            get_backend(backend).release_workspaces()
        timings[backend] = {"forward_s": plain_s, "stacked_forward_s": stacked_s}
        logits[backend] = {"plain": plain, "stacked": ensemble}
    forward_diff = float(
        np.max(np.abs(logits["fast"]["plain"] - logits["reference"]["plain"]))
    )
    stacked_diff = float(
        np.max(np.abs(logits["fast"]["stacked"] - logits["reference"]["stacked"]))
    )
    return {
        "batch": int(images.shape[0]),
        "stacked_scenarios": _STACKED_SCENARIOS,
        "reference": timings["reference"],
        "fast": timings["fast"],
        "speedup_forward": timings["reference"]["forward_s"]
        / timings["fast"]["forward_s"],
        "speedup_stacked_forward": timings["reference"]["stacked_forward_s"]
        / timings["fast"]["stacked_forward_s"],
        "max_abs_logits_diff": forward_diff,
        "max_abs_stacked_logits_diff": stacked_diff,
        "equivalent_within_tol": bool(
            forward_diff <= FORWARD_TOL and stacked_diff <= FORWARD_TOL
        ),
    }


def _training_section(
    model: str,
    threads: int | None,
    num_samples: int,
    epochs: int,
    num_variants: int | None,
    repeats: int,
    seed: int,
) -> dict:
    """Stacked variant-grid training under each backend: speedup + agreement."""
    from repro.datasets.base import train_test_split
    from repro.datasets.registry import load_dataset
    from repro.mitigation.robust_training import (
        default_variant_grid,
        train_variant_grid_stacked,
    )
    from repro.nn.backend import get_backend, use_backend
    from repro.nn.models.registry import MODEL_DATASETS
    from repro.nn.training import TrainingConfig

    dataset = load_dataset(MODEL_DATASETS[model], num_samples=num_samples, seed=seed)
    split = train_test_split(dataset, 0.25, seed=seed + 1)
    config = TrainingConfig(epochs=epochs, batch_size=32, lr=2e-3, seed=seed)
    variants = default_variant_grid()
    if num_variants is not None:
        variants = variants[:num_variants]

    timings: dict[str, float] = {}
    trained: dict[str, list] = {}
    for backend in ("reference", "fast"):
        best = float("inf")
        for _ in range(max(repeats, 1)):
            with use_backend(backend, threads):
                start = perf_counter()
                grid = train_variant_grid_stacked(
                    model, split, config, variants=variants
                )
                best = min(best, perf_counter() - start)
            get_backend(backend).release_workspaces()
        timings[backend] = best
        trained[backend] = grid

    accuracy_diff = max(
        abs(a.baseline_accuracy - b.baseline_accuracy)
        for a, b in zip(trained["reference"], trained["fast"])
    )
    weight_diff = 0.0
    for a, b in zip(trained["reference"], trained["fast"]):
        state_a, state_b = a.model.full_state_dict(), b.model.full_state_dict()
        weight_diff = max(
            weight_diff,
            max(float(np.max(np.abs(state_a[k] - state_b[k]))) for k in state_a),
        )
    return {
        "model": model,
        "num_variants": len(variants),
        "train_samples": len(split.train),
        "epochs": epochs,
        "reference_s": timings["reference"],
        "fast_s": timings["fast"],
        "speedup_fast_vs_reference": timings["reference"] / timings["fast"],
        "max_abs_accuracy_diff": float(accuracy_diff),
        "max_abs_weight_diff": float(weight_diff),
        "equivalent_within_tol": bool(
            accuracy_diff <= ACCURACY_TOL and weight_diff <= WEIGHT_TOL
        ),
    }


def format_backends_bench_report(results: dict) -> str:
    """Human-readable summary of a :func:`run_backends_bench` result."""
    lines = [
        f"compute-backend benchmark (repro {results['version']}, "
        f"python {results['python']}, numpy {results['numpy']}, "
        f"{results['cpu_count']} cores, {results['threads']} threads, "
        f"numba {'on' if results['numba'] else 'off'})",
        "",
    ]
    for model, section in results["models"].items():
        lines += [
            f"{model} (batch {section['batch']}, "
            f"{section['stacked_scenarios']} stacked scenarios):",
            f"  forward          ref {section['reference']['forward_s'] * 1e3:8.1f} ms"
            f"   fast {section['fast']['forward_s'] * 1e3:8.1f} ms"
            f"   ({section['speedup_forward']:.2f}x)",
            f"  stacked forward  ref {section['reference']['stacked_forward_s'] * 1e3:8.1f} ms"
            f"   fast {section['fast']['stacked_forward_s'] * 1e3:8.1f} ms"
            f"   ({section['speedup_stacked_forward']:.2f}x)",
            f"  max |logits diff| {section['max_abs_logits_diff']:.2e} plain, "
            f"{section['max_abs_stacked_logits_diff']:.2e} stacked "
            f"(tol {results['tolerances']['forward']:.0e}, "
            f"ok: {section['equivalent_within_tol']})",
            "",
        ]
    training = results["training"]
    lines += [
        f"stacked variant-grid training ({training['model']}, "
        f"{training['num_variants']} variants, {training['train_samples']} "
        f"train samples, {training['epochs']} epochs):",
        f"  reference backend  {training['reference_s']:8.2f} s",
        f"  fast backend       {training['fast_s']:8.2f} s"
        f"   ({training['speedup_fast_vs_reference']:.2f}x)",
        f"  max |accuracy diff|   {training['max_abs_accuracy_diff']:.2e}"
        f"  (tol {results['tolerances']['accuracy']:.0e})",
        f"  max |weight diff|     {training['max_abs_weight_diff']:.2e}"
        f"  (tol {results['tolerances']['weight']:.0e})",
        "",
        f"headline speedup (fast vs reference): {results['speedup']:.2f}x",
        f"equivalent within tolerance: {results['equivalent_within_tol']}",
    ]
    return "\n".join(lines)
