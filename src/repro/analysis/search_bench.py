"""Attack-search benchmark: throughput and searched-front vs fixed-grid quality.

Two sections:

* ``throughput`` — the same cache-less search run through the stacked
  in-process evaluator and the serial campaign executor.  Records best-of
  candidates/sec for both paths, the batched speedup, and checks the two
  trajectories are byte-identical (the backends must be interchangeable).
* per-kind ``grid`` vs ``optimizers`` — the paper's fixed Cartesian grid
  (``fig7_grid``-style fractions x placements with the kind's *default*
  physical parameters) evaluated through the same candidate machinery, then
  every optimizer run at **exactly the grid's scenario-evaluation budget**.
  Each optimizer's Pareto front over stealth (attacked MRs) vs. damage
  (accuracy drop) is compared against the grid's points with
  :func:`~repro.attacks.search.pareto.front_dominates` — the acceptance
  claim is that searching the bounded parameter space beats enumerating the
  fixed grid at equal cost (``any_dominates_grid``).

:func:`run_attack_search_bench` returns the result dictionary and optionally
writes it as JSON (``BENCH_search.json``), which the CI workflow records as a
non-gating artefact while failing loudly if the backend-equivalence check is
violated.
"""

from __future__ import annotations

import json
import platform
from pathlib import Path
from time import perf_counter
from typing import Sequence

import numpy as np

from repro.version import __version__

__all__ = ["run_attack_search_bench", "format_search_bench_report"]

#: The fixed-grid reference: fig7_grid's fraction axis with default params.
GRID_FRACTIONS = (0.01, 0.05, 0.10)

#: Placements per fixed-grid point (each costs one scenario evaluation).
GRID_PLACEMENTS = 8


def _search_config(kind: str, optimizer: str, budget: int, seed: int, **overrides):
    from repro.attacks.search import AttackSearchConfig

    defaults = dict(
        kind=kind,
        optimizer=optimizer,
        budget=budget,
        generation_size=8,
        placements=1,
        seed=seed,
    )
    defaults.update(overrides)
    return AttackSearchConfig(**defaults)


def _grid_reference(model: str, kind: str, seed: int) -> dict:
    """Evaluate the fixed Cartesian grid through the candidate machinery.

    One point per fraction, the kind's default physical parameters,
    ``GRID_PLACEMENTS`` placements each — identical placement seeding and
    stacked evaluation as search candidates, so the objectives are directly
    comparable.
    """
    from repro.analysis.experiments import candidate_payloads_batched
    from repro.attacks.search.pareto import ParetoPoint, front_payload, pareto_front

    from repro.analysis.experiments import get_experiment

    descriptor = get_experiment("fig7_candidate")
    param_sets = []
    for fraction in GRID_FRACTIONS:
        params = descriptor.resolve_params(
            {
                "model": model,
                "kind": kind,
                "fraction": fraction,
                "attack_params": {},
                "placements": GRID_PLACEMENTS,
            }
        )
        params.pop("seed", None)
        param_sets.append(params)
    start = perf_counter()
    payloads = candidate_payloads_batched(param_sets, seed=seed)
    duration = perf_counter() - start
    points = [
        ParetoPoint(
            stealth=int(payload["num_attacked_mrs"]),
            damage=float(payload["drop_mean"]),
            label=f"{kind}[fraction={fraction}]x{GRID_PLACEMENTS}",
        )
        for fraction, payload in zip(GRID_FRACTIONS, payloads)
    ]
    return {
        "fractions": list(GRID_FRACTIONS),
        "placements": GRID_PLACEMENTS,
        "budget": len(GRID_FRACTIONS) * GRID_PLACEMENTS,
        "points": front_payload(points),
        "front": pareto_front(points),
        "duration_s": duration,
    }


def _run_search(model: str, kind: str, optimizer: str, budget: int, seed: int,
                workers=None, **overrides):
    from repro.attacks.search import AttackSearch

    config = _search_config(
        kind, optimizer, budget, seed, model=model, **overrides
    )
    return AttackSearch(config, cache=None, workers=workers).run()


def _throughput_section(model: str, kind: str, seed: int, repeats: int = 3) -> dict:
    """Cache-less batched vs serial-campaign evaluation of the same search.

    Searches the FC block, where stacked evaluation shares the convolutional
    trunk across a generation's scenarios — the structural win the batched
    evaluator inherits from the scenario-batch subsystem.  Best-of-``repeats``
    wall times; the two trajectories must be byte-identical.
    """
    from repro.analysis.experiments import prepared_candidate_workload

    prepared_candidate_workload(model, "", seed)  # warm: time evaluation, not training
    budget = 32
    common = dict(generation_size=16, placements=1, block="fc")
    batched = serial = None
    batched_s = serial_s = float("inf")
    for _ in range(max(repeats, 1)):
        batched = _run_search(model, kind, "random", budget, seed, **common)
        batched_s = min(batched_s, batched.duration_s)
        serial = _run_search(
            model, kind, "random", budget, seed, workers="serial", **common
        )
        serial_s = min(serial_s, serial.duration_s)
    return {
        "kind": kind,
        "block": "fc",
        "budget": budget,
        "candidates": len(batched.candidates),
        "batched_s": batched_s,
        "serial_s": serial_s,
        "batched_candidates_per_s": len(batched.candidates) / batched_s,
        "serial_candidates_per_s": len(serial.candidates) / serial_s,
        "speedup_batched_vs_serial": serial_s / batched_s,
        "trajectories_identical": (
            batched.trajectory_json() == serial.trajectory_json()
        ),
    }


def run_attack_search_bench(
    model: str = "cnn_mnist",
    kinds: Sequence[str] = ("laser_power", "hotspot"),
    optimizers: Sequence[str] = ("random", "evolutionary", "halving"),
    seed: int = 0,
    output: str | Path | None = None,
) -> dict:
    """Run both sections and optionally write the JSON record.

    For every kind, each optimizer gets exactly the fixed grid's evaluation
    budget (``len(GRID_FRACTIONS) * GRID_PLACEMENTS`` scenario evaluations);
    ``any_dominates_grid`` records whether at least one searched front
    Pareto-dominates the grid for at least one kind.
    """
    from repro.attacks.search.pareto import front_dominates

    throughput = _throughput_section(model, kinds[0], seed)
    kind_sections: dict[str, dict] = {}
    for kind in kinds:
        grid = _grid_reference(model, kind, seed)
        optimizer_sections: dict[str, dict] = {}
        for optimizer in optimizers:
            start = perf_counter()
            result = _run_search(model, kind, optimizer, grid["budget"], seed)
            duration = perf_counter() - start
            best = result.best
            optimizer_sections[optimizer] = {
                "evaluations": result.evaluations,
                "generations": result.generations,
                "num_candidates": len(result.candidates),
                "front": [
                    {
                        "num_attacked_mrs": int(point.stealth),
                        "accuracy_drop": float(point.damage),
                        "label": point.label,
                    }
                    for point in result.front
                ],
                "best_drop_mean": best["drop_mean"] if best else 0.0,
                "best_damage_per_mr": best["damage_per_mr"] if best else 0.0,
                "dominates_grid": front_dominates(result.front, grid["front"]),
                "duration_s": duration,
            }
        grid_section = dict(grid)
        grid_section.pop("front")
        kind_sections[kind] = {
            "grid": grid_section,
            "optimizers": optimizer_sections,
            "any_dominates_grid": any(
                section["dominates_grid"]
                for section in optimizer_sections.values()
            ),
        }
    results = {
        "benchmark": "attack_search",
        "version": __version__,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "model": model,
        "seed": seed,
        "throughput": throughput,
        "kinds": kind_sections,
        "any_dominates_grid": any(
            section["any_dominates_grid"] for section in kind_sections.values()
        ),
        "backends_equivalent": throughput["trajectories_identical"],
    }
    if output is not None:
        Path(output).write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
    return results


def format_search_bench_report(results: dict) -> str:
    """Human-readable summary of a :func:`run_attack_search_bench` result."""
    throughput = results["throughput"]
    lines = [
        f"attack-search benchmark (repro {results['version']}, "
        f"python {results['python']}, numpy {results['numpy']})",
        f"workload: {results['model']}, seed {results['seed']}",
        "",
        f"throughput ({throughput['kind']} on the "
        f"{throughput['block'].upper()} block, budget {throughput['budget']}, "
        f"no cache):",
        f"  batched evaluator     {throughput['batched_candidates_per_s']:9.2f} "
        f"candidates/s",
        f"  serial campaign       {throughput['serial_candidates_per_s']:9.2f} "
        f"candidates/s   "
        f"({throughput['speedup_batched_vs_serial']:.1f}x)",
        f"  trajectories identical: {throughput['trajectories_identical']}",
    ]
    for kind, section in results["kinds"].items():
        grid = section["grid"]
        grid_best = max(
            (point["accuracy_drop"] for point in grid["points"]), default=0.0
        )
        lines += [
            "",
            f"{kind}: fixed grid {grid['fractions']} x {grid['placements']} "
            f"placements = {grid['budget']} evaluations, "
            f"best drop {grid_best:.3f}",
        ]
        for optimizer, entry in section["optimizers"].items():
            marker = "DOMINATES grid" if entry["dominates_grid"] else "no"
            lines.append(
                f"  {optimizer:<13} front {len(entry['front'])}, best drop "
                f"{entry['best_drop_mean']:.3f}, dominates: {marker}"
            )
    lines += [
        "",
        f"any searched front dominates its fixed grid: "
        f"{results['any_dominates_grid']}",
    ]
    return "\n".join(lines)
