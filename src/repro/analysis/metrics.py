"""Accuracy metrics used throughout the evaluation."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["accuracy_drop", "accuracy_recovery", "BoxStats", "box_stats", "percent"]


def accuracy_drop(baseline: float, attacked: float) -> float:
    """Accuracy lost to the attack, in accuracy points (0..1 scale).

    Matches the paper's usage, e.g. a baseline of 0.99 and an attacked
    accuracy of 0.915 is a drop of 0.075 (reported as 7.5%).
    """
    return float(baseline - attacked)


def accuracy_recovery(
    original_attacked: float, robust_attacked: float
) -> float:
    """How much of the attack-induced drop the robust model wins back.

    The paper reports recovery as the accuracy-point difference between the
    robust model and the original model under the same attack.
    """
    return float(robust_attacked - original_attacked)


@dataclass(frozen=True)
class BoxStats:
    """Five-number summary used for the Fig. 8 box-and-whisker data."""

    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float
    mean: float

    def as_dict(self) -> dict[str, float]:
        return {
            "min": self.minimum,
            "q1": self.q1,
            "median": self.median,
            "q3": self.q3,
            "max": self.maximum,
            "mean": self.mean,
        }


def box_stats(values: np.ndarray) -> BoxStats:
    """Five-number summary (plus mean) of a sample of accuracies."""
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        raise ValueError("cannot summarize an empty sample")
    return BoxStats(
        minimum=float(values.min()),
        q1=float(np.percentile(values, 25)),
        median=float(np.median(values)),
        q3=float(np.percentile(values, 75)),
        maximum=float(values.max()),
        mean=float(values.mean()),
    )


def percent(value: float, digits: int = 2) -> str:
    """Format a 0..1 accuracy value as a percentage string."""
    return f"{100.0 * value:.{digits}f}%"
