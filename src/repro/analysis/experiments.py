"""Registry of the paper's experiments (tables, figures, ablations).

Each entry maps an experiment id (``table1``, ``fig6`` .. ``fig9``,
``ablation_mitigation``, ``ablation_tuning``) to a short description, the
modules implementing it and a quick-run callable returning a result summary
dictionary.  The benchmark suite and EXPERIMENTS.md are organised around
these ids.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

__all__ = ["ExperimentDescriptor", "EXPERIMENTS", "get_experiment"]


@dataclass(frozen=True)
class ExperimentDescriptor:
    """Metadata and quick-runner for one paper artefact."""

    experiment_id: str
    title: str
    paper_reference: str
    modules: tuple[str, ...]
    bench_target: str
    runner: Callable[[], dict]

    def run(self) -> dict:
        """Execute the quick version of the experiment."""
        return self.runner()


# --------------------------------------------------------------------------- runners
def _run_table1() -> dict:
    from repro.nn.models.table1 import table1_rows

    rows = table1_rows(include_measured=True)
    return {"rows": rows}


def _run_fig6() -> dict:
    from repro.accelerator.config import AcceleratorConfig
    from repro.thermal import Floorplan, simulate_hotspot_attack

    config = AcceleratorConfig.paper_config()
    geometry = config.conv_block
    floorplan = Floorplan(num_banks=geometry.num_banks, banks_per_row=geometry.rows)
    result = simulate_hotspot_attack(floorplan, attacked_banks=[650, 1260])
    return {
        "peak_rise_k": result.peak_rise_k,
        "attacked_banks": list(result.attacked_banks),
        "num_affected_banks": len(result.affected_banks(5.0)),
    }


def _run_fig7() -> dict:
    from repro.analysis.susceptibility import SusceptibilityConfig, SusceptibilityStudy

    study = SusceptibilityStudy(SusceptibilityConfig.quick())
    result = study.run()
    return {
        "baselines": result.baselines,
        "worst_case_drops": {
            model: result.worst_case_drop(model) for model in result.baselines
        },
    }


def _run_fig8() -> dict:
    from repro.analysis.mitigation_analysis import MitigationAnalysisConfig, MitigationStudy

    study = MitigationStudy(MitigationAnalysisConfig.quick())
    result = study.run()
    return {
        "best_variant": result.best_variant,
        "num_distributions": len(result.distributions),
    }


def _run_fig9() -> dict:
    from repro.analysis.mitigation_analysis import MitigationAnalysisConfig, MitigationStudy

    study = MitigationStudy(MitigationAnalysisConfig.quick())
    result = study.run()
    return {
        "comparison": [
            {
                "model": row.model,
                "kind": row.kind,
                "fraction": row.fraction,
                "recovery": row.recovery,
            }
            for row in result.comparison
        ]
    }


def _run_ablation_mitigation() -> dict:
    from repro.analysis.mitigation_analysis import MitigationAnalysisConfig, MitigationStudy
    from repro.mitigation.l2_regularization import L2Config
    from repro.mitigation.noise_aware import NoiseAwareConfig
    from repro.mitigation.robust_training import VariantSpec

    variants = (
        VariantSpec(name="Original"),
        VariantSpec(name="L2_reg", l2=L2Config()),
        VariantSpec(name="noise_n3", noise=NoiseAwareConfig(std=0.3)),
        VariantSpec(name="l2+n3", l2=L2Config(), noise=NoiseAwareConfig(std=0.3)),
    )
    study = MitigationStudy(MitigationAnalysisConfig.quick(variants=variants))
    result = study.run()
    medians = {
        dist.variant: float(sorted(dist.accuracies)[len(dist.accuracies) // 2])
        for dist in result.distributions
    }
    return {"median_attacked_accuracy": medians}


def _run_ablation_tuning() -> dict:
    from repro.accelerator.config import AcceleratorConfig
    from repro.accelerator.power import PowerModel

    model = PowerModel(AcceleratorConfig.paper_config())
    return {
        "shift_0.2nm": model.tuning_energy_comparison(0.2),
        "shift_2nm": model.tuning_energy_comparison(2.0),
        "total_power_w": model.report().total_w,
    }


EXPERIMENTS: dict[str, ExperimentDescriptor] = {
    "table1": ExperimentDescriptor(
        experiment_id="table1",
        title="CNN model parameter inventory",
        paper_reference="Table I",
        modules=("repro.nn.models",),
        bench_target="benchmarks/bench_table1_models.py",
        runner=_run_table1,
    ),
    "fig6": ExperimentDescriptor(
        experiment_id="fig6",
        title="Thermal hotspot heatmap on the CONV block",
        paper_reference="Fig. 6",
        modules=("repro.thermal", "repro.attacks.hotspot"),
        bench_target="benchmarks/bench_fig6_heatmap.py",
        runner=_run_fig6,
    ),
    "fig7": ExperimentDescriptor(
        experiment_id="fig7",
        title="Susceptibility of CNN models to actuation and hotspot attacks",
        paper_reference="Fig. 7(a)-(c)",
        modules=("repro.analysis.susceptibility", "repro.attacks", "repro.accelerator"),
        bench_target="benchmarks/bench_fig7_susceptibility.py",
        runner=_run_fig7,
    ),
    "fig8": ExperimentDescriptor(
        experiment_id="fig8",
        title="Accuracy distribution of mitigation variants",
        paper_reference="Fig. 8(a)-(c)",
        modules=("repro.analysis.mitigation_analysis", "repro.mitigation"),
        bench_target="benchmarks/bench_fig8_variants.py",
        runner=_run_fig8,
    ),
    "fig9": ExperimentDescriptor(
        experiment_id="fig9",
        title="Robust vs. original models under attack",
        paper_reference="Fig. 9(a)-(c)",
        modules=("repro.analysis.mitigation_analysis", "repro.mitigation.selection"),
        bench_target="benchmarks/bench_fig9_robust_vs_original.py",
        runner=_run_fig9,
    ),
    "ablation_mitigation": ExperimentDescriptor(
        experiment_id="ablation_mitigation",
        title="L2-only vs noise-only vs combined mitigation",
        paper_reference="§V discussion",
        modules=("repro.mitigation",),
        bench_target="benchmarks/bench_ablation_mitigation.py",
        runner=_run_ablation_mitigation,
    ),
    "ablation_tuning": ExperimentDescriptor(
        experiment_id="ablation_tuning",
        title="EO vs TO tuning power/latency",
        paper_reference="§II.B",
        modules=("repro.photonics.tuning", "repro.accelerator.power"),
        bench_target="benchmarks/bench_photonic_primitives.py",
        runner=_run_ablation_tuning,
    ),
}


def get_experiment(experiment_id: str) -> ExperimentDescriptor:
    """Look up an experiment by id, raising ``KeyError`` with guidance otherwise."""
    if experiment_id not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; available: {sorted(EXPERIMENTS)}"
        )
    return EXPERIMENTS[experiment_id]
