"""Registry of the paper's experiments (tables, figures, ablations).

Each entry maps an experiment id (``table1``, ``fig6`` .. ``fig9``,
``ablation_mitigation``, ``ablation_tuning``, plus the sweepable per-point
experiments ``fig7_point``, ``fig8_variant`` and ``signal_mc``) to a short
description, the
modules implementing it, and a *parameterized* runner returning a result
summary dictionary.  The benchmark suite, the campaign engine
(:mod:`repro.engine`) and EXPERIMENTS.md are organised around these ids.

Runners take keyword parameters with JSON-serializable defaults recorded in
``ExperimentDescriptor.default_params``; the engine resolves a
:class:`~repro.engine.spec.RunSpec`'s parameter overrides against those
defaults, which makes every experiment runnable (and cacheable) through
``python -m repro run/sweep``.  The per-point experiments keep a per-process
cache of trained workloads so a worker in a process pool trains each
(model, seed) combination once and then evaluates many grid points against it.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Callable, Mapping

__all__ = [
    "ExperimentDescriptor",
    "EXPERIMENTS",
    "get_experiment",
    "experiment_ids",
]


@dataclass(frozen=True)
class ExperimentDescriptor:
    """Metadata and parameterized quick-runner for one paper artefact.

    Attributes
    ----------
    experiment_id, title, paper_reference, modules, bench_target:
        Descriptive metadata tying the experiment to the paper and code.
    runner:
        Callable accepting the keyword parameters listed in
        ``default_params`` and returning a JSON-serializable summary dict.
    default_params:
        Default value for every parameter the runner accepts.  Overrides
        passed to :meth:`run` are validated against this mapping, so a typo
        in a sweep definition fails fast instead of being silently ignored.
    attack_kind_params:
        Names of the parameters (if any) that accept registered attack
        kinds — e.g. ``("kind",)`` for the sweepable per-point experiments.
        ``python -m repro attacks`` uses this to show which experiments a
        kind can be swept through.
    """

    experiment_id: str
    title: str
    paper_reference: str
    modules: tuple[str, ...]
    bench_target: str
    runner: Callable[..., dict]
    default_params: Mapping[str, object] = field(default_factory=dict)
    attack_kind_params: tuple[str, ...] = ()

    @property
    def seedable(self) -> bool:
        """Whether the experiment exposes a ``seed`` parameter."""
        return "seed" in self.default_params

    def resolve_params(
        self,
        overrides: Mapping[str, object] | None = None,
        *,
        seed: int | None = None,
    ) -> dict:
        """Merge ``overrides`` (and ``seed``) into the default parameters."""
        params = dict(self.default_params)
        overrides = dict(overrides or {})
        unknown = sorted(set(overrides) - set(params))
        if unknown:
            raise KeyError(
                f"unknown parameter(s) {unknown} for experiment "
                f"{self.experiment_id!r}; accepted: {sorted(params)}"
            )
        params.update(overrides)
        if seed is not None:
            if not self.seedable:
                raise KeyError(
                    f"experiment {self.experiment_id!r} does not take a seed"
                )
            params["seed"] = seed
        return params

    def run(
        self,
        params: Mapping[str, object] | None = None,
        *,
        seed: int | None = None,
    ) -> dict:
        """Execute the experiment with ``params`` merged over the defaults."""
        return self.runner(**self.resolve_params(params, seed=seed))


# ------------------------------------------------------------- shared caches
#: Per-process cache of prepared Fig. 7 workloads keyed by
#: ``(model_name, seed, quantize_weights)``.  A process-pool worker trains a
#: workload once and reuses it for every grid point it executes.
_FIG7_WORKLOADS: dict[tuple, tuple] = {}

#: Per-process cache of dataset splits / trained variants for ``fig8_variant``.
_FIG8_SPLITS: dict[tuple, object] = {}
_FIG8_VARIANTS: dict[tuple, object] = {}

#: Per-process cache of (engine, split, baseline) for ``fig7_candidate``
#: workloads on *mitigation variants* (the unmitigated case shares
#: ``_FIG7_WORKLOADS``).  Keyed by (model, variant, seed, quantize_weights).
_CANDIDATE_WORKLOADS: dict[tuple, tuple] = {}


def _prepared_fig7_workload(model: str, seed: int, quantize_weights: bool):
    """Return ``(engine, split, baseline_accuracy)`` for a trained workload."""
    from repro.accelerator.config import AcceleratorConfig
    from repro.accelerator.inference import AttackedInferenceEngine
    from repro.analysis.susceptibility import SusceptibilityConfig, SusceptibilityStudy

    key = (model, seed, quantize_weights)
    if key not in _FIG7_WORKLOADS:
        config = SusceptibilityConfig(
            model_names=(model,), seed=seed, quantize_weights=quantize_weights
        )
        trained, split = SusceptibilityStudy(config).prepare_workload(model)
        engine = AttackedInferenceEngine(
            trained,
            config=AcceleratorConfig.scaled_config(),
            quantize_weights=quantize_weights,
        )
        baseline = engine.clean_accuracy(split.test)
        _FIG7_WORKLOADS[key] = (engine, split, baseline)
    return _FIG7_WORKLOADS[key]


def prepared_candidate_workload(
    model: str,
    variant: str,
    seed: int,
    quantize_weights: bool = True,
    checkpoint_cache: bool = False,
):
    """Return ``(engine, split, baseline)`` for a ``fig7_candidate`` workload.

    ``variant=""`` is the unmitigated paper workload (shared with
    ``fig7_point``/``fig7_grid``); a named variant trains (or, with
    ``checkpoint_cache``, loads) the mitigation variant exactly like
    ``fig8_variant`` does, reusing its per-process split/variant caches.  The
    baseline is always the engine's *clean mapped accuracy* on the test
    split, so searched accuracy drops are measured against the same photonic
    datapath the attacks corrupt.
    """
    if not variant:
        return _prepared_fig7_workload(model, seed, quantize_weights)

    from repro.accelerator.config import AcceleratorConfig
    from repro.accelerator.inference import AttackedInferenceEngine
    from repro.analysis.mitigation_analysis import (
        _WORKLOAD_DEFAULTS,
        MitigationAnalysisConfig,
        MitigationStudy,
    )
    from repro.mitigation.robust_training import (
        load_cached_variant,
        store_variant_checkpoint,
        train_variant,
        variant_spec_from_name,
    )
    from repro.nn.training import TrainingConfig

    key = (model, variant, seed, quantize_weights)
    if key not in _CANDIDATE_WORKLOADS:
        study = MitigationStudy(
            MitigationAnalysisConfig(
                model_names=(model,), seed=seed, checkpoint_cache=checkpoint_cache
            )
        )
        split_key = (model, seed)
        if split_key not in _FIG8_SPLITS:
            _FIG8_SPLITS[split_key] = study.prepare_split(model)
        split = _FIG8_SPLITS[split_key]

        variant_key = (model, variant, seed)
        if variant_key not in _FIG8_VARIANTS:
            defaults = _WORKLOAD_DEFAULTS[model]
            base_config = TrainingConfig(seed=seed, **dict(defaults["training"]))
            spec = variant_spec_from_name(variant)
            cache = study.checkpoint_cache()
            trained = load_cached_variant(
                cache,
                study.checkpoint_key(model, spec),
                model,
                spec,
                base_config,
                model_kwargs=dict(defaults["model_kwargs"]),
            )
            if trained is None:
                trained = train_variant(
                    model,
                    spec,
                    split,
                    base_config,
                    model_kwargs=dict(defaults["model_kwargs"]),
                )
                store_variant_checkpoint(
                    cache, study.checkpoint_key(model, spec), trained
                )
            _FIG8_VARIANTS[variant_key] = trained
        trained = _FIG8_VARIANTS[variant_key]
        engine = AttackedInferenceEngine(
            trained.model,
            config=AcceleratorConfig.scaled_config(),
            quantize_weights=quantize_weights,
        )
        baseline = engine.clean_accuracy(split.test)
        _CANDIDATE_WORKLOADS[key] = (engine, split, baseline)
    return _CANDIDATE_WORKLOADS[key]


def candidate_outcomes(
    kind: str,
    block: str,
    fraction: float,
    attack_params: Mapping | None,
    placements: int,
    seed: int,
    accelerator,
) -> list:
    """Sample one candidate's placement outcomes with content-derived seeds.

    The placement seed is a pure function of the candidate's identity
    (kind, block, fraction, params, placement index) under the experiment
    seed, so any executor — the local batched evaluator, a process-pool
    worker or a federation node — samples byte-identical placements for the
    same candidate.
    """
    from repro.attacks.base import AttackSpec
    from repro.attacks.registry import create_attack
    from repro.engine.spec import canonical_json
    from repro.utils.rng import RngFactory

    spec = AttackSpec(kind=kind, target_block=block, fraction=float(fraction))
    attack = create_attack(spec, dict(attack_params or {}))
    factory = RngFactory(seed=seed)
    identity = canonical_json(
        {
            "kind": kind,
            "block": block,
            "fraction": float(fraction),
            "params": dict(attack_params or {}),
        }
    )
    return [
        attack.sample(
            accelerator, seed=factory.child_seed(f"candidate:{identity}#{placement}")
        )
        for placement in range(int(placements))
    ]


def candidate_payload(
    model: str,
    variant: str,
    kind: str,
    block: str,
    fraction: float,
    attack_params: Mapping | None,
    placements: int,
    baseline: float,
    outcomes: list,
    accuracies,
) -> dict:
    """Summary payload of one evaluated attack-search candidate."""
    values = [float(a) for a in accuracies]
    drops = [float(baseline) - a for a in values]
    num_attacked_mrs = max(
        (sum(int(n) for n in outcome.attacked_mrs.values()) for outcome in outcomes),
        default=0,
    )
    drop_mean = sum(drops) / len(drops) if drops else 0.0
    return {
        "model": model,
        "variant": variant,
        "kind": kind,
        "block": block,
        "fraction": float(fraction),
        "attack_params": dict(attack_params or {}),
        "placements": int(placements),
        "baseline": float(baseline),
        "accuracies": values,
        "drop_mean": drop_mean,
        "drop_max": max(drops) if drops else 0.0,
        "num_attacked_mrs": int(num_attacked_mrs),
        "damage_per_mr": drop_mean / max(1, num_attacked_mrs),
    }


def candidate_payloads_batched(param_sets: list, seed: int) -> list[dict]:
    """Evaluate many ``fig7_candidate`` parameter sets in stacked forwards.

    Candidates are grouped by workload (model, variant, quantization); each
    group's placement outcomes are concatenated into **one**
    :meth:`AttackedInferenceEngine.accuracy_under_attacks` call.  Because the
    batched path is bit-identical to the per-scenario serial path, the
    returned payloads match :func:`_run_fig7_candidate` byte for byte — the
    search driver exploits this to evaluate a whole optimizer generation per
    stacked forward while still writing ordinary cacheable records.
    """
    from repro.accelerator.config import AcceleratorConfig

    accelerator = AcceleratorConfig.scaled_config()
    groups: dict[tuple, list[int]] = {}
    for index, params in enumerate(param_sets):
        key = (
            params["model"],
            params["variant"],
            bool(params["quantize_weights"]),
            bool(params["checkpoint_cache"]),
        )
        groups.setdefault(key, []).append(index)

    payloads: list[dict | None] = [None] * len(param_sets)
    for (model, variant, quantize_weights, checkpoint_cache), indices in groups.items():
        engine, split, baseline = prepared_candidate_workload(
            model, variant, seed, quantize_weights, checkpoint_cache
        )
        outcomes_per_candidate = []
        stacked = []
        for index in indices:
            params = param_sets[index]
            outcomes = candidate_outcomes(
                params["kind"],
                params["block"],
                params["fraction"],
                params["attack_params"],
                params["placements"],
                seed,
                accelerator,
            )
            outcomes_per_candidate.append(outcomes)
            stacked.extend(outcomes)
        accuracies = engine.accuracy_under_attacks(split.test, stacked)
        cursor = 0
        for index, outcomes in zip(indices, outcomes_per_candidate):
            params = param_sets[index]
            chunk = accuracies[cursor : cursor + len(outcomes)]
            cursor += len(outcomes)
            payloads[index] = candidate_payload(
                params["model"],
                params["variant"],
                params["kind"],
                params["block"],
                params["fraction"],
                params["attack_params"],
                params["placements"],
                baseline,
                outcomes,
                chunk,
            )
    return [payload for payload in payloads if payload is not None]


# --------------------------------------------------------------------------- runners
def _run_table1(include_measured: bool = True) -> dict:
    from repro.nn.models.table1 import table1_rows

    rows = table1_rows(include_measured=include_measured)
    return {"rows": rows}


def _run_fig6(
    attacked_banks: tuple[int, ...] = (650, 1260),
    heater_power_mw: float = 300.0,
    affected_threshold_k: float = 5.0,
) -> dict:
    from repro.accelerator.config import AcceleratorConfig
    from repro.thermal import Floorplan, simulate_hotspot_attack

    config = AcceleratorConfig.paper_config()
    geometry = config.conv_block
    floorplan = Floorplan(num_banks=geometry.num_banks, banks_per_row=geometry.rows)
    result = simulate_hotspot_attack(
        floorplan,
        attacked_banks=list(attacked_banks),
        heater_power_mw=heater_power_mw,
    )
    return {
        "peak_rise_k": result.peak_rise_k,
        "attacked_banks": list(result.attacked_banks),
        "num_affected_banks": len(result.affected_banks(affected_threshold_k)),
    }


def _run_fig7(
    model_names: tuple[str, ...] = ("cnn_mnist",),
    kinds: tuple[str, ...] = ("actuation", "hotspot"),
    blocks: tuple[str, ...] = ("both",),
    fractions: tuple[float, ...] = (0.01, 0.10),
    num_placements: int = 2,
    kind_params: dict | None = None,
    seed: int = 0,
) -> dict:
    from repro.analysis.susceptibility import SusceptibilityConfig, SusceptibilityStudy

    config = SusceptibilityConfig(
        model_names=tuple(model_names),
        kinds=tuple(kinds),
        blocks=tuple(blocks),
        fractions=tuple(fractions),
        num_placements=num_placements,
        kind_params=kind_params,
        seed=seed,
    )
    result = SusceptibilityStudy(config).run()
    return {
        "baselines": result.baselines,
        "worst_case_drops": {
            model: result.worst_case_drop(model) for model in result.baselines
        },
    }


def _run_fig7_point(
    model: str = "cnn_mnist",
    kind: str = "hotspot",
    block: str = "both",
    fraction: float = 0.05,
    placement: int = 0,
    quantize_weights: bool = True,
    kind_params: dict | None = None,
    seed: int = 0,
) -> dict:
    """One point of the Fig. 7 susceptibility grid (engine/sweep unit of work).

    ``kind`` accepts any registered attack kind (``python -m repro attacks``
    lists them) and ``kind_params`` carries its physical parameters, e.g.
    ``--set kind_params='{"triggered": {"base": "hotspot"}}'``.  Seeds are
    derived exactly as :func:`repro.attacks.scenario.generate_scenarios`
    derives them, so a sweep over (kind, block, fraction, placement) reproduces
    the same scenarios as a monolithic :class:`SusceptibilityStudy` run.
    """
    from repro.accelerator.config import AcceleratorConfig
    from repro.attacks.base import AttackSpec
    from repro.attacks.hotspot import HotspotAttackConfig
    from repro.attacks.scenario import AttackScenario, sample_outcome
    from repro.utils.rng import RngFactory

    engine, split, baseline = _prepared_fig7_workload(model, seed, quantize_weights)
    spec = AttackSpec(kind=kind, target_block=block, fraction=fraction)
    scenario_seed = RngFactory(seed=seed).child_seed(f"{spec.label()}#{placement}")
    scenario = AttackScenario(spec=spec, placement=placement, seed=scenario_seed)
    outcome = sample_outcome(
        scenario,
        AcceleratorConfig.scaled_config(),
        HotspotAttackConfig(),
        kind_params=kind_params,
    )
    accuracy = engine.accuracy_under_attack(split.test, outcome)
    return {
        "model": model,
        "kind": kind,
        "block": block,
        "fraction": fraction,
        "placement": placement,
        "baseline": baseline,
        "accuracy": accuracy,
        "drop": baseline - accuracy,
        "corrupted_fraction": engine.weight_corruption_fraction(outcome),
    }


def _run_fig7_grid(
    model: str = "cnn_mnist",
    kinds: tuple[str, ...] = ("actuation", "hotspot"),
    blocks: tuple[str, ...] = ("both",),
    fractions: tuple[float, ...] = (0.01, 0.05, 0.10),
    num_placements: int = 3,
    backend: str = "batched",
    scenario_chunk: int = 0,
    quantize_weights: bool = True,
    kind_params: dict | None = None,
    seed: int = 0,
) -> dict:
    """A whole Fig. 7 scenario grid in stacked forward passes (sweepable).

    Where :func:`_run_fig7_point` is the one-scenario sweep unit,
    ``fig7_grid`` evaluates an entire (kinds x blocks x fractions x
    placements) grid for one workload through
    :meth:`AttackedInferenceEngine.accuracy_under_attacks`.  ``kinds``
    accepts any registered attack kinds, with per-kind physical parameters
    in ``kind_params``.  ``backend="serial"`` runs the same grid through the
    per-scenario reference path (used by the equivalence benchmark);
    ``scenario_chunk=0`` selects the memory-aware automatic chunk.
    """
    import numpy as np

    from repro.accelerator.config import AcceleratorConfig
    from repro.attacks.hotspot import HotspotAttackConfig
    from repro.attacks.scenario import generate_scenarios, sample_outcome

    if backend not in ("batched", "serial"):
        raise ValueError(f"backend must be 'batched' or 'serial', got {backend!r}")
    engine, split, baseline = _prepared_fig7_workload(model, seed, quantize_weights)
    scenarios = generate_scenarios(
        kinds=tuple(kinds),
        blocks=tuple(blocks),
        fractions=tuple(fractions),
        num_placements=num_placements,
        master_seed=seed,
    )
    config = AcceleratorConfig.scaled_config()
    hotspot = HotspotAttackConfig()
    outcomes = [
        sample_outcome(scenario, config, hotspot, kind_params=kind_params)
        for scenario in scenarios
    ]
    if backend == "batched":
        accuracies = engine.accuracy_under_attacks(
            split.test, outcomes, scenario_chunk=scenario_chunk or None
        )
    else:
        accuracies = np.array(
            [engine.accuracy_under_attack(split.test, outcome) for outcome in outcomes]
        )
    values = np.asarray(accuracies, dtype=float)
    return {
        "model": model,
        "backend": backend,
        "num_scenarios": len(scenarios),
        "baseline": baseline,
        "accuracies": {
            scenario.label(): float(accuracy)
            for scenario, accuracy in zip(scenarios, values)
        },
        "mean": float(values.mean()),
        "min": float(values.min()),
        "worst_case_drop": float(baseline - values.min()),
    }


def _run_fig7_candidate(
    model: str = "cnn_mnist",
    variant: str = "",
    kind: str = "hotspot",
    block: str = "both",
    fraction: float = 0.05,
    attack_params: dict | None = None,
    placements: int = 2,
    quantize_weights: bool = True,
    checkpoint_cache: bool = False,
    seed: int = 0,
) -> dict:
    """One attack-search candidate: a (kind, fraction, params) configuration
    averaged over random placements (engine/sweep/serve unit of work).

    This is the unit the :mod:`repro.attacks.search` optimizers dispatch —
    locally in stacked batches, through a process pool, or as sweep points on
    a ``repro serve`` federation.  ``variant=""`` attacks the unmitigated
    workload; a variant name (e.g. ``"l2+n3"``) attacks that trained
    mitigation variant.  Placement seeds are content-derived from the
    candidate identity, so every execution path samples identical placements.
    """
    from repro.accelerator.config import AcceleratorConfig

    engine, split, baseline = prepared_candidate_workload(
        model, variant, seed, quantize_weights, checkpoint_cache
    )
    outcomes = candidate_outcomes(
        kind,
        block,
        fraction,
        attack_params,
        placements,
        seed,
        AcceleratorConfig.scaled_config(),
    )
    accuracies = engine.accuracy_under_attacks(split.test, outcomes)
    return candidate_payload(
        model,
        variant,
        kind,
        block,
        fraction,
        attack_params,
        placements,
        baseline,
        outcomes,
        accuracies,
    )


def _run_fig7_adversarial(
    model: str = "cnn_mnist",
    variant: str = "",
    kind: str = "hotspot",
    block: str = "both",
    optimizer: str = "random",
    budget: int = 32,
    generation_size: int = 8,
    placements: int = 2,
    fraction_min: float = 0.005,
    fraction_max: float = 0.10,
    sigma: float = 0.2,
    mu: int = 0,
    eta: int = 2,
    quantize_weights: bool = True,
    checkpoint_cache: bool = False,
    candidate_cache: str = "",
    seed: int = 0,
) -> dict:
    """One whole black-box attack search as a sweepable experiment.

    Runs a seeded optimizer (``random``, ``evolutionary`` or ``halving``)
    against one (model, mitigation-variant, attack-kind) workload for
    ``budget`` scenario evaluations and returns the Pareto front over
    stealth (``num_attacked_mrs``) vs. accuracy drop.  Sweeping this
    experiment over kinds/variants/optimizers compares whole searches;
    ``mu=0`` lets the evolutionary strategy pick its default parent count.
    ``candidate_cache`` optionally names a result-cache directory for the
    per-candidate records (the ``repro search`` CLI wires this up
    automatically; keep it empty for hermetic payloads).
    """
    from repro.attacks.search import AttackSearch, AttackSearchConfig
    from repro.engine.cache import ResultCache

    config = AttackSearchConfig(
        kind=kind,
        model=model,
        variant=variant,
        block=block,
        optimizer=optimizer,
        budget=budget,
        generation_size=generation_size,
        placements=placements,
        fraction_range=(fraction_min, fraction_max),
        sigma=sigma,
        mu=int(mu) or None,
        eta=eta,
        quantize_weights=quantize_weights,
        checkpoint_cache=checkpoint_cache,
        seed=seed,
    )
    cache = ResultCache(candidate_cache) if candidate_cache else None
    return AttackSearch(config, cache=cache).run().to_payload()


def _run_fig8(
    model_names: tuple[str, ...] = ("cnn_mnist",),
    stacked_training: bool = True,
    checkpoint_cache: bool = False,
    seed: int = 0,
) -> dict:
    from repro.analysis.mitigation_analysis import MitigationAnalysisConfig, MitigationStudy

    study = MitigationStudy(
        MitigationAnalysisConfig.quick(
            model_names=tuple(model_names),
            stacked_training=stacked_training,
            checkpoint_cache=checkpoint_cache,
            seed=seed,
        )
    )
    result = study.run()
    return {
        "best_variant": result.best_variant,
        "num_distributions": len(result.distributions),
    }


def _run_fig8_variant(
    model: str = "cnn_mnist",
    variant: str = "l2+n3",
    kinds: tuple[str, ...] = ("actuation", "hotspot"),
    blocks: tuple[str, ...] = ("both",),
    fractions: tuple[float, ...] = (0.05, 0.10),
    num_placements: int = 2,
    kind_params: dict | None = None,
    checkpoint_cache: bool = False,
    seed: int = 0,
) -> dict:
    """Train and evaluate one mitigation variant (engine/sweep unit of work).

    The variant faces the same pre-sampled attack grid as every other variant
    with the same sweep axes, so per-variant records assembled by a campaign
    are directly comparable (as in the paper's Fig. 8 box plots).  With
    ``checkpoint_cache`` the trained model is loaded from / stored to the
    content-addressed checkpoint store — the same addresses
    :class:`MitigationStudy` uses, so ``python -m repro train`` pre-warms
    whole sweeps.
    """
    import numpy as np

    from repro.accelerator.config import AcceleratorConfig
    from repro.accelerator.inference import AttackedInferenceEngine
    from repro.analysis.mitigation_analysis import (
        _WORKLOAD_DEFAULTS,
        MitigationAnalysisConfig,
        MitigationStudy,
    )
    from repro.attacks.hotspot import HotspotAttackConfig
    from repro.attacks.scenario import generate_scenarios, sample_outcome
    from repro.mitigation.robust_training import (
        load_cached_variant,
        store_variant_checkpoint,
        train_variant,
        variant_spec_from_name,
    )
    from repro.nn.training import TrainingConfig

    study = MitigationStudy(
        MitigationAnalysisConfig(
            model_names=(model,), seed=seed, checkpoint_cache=checkpoint_cache
        )
    )
    split_key = (model, seed)
    if split_key not in _FIG8_SPLITS:
        _FIG8_SPLITS[split_key] = study.prepare_split(model)
    split = _FIG8_SPLITS[split_key]

    variant_key = (model, variant, seed)
    if variant_key not in _FIG8_VARIANTS:
        defaults = _WORKLOAD_DEFAULTS[model]
        base_config = TrainingConfig(seed=seed, **dict(defaults["training"]))
        spec = variant_spec_from_name(variant)
        cache = study.checkpoint_cache()
        trained = load_cached_variant(
            cache,
            study.checkpoint_key(model, spec),
            model,
            spec,
            base_config,
            model_kwargs=dict(defaults["model_kwargs"]),
        )
        if trained is None:
            trained = train_variant(
                model,
                spec,
                split,
                base_config,
                model_kwargs=dict(defaults["model_kwargs"]),
            )
            store_variant_checkpoint(cache, study.checkpoint_key(model, spec), trained)
        _FIG8_VARIANTS[variant_key] = trained
    trained = _FIG8_VARIANTS[variant_key]

    accelerator = AcceleratorConfig.scaled_config()
    scenarios = generate_scenarios(
        kinds=tuple(kinds),
        blocks=tuple(blocks),
        fractions=tuple(fractions),
        num_placements=num_placements,
        master_seed=seed,
    )
    engine = AttackedInferenceEngine(trained.model, config=accelerator)
    hotspot = HotspotAttackConfig()
    outcomes = [
        sample_outcome(scenario, accelerator, hotspot, kind_params=kind_params)
        for scenario in scenarios
    ]
    values = np.asarray(
        engine.accuracy_under_attacks(split.test, outcomes), dtype=float
    )
    return {
        "model": model,
        "variant": variant,
        "baseline": trained.baseline_accuracy,
        "accuracies": [float(a) for a in values],
        "median": float(np.median(values)),
        "mean": float(values.mean()),
        "min": float(values.min()),
    }


def _run_signal_mc(
    size: int = 16,
    trials: int = 200,
    kind: str = "hotspot",
    fraction: float = 0.125,
    max_delta_t_k: float = 25.0,
    seed: int = 0,
) -> dict:
    """Signal-level Monte-Carlo attack sweep on one bank pair (sweepable).

    Samples ``trials`` random attacks against a randomly programmed bank pair
    and reports the distribution of dot-product errors, all through the
    vectorized array-core (one batched evaluation, no per-trial device
    reconstruction).  ``kind="hotspot"`` draws per-trial weight-bank
    temperatures uniformly in ``[0, max_delta_t_k]``; ``kind="actuation"``
    actuates ``round(fraction * size)`` random weight rings per trial.
    """
    import numpy as np

    from repro.accelerator.signal_sim import SignalLevelSimulator
    from repro.utils.rng import RngFactory

    if kind not in ("hotspot", "actuation"):
        raise ValueError(f"kind must be 'hotspot' or 'actuation', got {kind!r}")
    factory = RngFactory(seed=seed)
    rng_operands = factory.get("signal-mc-operands")
    rng_attacks = factory.get("signal-mc-attacks")
    inputs = rng_operands.random(size)
    weights = rng_operands.random(size)
    simulator = SignalLevelSimulator(size)
    clean = simulator.dot(inputs, weights)
    if kind == "hotspot":
        deltas = rng_attacks.uniform(0.0, max_delta_t_k, size=trials)
        outputs = simulator.monte_carlo(inputs, weights, delta_t_k=deltas)
    else:
        attacked = max(1, int(round(fraction * size)))
        order = np.argsort(rng_attacks.random((trials, size)), axis=1)
        masks = np.zeros((trials, size), dtype=bool)
        np.put_along_axis(masks, order[:, :attacked], True, axis=1)
        outputs = simulator.monte_carlo(inputs, weights, actuation_masks=masks)
    errors = np.abs(outputs - clean)
    return {
        "size": size,
        "trials": trials,
        "kind": kind,
        "exact": float(inputs @ weights),
        "clean": clean,
        "mean_abs_error": float(errors.mean()),
        "max_abs_error": float(errors.max()),
        "p50_abs_error": float(np.percentile(errors, 50)),
        "p95_abs_error": float(np.percentile(errors, 95)),
        "corrupted_trials_fraction": float(np.mean(errors > 0.05)),
    }


def _run_fig9(
    model_names: tuple[str, ...] = ("cnn_mnist",),
    stacked_training: bool = True,
    checkpoint_cache: bool = False,
    seed: int = 0,
) -> dict:
    from repro.analysis.mitigation_analysis import MitigationAnalysisConfig, MitigationStudy

    study = MitigationStudy(
        MitigationAnalysisConfig.quick(
            model_names=tuple(model_names),
            stacked_training=stacked_training,
            checkpoint_cache=checkpoint_cache,
            seed=seed,
        )
    )
    result = study.run()
    return {
        "comparison": [
            {
                "model": row.model,
                "kind": row.kind,
                "fraction": row.fraction,
                "recovery": row.recovery,
            }
            for row in result.comparison
        ]
    }


def _run_ablation_mitigation(
    variants: tuple[str, ...] = ("Original", "L2_reg", "noise_n3", "l2+n3"),
    seed: int = 0,
) -> dict:
    from repro.analysis.mitigation_analysis import MitigationAnalysisConfig, MitigationStudy
    from repro.mitigation.robust_training import variant_spec_from_name

    specs = tuple(variant_spec_from_name(name) for name in variants)
    study = MitigationStudy(MitigationAnalysisConfig.quick(variants=specs, seed=seed))
    result = study.run()
    medians = {
        dist.variant: float(sorted(dist.accuracies)[len(dist.accuracies) // 2])
        for dist in result.distributions
    }
    return {"median_attacked_accuracy": medians}


def _run_ablation_tuning(shifts_nm: tuple[float, ...] = (0.2, 2.0)) -> dict:
    from repro.accelerator.config import AcceleratorConfig
    from repro.accelerator.power import PowerModel

    model = PowerModel(AcceleratorConfig.paper_config())
    payload: dict = {
        f"shift_{shift}nm": model.tuning_energy_comparison(shift)
        for shift in shifts_nm
    }
    payload["total_power_w"] = model.report().total_w
    return payload


def _params(**kwargs) -> Mapping[str, object]:
    """Freeze a default-parameter mapping (descriptors are immutable)."""
    return MappingProxyType(kwargs)


def _backend_aware(runner: Callable[..., dict]) -> Callable[..., dict]:
    """Wrap an NN-heavy runner with the ``nn_backend``/``nn_threads`` params.

    The wrapped runner accepts two extra keyword parameters selecting the
    compute backend (:mod:`repro.nn.backend`) its kernels dispatch to:
    ``nn_backend=""`` / ``nn_threads=0`` inherit the ambient selection
    (``REPRO_NN_BACKEND`` / ``REPRO_NN_THREADS`` or the ``reference``
    default).  Because these ride in ``default_params``, resolved sweep
    points carry them in the spec — and therefore in the run fingerprint —
    so cached results are never served across backends.
    """

    @functools.wraps(runner)
    def wrapped(*args, nn_backend: str = "", nn_threads: int = 0, **kwargs) -> dict:
        from repro.nn.backend import use_backend

        with use_backend(str(nn_backend) or None, int(nn_threads) or None):
            return runner(*args, **kwargs)

    return wrapped


#: Extra default params added to every backend-aware experiment descriptor.
_NN_BACKEND_DEFAULTS = {"nn_backend": "", "nn_threads": 0}


EXPERIMENTS: dict[str, ExperimentDescriptor] = {
    "table1": ExperimentDescriptor(
        experiment_id="table1",
        title="CNN model parameter inventory",
        paper_reference="Table I",
        modules=("repro.nn.models",),
        bench_target="benchmarks/bench_table1_models.py",
        runner=_run_table1,
        default_params=_params(include_measured=True),
    ),
    "fig6": ExperimentDescriptor(
        experiment_id="fig6",
        title="Thermal hotspot heatmap on the CONV block",
        paper_reference="Fig. 6",
        modules=("repro.thermal", "repro.attacks.hotspot"),
        bench_target="benchmarks/bench_fig6_heatmap.py",
        runner=_run_fig6,
        default_params=_params(
            attacked_banks=(650, 1260),
            heater_power_mw=300.0,
            affected_threshold_k=5.0,
        ),
    ),
    "fig7": ExperimentDescriptor(
        experiment_id="fig7",
        title="Susceptibility of CNN models to actuation and hotspot attacks",
        paper_reference="Fig. 7(a)-(c)",
        modules=("repro.analysis.susceptibility", "repro.attacks", "repro.accelerator"),
        bench_target="benchmarks/bench_fig7_susceptibility.py",
        runner=_backend_aware(_run_fig7),
        default_params=_params(
            model_names=("cnn_mnist",),
            kinds=("actuation", "hotspot"),
            blocks=("both",),
            fractions=(0.01, 0.10),
            num_placements=2,
            kind_params=None,
            seed=0,
            **_NN_BACKEND_DEFAULTS,
        ),
        attack_kind_params=("kinds",),
    ),
    "fig7_point": ExperimentDescriptor(
        experiment_id="fig7_point",
        title="One Fig. 7 susceptibility grid point (sweepable)",
        paper_reference="Fig. 7(a)-(c)",
        modules=("repro.analysis.susceptibility", "repro.attacks", "repro.engine"),
        bench_target="benchmarks/bench_fig7_susceptibility.py",
        runner=_backend_aware(_run_fig7_point),
        default_params=_params(
            model="cnn_mnist",
            kind="hotspot",
            block="both",
            fraction=0.05,
            placement=0,
            quantize_weights=True,
            kind_params=None,
            seed=0,
            **_NN_BACKEND_DEFAULTS,
        ),
        attack_kind_params=("kind",),
    ),
    "fig7_grid": ExperimentDescriptor(
        experiment_id="fig7_grid",
        title="A full Fig. 7 scenario grid via stacked attacked inference (sweepable)",
        paper_reference="Fig. 7(a)-(c)",
        modules=(
            "repro.accelerator.inference",
            "repro.attacks.injection",
            "repro.nn.ensemble",
        ),
        bench_target="benchmarks/bench_scenario_batch.py",
        runner=_backend_aware(_run_fig7_grid),
        default_params=_params(
            model="cnn_mnist",
            kinds=("actuation", "hotspot"),
            blocks=("both",),
            fractions=(0.01, 0.05, 0.10),
            num_placements=3,
            backend="batched",
            scenario_chunk=0,
            quantize_weights=True,
            kind_params=None,
            seed=0,
            **_NN_BACKEND_DEFAULTS,
        ),
        attack_kind_params=("kinds",),
    ),
    "fig7_candidate": ExperimentDescriptor(
        experiment_id="fig7_candidate",
        title="One attack-search candidate averaged over placements (sweepable)",
        paper_reference="Fig. 7 methodology, searched",
        modules=("repro.attacks.search", "repro.accelerator.inference", "repro.engine"),
        bench_target="benchmarks/bench_attack_search.py",
        runner=_backend_aware(_run_fig7_candidate),
        default_params=_params(
            model="cnn_mnist",
            variant="",
            kind="hotspot",
            block="both",
            fraction=0.05,
            attack_params=None,
            placements=2,
            quantize_weights=True,
            checkpoint_cache=False,
            seed=0,
            **_NN_BACKEND_DEFAULTS,
        ),
        attack_kind_params=("kind",),
    ),
    "fig7_adversarial": ExperimentDescriptor(
        experiment_id="fig7_adversarial",
        title="Black-box adversarial attack search with a Pareto front (sweepable)",
        paper_reference="beyond the paper's fixed grids (ROADMAP item 3)",
        modules=("repro.attacks.search", "repro.analysis", "repro.engine"),
        bench_target="benchmarks/bench_attack_search.py",
        runner=_backend_aware(_run_fig7_adversarial),
        default_params=_params(
            model="cnn_mnist",
            variant="",
            kind="hotspot",
            block="both",
            optimizer="random",
            budget=32,
            generation_size=8,
            placements=2,
            fraction_min=0.005,
            fraction_max=0.10,
            sigma=0.2,
            mu=0,
            eta=2,
            quantize_weights=True,
            checkpoint_cache=False,
            candidate_cache="",
            seed=0,
            **_NN_BACKEND_DEFAULTS,
        ),
        attack_kind_params=("kind",),
    ),
    "fig8": ExperimentDescriptor(
        experiment_id="fig8",
        title="Accuracy distribution of mitigation variants",
        paper_reference="Fig. 8(a)-(c)",
        modules=("repro.analysis.mitigation_analysis", "repro.mitigation"),
        bench_target="benchmarks/bench_fig8_variants.py",
        runner=_backend_aware(_run_fig8),
        default_params=_params(
            model_names=("cnn_mnist",),
            stacked_training=True,
            checkpoint_cache=False,
            seed=0,
            **_NN_BACKEND_DEFAULTS,
        ),
    ),
    "fig8_variant": ExperimentDescriptor(
        experiment_id="fig8_variant",
        title="One mitigation variant across the attack grid (sweepable)",
        paper_reference="Fig. 8(a)-(c)",
        modules=("repro.analysis.mitigation_analysis", "repro.mitigation", "repro.engine"),
        bench_target="benchmarks/bench_fig8_variants.py",
        runner=_backend_aware(_run_fig8_variant),
        default_params=_params(
            model="cnn_mnist",
            variant="l2+n3",
            kinds=("actuation", "hotspot"),
            blocks=("both",),
            fractions=(0.05, 0.10),
            num_placements=2,
            kind_params=None,
            checkpoint_cache=False,
            seed=0,
            **_NN_BACKEND_DEFAULTS,
        ),
        attack_kind_params=("kinds",),
    ),
    "signal_mc": ExperimentDescriptor(
        experiment_id="signal_mc",
        title="Signal-level Monte-Carlo attack sweep on a bank pair (sweepable)",
        paper_reference="Figs. 4-5",
        modules=("repro.photonics.bank_array", "repro.accelerator.signal_sim"),
        bench_target="benchmarks/bench_signal_core.py",
        runner=_run_signal_mc,
        default_params=_params(
            size=16,
            trials=200,
            kind="hotspot",
            fraction=0.125,
            max_delta_t_k=25.0,
            seed=0,
        ),
    ),
    "fig9": ExperimentDescriptor(
        experiment_id="fig9",
        title="Robust vs. original models under attack",
        paper_reference="Fig. 9(a)-(c)",
        modules=("repro.analysis.mitigation_analysis", "repro.mitigation.selection"),
        bench_target="benchmarks/bench_fig9_robust_vs_original.py",
        runner=_backend_aware(_run_fig9),
        default_params=_params(
            model_names=("cnn_mnist",),
            stacked_training=True,
            checkpoint_cache=False,
            seed=0,
            **_NN_BACKEND_DEFAULTS,
        ),
    ),
    "ablation_mitigation": ExperimentDescriptor(
        experiment_id="ablation_mitigation",
        title="L2-only vs noise-only vs combined mitigation",
        paper_reference="§V discussion",
        modules=("repro.mitigation",),
        bench_target="benchmarks/bench_ablation_mitigation.py",
        runner=_backend_aware(_run_ablation_mitigation),
        default_params=_params(
            variants=("Original", "L2_reg", "noise_n3", "l2+n3"),
            seed=0,
            **_NN_BACKEND_DEFAULTS,
        ),
    ),
    "ablation_tuning": ExperimentDescriptor(
        experiment_id="ablation_tuning",
        title="EO vs TO tuning power/latency",
        paper_reference="§II.B",
        modules=("repro.photonics.tuning", "repro.accelerator.power"),
        bench_target="benchmarks/bench_photonic_primitives.py",
        runner=_run_ablation_tuning,
        default_params=_params(shifts_nm=(0.2, 2.0)),
    ),
}


def experiment_ids() -> list[str]:
    """All registered experiment ids in registry order."""
    return list(EXPERIMENTS)


def get_experiment(experiment_id: str) -> ExperimentDescriptor:
    """Look up an experiment by id, raising ``KeyError`` with guidance otherwise."""
    if experiment_id not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; available: {sorted(EXPERIMENTS)}"
        )
    return EXPERIMENTS[experiment_id]
