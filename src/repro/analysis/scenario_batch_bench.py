"""Scenario-batched vs per-scenario attacked-inference benchmark.

Times the two attack-evaluation paths of
:class:`~repro.accelerator.inference.AttackedInferenceEngine` on quick Fig. 7
scenario grids:

* ``fc_grid`` — the Fig. 7 FC-block column (kinds x fractions x placements on
  the FC block).  These scenarios leave the CONV block clean, so the batched
  path computes the convolutional trunk **once per chunk** and only replicates
  the (cheap) FC layers per scenario — the structural sharing that gives the
  scenario-batch subsystem its headline speedup.
* ``mixed_grid`` — the full paper grid (CONV / FC / CONV+FC targets).
  CONV-corrupting scenarios diverge at the first layer, so their work is
  irreducibly per-scenario; the batched path still wins by folding scenarios
  into cache-sized stacked passes.

Each section records best-of-``repeats`` wall times, the speedup, and the
maximum per-scenario disagreement between the batched accuracies and the
per-scenario reference (the paths must agree within 1e-9 — in practice they
are bit-identical).  :func:`run_scenario_batch_bench` returns the result
dictionary and optionally writes it as JSON (``BENCH_scenario_batch.json``),
which the CI workflow records as a non-gating perf-trajectory artefact while
failing loudly if the equivalence check is violated.
"""

from __future__ import annotations

import json
import platform
from pathlib import Path
from time import perf_counter
from typing import Sequence

import numpy as np

from repro.version import __version__

__all__ = ["run_scenario_batch_bench", "format_scenario_bench_report"]

#: Disagreement bound between the batched and per-scenario accuracies.
EQUIVALENCE_TOL = 1e-9


def _bench_grid(
    engine,
    dataset,
    blocks: Sequence[str],
    kinds: Sequence[str],
    fractions: Sequence[float],
    num_placements: int,
    repeats: int,
    seed: int,
) -> dict:
    """Time one scenario grid through both paths and compare accuracies."""
    from repro.attacks.hotspot import HotspotAttackConfig
    from repro.attacks.scenario import generate_scenarios, sample_outcome

    scenarios = generate_scenarios(
        kinds=tuple(kinds),
        blocks=tuple(blocks),
        fractions=tuple(fractions),
        num_placements=num_placements,
        master_seed=seed,
    )
    hotspot = HotspotAttackConfig()
    outcomes = [sample_outcome(s, engine.config, hotspot) for s in scenarios]

    engine.accuracy_under_attacks(dataset, outcomes[:2])  # warm the stacked path
    serial_s = float("inf")
    batched_s = float("inf")
    serial = batched = None
    for _ in range(max(repeats, 1)):
        start = perf_counter()
        serial = np.array(
            [engine.accuracy_under_attack(dataset, outcome) for outcome in outcomes]
        )
        serial_s = min(serial_s, perf_counter() - start)
        start = perf_counter()
        batched = engine.accuracy_under_attacks(dataset, outcomes)
        batched_s = min(batched_s, perf_counter() - start)
    return {
        "blocks": list(blocks),
        "num_scenarios": len(scenarios),
        "num_placements": num_placements,
        "serial_s": serial_s,
        "batched_s": batched_s,
        "speedup_batched_vs_serial": serial_s / batched_s,
        "max_abs_accuracy_diff": float(np.max(np.abs(serial - batched))),
        "mean_attacked_accuracy": float(np.mean(batched)),
    }


def run_scenario_batch_bench(
    model: str = "cnn_mnist",
    kinds: Sequence[str] = ("actuation", "hotspot"),
    fractions: Sequence[float] = (0.01, 0.05, 0.10),
    fc_placements: int = 10,
    mixed_placements: int = 3,
    repeats: int = 1,
    seed: int = 0,
    output: str | Path | None = None,
) -> dict:
    """Run both grid sections and optionally write the JSON record.

    The headline ``speedup_batched_vs_serial`` is the FC-column sweep, where
    the scenario-sharing structure applies; the mixed grid documents the
    speedup on the full paper grid alongside it.
    """
    from repro.accelerator.inference import AttackedInferenceEngine
    from repro.analysis.susceptibility import SusceptibilityConfig, SusceptibilityStudy

    config = SusceptibilityConfig(model_names=(model,), seed=seed)
    trained, split = SusceptibilityStudy(config).prepare_workload(model)
    engine = AttackedInferenceEngine(trained, config=config.accelerator)

    fc_grid = _bench_grid(
        engine, split.test, ("fc",), kinds, fractions, fc_placements, repeats, seed
    )
    mixed_grid = _bench_grid(
        engine,
        split.test,
        ("conv", "fc", "both"),
        kinds,
        fractions,
        mixed_placements,
        repeats,
        seed,
    )
    results = {
        "benchmark": "scenario_batch",
        "version": __version__,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "model": model,
        "test_samples": len(split.test),
        "baseline_accuracy": engine.clean_accuracy(split.test),
        "fc_grid": fc_grid,
        "mixed_grid": mixed_grid,
        "speedup_batched_vs_serial": fc_grid["speedup_batched_vs_serial"],
        "equivalent_within_tol": bool(
            fc_grid["max_abs_accuracy_diff"] <= EQUIVALENCE_TOL
            and mixed_grid["max_abs_accuracy_diff"] <= EQUIVALENCE_TOL
        ),
    }
    if output is not None:
        Path(output).write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
    return results


def format_scenario_bench_report(results: dict) -> str:
    """Human-readable summary of a :func:`run_scenario_batch_bench` result."""
    lines = [
        f"scenario-batch benchmark (repro {results['version']}, "
        f"python {results['python']}, numpy {results['numpy']})",
        f"workload: {results['model']}, {results['test_samples']} test samples, "
        f"baseline accuracy {results['baseline_accuracy']:.3f}",
    ]
    for key, title in (
        ("fc_grid", "FC-block column (shared conv trunk)"),
        ("mixed_grid", "full CONV/FC/CONV+FC grid"),
    ):
        section = results[key]
        lines += [
            "",
            f"{title}: {section['num_scenarios']} scenarios",
            f"  per-scenario path     {section['serial_s'] * 1e3:9.2f} ms",
            f"  scenario-batched      {section['batched_s'] * 1e3:9.2f} ms"
            f"   ({section['speedup_batched_vs_serial']:.1f}x)",
            f"  max |accuracy diff|   {section['max_abs_accuracy_diff']:.2e}",
        ]
    lines += [
        "",
        f"paths agree within {EQUIVALENCE_TOL:g}: {results['equivalent_within_tol']}",
    ]
    return "\n".join(lines)
