"""Mitigation analysis (paper §VI, Figs. 8 and 9).

The study trains the variant grid (Original, L2_reg, l2+n1 .. l2+n9) for each
workload, evaluates every variant across the attack grid, selects the most
robust variant and compares it against the original model under attacks on
the full accelerator (CONV + FC) at 1%, 5% and 10% intensity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.accelerator.config import AcceleratorConfig
from repro.accelerator.inference import AttackedInferenceEngine
from repro.attacks.base import PAPER_KINDS
from repro.attacks.hotspot import HotspotAttackConfig
from repro.attacks.scenario import DEFAULT_FRACTIONS, generate_scenarios, sample_outcome
from repro.datasets.base import DatasetSplit, train_test_split
from repro.datasets.registry import load_dataset
from repro.mitigation.robust_training import (
    VariantResult,
    VariantSpec,
    default_variant_grid,
    load_cached_variant,
    store_variant_checkpoint,
    train_variant_grid,
    train_variant_grid_stacked,
    variant_checkpoint_key,
)
from repro.mitigation.selection import RobustnessScore, select_most_robust
from repro.nn.backend import use_backend
from repro.nn.models.registry import MODEL_DATASETS
from repro.nn.training import TrainingConfig
from repro.utils.validation import check_positive_int

__all__ = [
    "MitigationAnalysisConfig",
    "VariantDistribution",
    "RobustComparisonRow",
    "MitigationStudyResult",
    "MitigationStudy",
]

#: Per-workload defaults (kept aligned with the susceptibility study).
_WORKLOAD_DEFAULTS: dict[str, dict[str, object]] = {
    "cnn_mnist": {
        "num_samples": 700,
        "dataset_kwargs": {},
        "model_kwargs": {},
        "training": dict(epochs=4, batch_size=32, lr=2e-3),
    },
    "resnet18": {
        "num_samples": 400,
        "dataset_kwargs": {},
        "model_kwargs": {},
        "training": dict(epochs=3, batch_size=32, lr=2e-3),
    },
    "vgg16_variant": {
        "num_samples": 450,
        "dataset_kwargs": {"image_size": 48},
        "model_kwargs": {"image_size": 48},
        "training": dict(epochs=4, batch_size=32, lr=2e-3),
    },
}


@dataclass
class MitigationAnalysisConfig:
    """Configuration of the Fig. 8 / Fig. 9 studies.

    Attributes
    ----------
    model_names:
        Workloads to evaluate.
    variants:
        Variant grid (defaults to the paper's Original, L2_reg, l2+n1..n9).
    kinds, blocks, fractions, num_placements:
        Attack grid used for the variant comparison (Fig. 8 evaluates every
        block target; Fig. 9 uses the combined CONV+FC attacks).  ``kinds``
        accepts any registered attack kind; ``kind_params`` carries per-kind
        physical parameters for the non-default ones.
    seed:
        Master seed.
    scenario_batch:
        Evaluate each variant's attack grid through stacked ensemble
        forwards instead of one test-set pass per scenario.
    scenario_chunk:
        Scenarios per stacked forward pass (``None``: memory-aware auto).
    stacked_training:
        Train the whole variant grid through the variant-stacked
        forward/backward path (one stacked pass per data batch for all
        variants) instead of one :class:`Trainer.fit` per variant.  The two
        paths are numerically equivalent (property-tested); stacked is the
        fast default.
    checkpoint_cache:
        Consult (and fill) the content-addressed trained-model store before
        training: variants whose checkpoint exists are loaded with **zero
        training steps**.  Pre-warm with ``python -m repro train``.
    checkpoint_dir:
        Checkpoint store location (``None``: ``REPRO_CHECKPOINT_DIR`` or
        ``.repro-cache/checkpoints``).
    backend, nn_threads:
        Compute backend (:mod:`repro.nn.backend`) the study's variant
        training and attacked-inference kernels dispatch to, and its thread
        count.  The empty defaults inherit the ambient selection
        (``REPRO_NN_BACKEND`` / ``REPRO_NN_THREADS`` or ``reference``).
    """

    model_names: Sequence[str] = ("cnn_mnist", "resnet18", "vgg16_variant")
    variants: Sequence[VariantSpec] | None = None
    kinds: Sequence[str] = PAPER_KINDS
    blocks: Sequence[str] = ("conv", "fc", "both")
    fractions: Sequence[float] = DEFAULT_FRACTIONS
    num_placements: int = 3
    seed: int = 0
    accelerator: AcceleratorConfig = field(default_factory=AcceleratorConfig.scaled_config)
    hotspot: HotspotAttackConfig = field(default_factory=HotspotAttackConfig)
    kind_params: dict | None = None
    quantize_weights: bool = True
    test_fraction: float = 0.25
    scenario_batch: bool = True
    scenario_chunk: int | None = None
    stacked_training: bool = True
    checkpoint_cache: bool = False
    checkpoint_dir: str | None = None
    backend: str = ""
    nn_threads: int = 0

    def __post_init__(self) -> None:
        check_positive_int(self.num_placements, "num_placements")

    def variant_grid(self) -> list[VariantSpec]:
        if self.variants is not None:
            return list(self.variants)
        return default_variant_grid()

    @classmethod
    def quick(cls, **overrides) -> "MitigationAnalysisConfig":
        """Reduced configuration for tests and benchmarks."""
        from repro.mitigation.l2_regularization import L2Config
        from repro.mitigation.noise_aware import NoiseAwareConfig

        defaults = dict(
            model_names=("cnn_mnist",),
            variants=(
                VariantSpec(name="Original"),
                VariantSpec(name="L2_reg", l2=L2Config()),
                VariantSpec(name="l2+n2", l2=L2Config(), noise=NoiseAwareConfig(std=0.2)),
                VariantSpec(name="l2+n5", l2=L2Config(), noise=NoiseAwareConfig(std=0.5)),
            ),
            blocks=("both",),
            fractions=(0.05, 0.10),
            num_placements=2,
        )
        defaults.update(overrides)
        return cls(**defaults)


@dataclass(frozen=True)
class VariantDistribution:
    """Fig. 8 data point: one variant's attacked-accuracy distribution."""

    model: str
    variant: str
    baseline_accuracy: float
    accuracies: np.ndarray

    def summary(self) -> dict[str, float]:
        from repro.analysis.metrics import box_stats

        stats = box_stats(self.accuracies).as_dict()
        stats["baseline"] = self.baseline_accuracy
        return stats


@dataclass(frozen=True)
class RobustComparisonRow:
    """Fig. 9 data point: original vs. robust model under one attack setting."""

    model: str
    kind: str
    fraction: float
    original_baseline: float
    robust_baseline: float
    original_accuracy_mean: float
    original_accuracy_min: float
    robust_accuracy_mean: float
    robust_accuracy_min: float

    @property
    def original_drop(self) -> float:
        return self.original_baseline - self.original_accuracy_min

    @property
    def recovery(self) -> float:
        """Worst-case accuracy recovered by the robust model (accuracy points)."""
        return self.robust_accuracy_min - self.original_accuracy_min


@dataclass
class MitigationStudyResult:
    """Outputs of the mitigation study for all workloads."""

    config: MitigationAnalysisConfig
    distributions: list[VariantDistribution] = field(default_factory=list)
    best_variant: dict[str, str] = field(default_factory=dict)
    variant_scores: dict[str, list[RobustnessScore]] = field(default_factory=dict)
    comparison: list[RobustComparisonRow] = field(default_factory=list)
    #: Per-model training accounting: variants trained vs loaded from the
    #: checkpoint cache, and the optimizer steps actually performed.
    training_stats: dict[str, dict] = field(default_factory=dict)

    def distributions_for(self, model: str) -> list[VariantDistribution]:
        return [d for d in self.distributions if d.model == model]

    def comparison_for(self, model: str) -> list[RobustComparisonRow]:
        return [row for row in self.comparison if row.model == model]


class MitigationStudy:
    """Runs the Fig. 8 variant comparison and the Fig. 9 robust-vs-original study."""

    def __init__(self, config: MitigationAnalysisConfig | None = None):
        self.config = config or MitigationAnalysisConfig()
        #: Per-model accounting of the most recent ``train_variants`` calls.
        self.last_training_stats: dict[str, dict] = {}

    def _backend_context(self):
        """Context applying the config's compute-backend selection."""
        return use_backend(
            self.config.backend or None, int(self.config.nn_threads) or None
        )

    # ---------------------------------------------------------------- setup
    def prepare_split(self, model_name: str) -> DatasetSplit:
        """Synthesize and split the dataset for a workload."""
        defaults = _WORKLOAD_DEFAULTS[model_name]
        dataset = load_dataset(
            MODEL_DATASETS[model_name],
            num_samples=int(defaults["num_samples"]),
            seed=self.config.seed,
            **dict(defaults["dataset_kwargs"]),
        )
        return train_test_split(dataset, self.config.test_fraction, seed=self.config.seed + 1)

    def checkpoint_cache(self):
        """The trained-model store, or ``None`` when caching is disabled."""
        if not self.config.checkpoint_cache:
            return None
        from repro.engine.checkpoints import CheckpointCache

        return CheckpointCache(self.config.checkpoint_dir)

    def checkpoint_key(self, model_name: str, spec: VariantSpec) -> dict:
        """Content-address payload for one trained variant of this study."""
        defaults = _WORKLOAD_DEFAULTS[model_name]
        base_config = TrainingConfig(seed=self.config.seed, **dict(defaults["training"]))
        return variant_checkpoint_key(
            model_name,
            spec,
            base_config,
            model_kwargs=dict(defaults["model_kwargs"]),
            dataset={
                "dataset": MODEL_DATASETS[model_name],
                "num_samples": int(defaults["num_samples"]),
                "dataset_kwargs": dict(defaults["dataset_kwargs"]),
                "seed": self.config.seed,
                "test_fraction": self.config.test_fraction,
            },
        )

    def train_variants(self, model_name: str, split: DatasetSplit) -> list[VariantResult]:
        """Train (or load from the checkpoint cache) the variant grid.

        Cached variants are restored with zero training steps; the remaining
        grid members train together — through the variant-stacked path when
        ``config.stacked_training`` is set, else serially — and their fresh
        checkpoints are stored back.  Accounting lands in
        ``self.last_training_stats[model_name]``.
        """
        with self._backend_context():
            return self._train_variants(model_name, split)

    def _train_variants(self, model_name: str, split: DatasetSplit) -> list[VariantResult]:
        defaults = _WORKLOAD_DEFAULTS[model_name]
        base_config = TrainingConfig(seed=self.config.seed, **dict(defaults["training"]))
        model_kwargs = dict(defaults["model_kwargs"])
        grid = self.config.variant_grid()
        cache = self.checkpoint_cache()
        results: list[VariantResult | None] = [None] * len(grid)
        missing = list(range(len(grid)))
        if cache is not None:
            missing = []
            for index, spec in enumerate(grid):
                loaded = load_cached_variant(
                    cache,
                    self.checkpoint_key(model_name, spec),
                    model_name,
                    spec,
                    base_config,
                    model_kwargs=model_kwargs,
                )
                if loaded is None:
                    missing.append(index)
                else:
                    results[index] = loaded
        training_steps = 0
        if missing:
            subset = [grid[index] for index in missing]
            trainer_fn = (
                train_variant_grid_stacked
                if self.config.stacked_training
                else train_variant_grid
            )
            trained = trainer_fn(
                model_name,
                split,
                base_config,
                variants=subset,
                model_kwargs=model_kwargs,
            )
            # The trainers report their real optimizer-step counts: the
            # stacked pass advances the whole sub-grid per step (every result
            # shares one count), the serial path sums one fit per variant.
            steps = [int(result.extras.get("training_steps", 0)) for result in trained]
            training_steps = (
                max(steps, default=0)
                if self.config.stacked_training
                else sum(steps)
            )
            for index, result in zip(missing, trained):
                results[index] = result
                store_variant_checkpoint(
                    cache, self.checkpoint_key(model_name, result.spec), result
                )
        self.last_training_stats[model_name] = {
            "variants": len(grid),
            "checkpoint_hits": len(grid) - len(missing),
            "trained": len(missing),
            "training_steps": training_steps,
            "stacked_training": bool(self.config.stacked_training),
        }
        return [result for result in results if result is not None]

    # ------------------------------------------------------------------ run
    def run(self) -> MitigationStudyResult:
        """Run the full mitigation study for every configured workload."""
        with self._backend_context():
            return self._run()

    def _run(self) -> MitigationStudyResult:
        result = MitigationStudyResult(config=self.config)
        scenarios = generate_scenarios(
            kinds=self.config.kinds,
            blocks=self.config.blocks,
            fractions=self.config.fractions,
            num_placements=self.config.num_placements,
            master_seed=self.config.seed,
        )
        # Pre-sample outcomes once: every variant faces the same attacks.
        outcomes = [
            (
                s,
                sample_outcome(
                    s,
                    self.config.accelerator,
                    self.config.hotspot,
                    kind_params=self.config.kind_params,
                ),
            )
            for s in scenarios
        ]
        for model_name in self.config.model_names:
            split = self.prepare_split(model_name)
            variants = self._train_variants(model_name, split)
            result.training_stats[model_name] = dict(
                self.last_training_stats.get(model_name, {})
            )
            accuracy_by_variant: dict[str, np.ndarray] = {}
            for variant in variants:
                engine = AttackedInferenceEngine(
                    variant.model,
                    config=self.config.accelerator,
                    quantize_weights=self.config.quantize_weights,
                    scenario_chunk=self.config.scenario_chunk,
                )
                if self.config.scenario_batch:
                    accuracies = engine.accuracy_under_attacks(
                        split.test, [outcome for _, outcome in outcomes]
                    )
                else:
                    accuracies = np.array(
                        [
                            engine.accuracy_under_attack(split.test, outcome)
                            for _, outcome in outcomes
                        ]
                    )
                accuracy_by_variant[variant.spec.name] = accuracies
                result.distributions.append(
                    VariantDistribution(
                        model=model_name,
                        variant=variant.spec.name,
                        baseline_accuracy=variant.baseline_accuracy,
                        accuracies=accuracies,
                    )
                )
            best, scores = select_most_robust(accuracy_by_variant)
            result.best_variant[model_name] = best
            result.variant_scores[model_name] = scores
            result.comparison.extend(
                self._compare_best(
                    model_name, variants, accuracy_by_variant, outcomes, best
                )
            )
        return result

    # ------------------------------------------------------------- figure 9
    def _compare_best(
        self,
        model_name: str,
        variants: list[VariantResult],
        accuracy_by_variant: dict[str, np.ndarray],
        outcomes,
        best: str,
    ) -> list[RobustComparisonRow]:
        """Fig. 9 rows: original vs. the selected robust variant (CONV+FC attacks).

        Every (scenario, variant) accuracy is already available from the
        Fig. 8 grid evaluation, so the comparison just slices the accuracy
        arrays instead of re-running attacked inference.
        """
        by_name = {variant.spec.name: variant for variant in variants}
        original = by_name["Original"]
        robust = by_name[best]
        rows: list[RobustComparisonRow] = []
        for kind in self.config.kinds:
            for fraction in self.config.fractions:
                selected = [
                    index
                    for index, (s, _) in enumerate(outcomes)
                    if s.spec.kind == kind
                    and s.spec.target_block == "both"
                    and np.isclose(s.spec.fraction, fraction)
                ]
                if not selected:
                    continue
                original_accs = np.asarray(accuracy_by_variant["Original"])[selected]
                robust_accs = np.asarray(accuracy_by_variant[best])[selected]
                rows.append(
                    RobustComparisonRow(
                        model=model_name,
                        kind=kind,
                        fraction=fraction,
                        original_baseline=original.baseline_accuracy,
                        robust_baseline=robust.baseline_accuracy,
                        original_accuracy_mean=float(original_accs.mean()),
                        original_accuracy_min=float(original_accs.min()),
                        robust_accuracy_mean=float(robust_accs.mean()),
                        robust_accuracy_min=float(robust_accs.min()),
                    )
                )
        return rows
