"""Deterministic fault injection for chaos-testing the execution stack.

See :mod:`repro.faults.plan` for the full model: named :func:`fault_point`
call sites across the engine and serve layers, seeded :class:`FaultPlan`
rules with ``crash`` / ``raise`` / ``hang`` / ``corrupt_write`` / ``enospc``
effects, and activation either in-process or through the ``REPRO_FAULTS``
environment variable (which propagates into spawned workers).

Quick start::

    from repro.faults import FaultPlan, FaultRule

    plan = FaultPlan(
        [FaultRule(point="worker.run", effect="crash", probability=0.3)],
        seed=7,
    )
    with plan.activated(set_env=True):
        ...  # run a sweep; ~30% of worker runs die mid-flight
"""

from repro.faults.plan import (
    EFFECTS,
    ENV_VAR,
    FAULT_POINTS,
    FaultPlan,
    FaultRule,
    InjectedFault,
    activate,
    active_plan,
    deactivate,
    fault_point,
    load_env_plan,
)

__all__ = [
    "EFFECTS",
    "ENV_VAR",
    "FAULT_POINTS",
    "FaultPlan",
    "FaultRule",
    "InjectedFault",
    "activate",
    "active_plan",
    "deactivate",
    "fault_point",
    "load_env_plan",
]
