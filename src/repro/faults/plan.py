"""Deterministic, seeded fault injection for the execution stack.

The execution stack (engine executors, serve scheduler, worker pool, caches,
HTTP API) claims a set of robustness invariants: campaigns finish when workers
crash, hung runs cannot stall a job forever, corrupt cache writes never count
as results, clients survive 429s.  This module makes those invariants
*testable* instead of hand-waved: production code is instrumented with named
:func:`fault_point` calls, and an activated :class:`FaultPlan` decides — from
a seeded :mod:`repro.utils.rng` stream — whether each call fires an effect.

Fault points instrumented across the library:

====================  =======================================================
``worker.run``        inside :func:`repro.engine.executor.execute_run`, i.e.
                      in every executor (serial, process pool, serve workers)
``cache.put``         :meth:`repro.engine.cache.ResultCache.put` write step
``jobstore.save``     :meth:`repro.serve.jobstore.JobStore.save` write step
``api.handle``        the serve daemon's HTTP request dispatch
``node.heartbeat``    a federated node agent's coordinator heartbeat send
                      (``raise`` = the heartbeat is lost in the network — a
                      partition as the coordinator sees it)
``node.lease_renew``  a node agent's lease renewal send
``node.upload``       a node agent's result upload (``corrupt_write`` = the
                      request body is torn mid-transfer)
====================  =======================================================

Effects:

``crash``
    ``os._exit(137)`` — the process dies instantly, exactly like ``kill -9``
    or the OOM killer, mid-run and mid-write.
``raise``
    raises :class:`InjectedFault` (an ordinary exception the surrounding
    error handling must absorb).
``hang``
    sleeps ``seconds`` — a stuck native call / deadlocked run.
``corrupt_write``
    *cooperative*: :func:`fault_point` returns ``"corrupt_write"`` and the
    instrumented write site persists a truncated document instead of the real
    one (a torn write frozen to disk).
``enospc``
    raises ``OSError(ENOSPC)`` — the disk filled up under the writer.

Activation:

* :func:`activate` / :meth:`FaultPlan.activated` for the current process;
* the ``REPRO_FAULTS`` environment variable (the plan's JSON, or ``@path`` to
  a JSON file) — which is what propagates a plan into worker processes.  It
  is read at import time, and re-read once per pid the first time
  :func:`fault_point` runs in a new process: spawn children re-import and hit
  the import hook, fork children inherit the parent's already-imported module
  (inactive plan and all) and hit the per-pid re-check instead.

When no plan is active :func:`fault_point` is a single attribute load and a
``None`` check — zero overhead on production hot paths.

Determinism: each rule draws from a ``numpy`` generator seeded from
``(plan.seed, rule index, point name, pid)``.  Within one process the firing
sequence is a pure function of the plan seed and the call order; the pid term
gives every (re)spawned worker an independent stream, so a run that crashed
its worker genuinely re-rolls on redispatch instead of crash-looping forever.
Per-rule ``fires``/``calls`` counters (and ``max_fires`` caps) are likewise
per-process.
"""

from __future__ import annotations

import errno
import json
import os
import sys
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Mapping, Sequence

import numpy as np

from repro.utils.rng import stable_hash
from repro.utils.validation import ValidationError

__all__ = [
    "ENV_VAR",
    "EFFECTS",
    "FAULT_POINTS",
    "FaultPlan",
    "FaultRule",
    "InjectedFault",
    "activate",
    "active_plan",
    "deactivate",
    "fault_point",
    "load_env_plan",
]

#: Environment variable carrying an active plan (JSON, or ``@path`` to JSON).
ENV_VAR = "REPRO_FAULTS"

#: Supported rule effects (see the module docstring for semantics).
EFFECTS = ("crash", "raise", "hang", "corrupt_write", "enospc")

#: The fault points instrumented in-tree.  Rules may name other points too
#: (tests and plugins can instrument their own code with :func:`fault_point`).
FAULT_POINTS = (
    "worker.run",
    "cache.put",
    "jobstore.save",
    "api.handle",
    "node.heartbeat",
    "node.lease_renew",
    "node.upload",
)


class InjectedFault(RuntimeError):
    """The exception raised by the ``raise`` effect (and nothing else)."""


@dataclass(frozen=True)
class FaultRule:
    """One trigger: *at this point, with this probability, do this*.

    Attributes
    ----------
    point:
        Fault-point name the rule listens on (e.g. ``"worker.run"``).
    effect:
        One of :data:`EFFECTS`.
    probability:
        Chance in ``[0, 1]`` that an eligible call fires (drawn from the
        rule's seeded stream; ``1.0`` always fires and draws nothing).
    match:
        Optional substring filter on the call's ``key`` (e.g. a run label),
        so a rule can target one specific run or experiment.
    seconds:
        Sleep duration for the ``hang`` effect.
    max_fires:
        Per-process cap on how many times the rule fires (``None``: unbounded).
    """

    point: str
    effect: str
    probability: float = 1.0
    match: str = ""
    seconds: float = 5.0
    max_fires: int | None = None

    def __post_init__(self) -> None:
        if not self.point:
            raise ValidationError("FaultRule.point must be a non-empty string")
        if self.effect not in EFFECTS:
            raise ValidationError(
                f"unknown fault effect {self.effect!r}; expected one of {EFFECTS}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ValidationError(
                f"FaultRule.probability must be in [0, 1], got {self.probability}"
            )
        if self.seconds < 0:
            raise ValidationError(f"FaultRule.seconds must be >= 0, got {self.seconds}")
        if self.max_fires is not None and self.max_fires < 0:
            raise ValidationError(
                f"FaultRule.max_fires must be >= 0, got {self.max_fires}"
            )

    def to_dict(self) -> dict:
        data: dict = {"point": self.point, "effect": self.effect}
        if self.probability != 1.0:
            data["probability"] = self.probability
        if self.match:
            data["match"] = self.match
        if self.effect == "hang":
            data["seconds"] = self.seconds
        if self.max_fires is not None:
            data["max_fires"] = self.max_fires
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "FaultRule":
        known = {"point", "effect", "probability", "match", "seconds", "max_fires"}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValidationError(
                f"unknown fault-rule field(s) {unknown}; accepted: {sorted(known)}"
            )
        max_fires = data.get("max_fires")
        return cls(
            point=str(data.get("point", "")),
            effect=str(data.get("effect", "")),
            probability=float(data.get("probability", 1.0)),  # type: ignore[arg-type]
            match=str(data.get("match", "")),
            seconds=float(data.get("seconds", 5.0)),  # type: ignore[arg-type]
            max_fires=None if max_fires is None else int(max_fires),  # type: ignore[arg-type]
        )


class _RuleState:
    """Per-process mutable bookkeeping for one rule (stream + counters)."""

    __slots__ = ("rng", "calls", "fires")

    def __init__(self, rng: np.random.Generator):
        self.rng = rng
        self.calls = 0
        self.fires = 0


class FaultPlan:
    """An ordered set of :class:`FaultRule` triggers under one seed.

    The plan is plain data (JSON round-trippable) plus per-process runtime
    state.  Rule order matters: the first matching rule that decides to fire
    wins for a given :func:`fault_point` call.
    """

    def __init__(self, rules: Sequence[FaultRule | Mapping[str, object]], seed: int = 0):
        self.rules: tuple[FaultRule, ...] = tuple(
            rule if isinstance(rule, FaultRule) else FaultRule.from_dict(rule)
            for rule in rules
        )
        self.seed = int(seed)
        self._lock = threading.Lock()
        self._pid: int | None = None
        self._states: list[_RuleState] = []

    # ------------------------------------------------------------- firing
    def _process_states(self) -> list[_RuleState]:
        """(Re)build rule states for the current process.

        Detecting a pid change (fork inheritance, or the same object reused
        after a spawn-pickle round trip) gives every process its own seeded
        streams and fresh counters — a respawned worker re-rolls instead of
        deterministically repeating its predecessor's crash.
        """
        pid = os.getpid()
        if self._pid != pid:
            self._pid = pid
            self._states = [
                _RuleState(
                    np.random.default_rng(
                        np.random.SeedSequence(
                            [self.seed, index, stable_hash(rule.point), pid]
                        )
                    )
                )
                for index, rule in enumerate(self.rules)
            ]
        return self._states

    def fire(self, point: str, key: str = "") -> FaultRule | None:
        """Return the first rule firing for this call, or ``None``.

        Pure decision logic — effect application lives in :func:`fault_point`
        so the plan itself stays side-effect free (and unit-testable).
        """
        with self._lock:
            states = self._process_states()
            for rule, state in zip(self.rules, states):
                if rule.point != point:
                    continue
                if rule.match and rule.match not in key:
                    continue
                state.calls += 1
                if rule.max_fires is not None and state.fires >= rule.max_fires:
                    continue
                if rule.probability >= 1.0 or state.rng.random() < rule.probability:
                    state.fires += 1
                    return rule
        return None

    def counters(self) -> list[dict]:
        """Per-rule ``{"calls", "fires"}`` counters (this process)."""
        with self._lock:
            states = self._process_states()
            return [
                {"point": rule.point, "effect": rule.effect,
                 "calls": state.calls, "fires": state.fires}
                for rule, state in zip(self.rules, states)
            ]

    # ------------------------------------------------------ serialization
    def to_dict(self) -> dict:
        return {"seed": self.seed, "rules": [rule.to_dict() for rule in self.rules]}

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "FaultPlan":
        known = {"seed", "rules"}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValidationError(
                f"unknown fault-plan field(s) {unknown}; accepted: {sorted(known)}"
            )
        rules = data.get("rules", ())
        if not isinstance(rules, Sequence) or isinstance(rules, (str, bytes)):
            raise ValidationError("fault-plan 'rules' must be a list of rule objects")
        return cls(
            rules=[FaultRule.from_dict(rule) for rule in rules],  # type: ignore[arg-type]
            seed=int(data.get("seed", 0)),  # type: ignore[arg-type]
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValidationError(f"fault plan is not valid JSON: {exc}") from exc
        if not isinstance(data, Mapping):
            raise ValidationError("fault plan must be a JSON object")
        return cls.from_dict(data)

    def describe(self) -> str:
        """One line per rule, for the serve startup warning."""
        return "; ".join(
            f"{rule.point}->{rule.effect}"
            + (f" p={rule.probability}" if rule.probability != 1.0 else "")
            + (f" match={rule.match!r}" if rule.match else "")
            for rule in self.rules
        ) or "(empty plan)"

    # --------------------------------------------------------- activation
    @contextmanager
    def activated(self, set_env: bool = False) -> Iterator["FaultPlan"]:
        """Context manager activating the plan (and restoring the previous).

        With ``set_env=True`` the plan is also exported to :data:`ENV_VAR`
        for the duration, so worker processes spawned inside the block
        inherit and apply it too.
        """
        previous = active_plan()
        previous_env = os.environ.get(ENV_VAR)
        activate(self)
        if set_env:
            os.environ[ENV_VAR] = self.to_json()
        try:
            yield self
        finally:
            if previous is not None:
                activate(previous)
            else:
                deactivate()
            if set_env:
                if previous_env is None:
                    os.environ.pop(ENV_VAR, None)
                else:
                    os.environ[ENV_VAR] = previous_env


# -------------------------------------------------------------- module state
_ACTIVE: FaultPlan | None = None

#: Pid that last consulted :data:`ENV_VAR`.  A mismatch in :func:`fault_point`
#: means this process was forked after import (or the variable was set for
#: children only) — re-check the environment exactly once for the new pid.
_ENV_PID: int | None = None


def activate(plan: FaultPlan) -> FaultPlan:
    """Make ``plan`` the process-wide active plan; returns it."""
    global _ACTIVE
    _ACTIVE = plan
    return plan


def deactivate() -> None:
    """Clear the active plan (fault points become no-ops again)."""
    global _ACTIVE
    _ACTIVE = None


def active_plan() -> FaultPlan | None:
    """The currently active plan, or ``None``."""
    return _ACTIVE


def load_env_plan(environ: Mapping[str, str] | None = None) -> FaultPlan | None:
    """Parse a plan from :data:`ENV_VAR` (``None`` when unset/empty).

    The value is either the plan JSON itself or ``@path`` pointing at a JSON
    file (handy when the plan is too unwieldy for an environment variable).
    """
    raw = (environ if environ is not None else os.environ).get(ENV_VAR, "").strip()
    if not raw:
        return None
    if raw.startswith("@"):
        raw = Path(raw[1:]).read_text()
    return FaultPlan.from_json(raw)


def fault_point(name: str, key: str = "") -> str | None:
    """Declare a named fault point; apply the active plan's effect, if any.

    ``key`` is free-form context (a run label, a cache path) that rules can
    ``match`` against.  Returns ``"corrupt_write"`` when the caller — a write
    site — should persist a deliberately torn document, ``None`` otherwise.
    Other effects act here directly: ``crash`` exits the process, ``raise``
    raises :class:`InjectedFault`, ``enospc`` raises ``OSError(ENOSPC)`` and
    ``hang`` sleeps before returning ``None``.

    With no active plan this is one global load, a ``None`` check and a pid
    compare (the pid compare catches fork children that inherited an
    inactive module but carry :data:`ENV_VAR` — they load the plan here).
    """
    global _ENV_PID
    plan = _ACTIVE
    if plan is None:
        pid = os.getpid()
        if pid == _ENV_PID:
            return None
        _ENV_PID = pid
        try:
            plan = load_env_plan()
        except (ValidationError, OSError) as exc:
            print(f"warning: ignoring malformed {ENV_VAR}: {exc}", file=sys.stderr)
            return None
        if plan is None:
            return None
        activate(plan)
    rule = plan.fire(name, key)
    if rule is None:
        return None
    detail = f"{name} ({key})" if key else name
    if rule.effect == "crash":
        os._exit(137)
    if rule.effect == "raise":
        raise InjectedFault(f"injected fault at {detail}")
    if rule.effect == "enospc":
        raise OSError(errno.ENOSPC, f"injected ENOSPC at {detail}")
    if rule.effect == "hang":
        time.sleep(rule.seconds)
        return None
    return rule.effect  # "corrupt_write" — cooperative, applied by the caller


# Import-time activation from the environment: spawned worker processes
# inherit REPRO_FAULTS and pick the plan up here on their own import.  A
# malformed value must never take the production stack down — warn and ignore.
_ENV_PID = os.getpid()
try:
    _env_plan = load_env_plan()
except (ValidationError, OSError) as exc:
    print(f"warning: ignoring malformed {ENV_VAR}: {exc}", file=sys.stderr)
else:
    if _env_plan is not None:
        _ACTIVE = _env_plan
