"""Package version."""

__version__ = "1.4.0"
