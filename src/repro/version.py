"""Package version."""

__version__ = "1.2.0"
