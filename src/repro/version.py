"""Package version."""

__version__ = "1.3.0"
