"""Package version."""

__version__ = "1.5.0"
