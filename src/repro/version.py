"""Package version."""

__version__ = "1.6.0"
