"""SafeLight reproduction library.

This package reproduces the system described in *"SafeLight: Enhancing
Security in Optical Convolutional Neural Network Accelerators"* (DATE 2025):

* ``repro.nn`` — a from-scratch NumPy deep-learning framework used to train
  and evaluate the CNN workloads (CNN_1 / ResNet18 / VGG16 variant).
* ``repro.datasets`` — deterministic synthetic stand-ins for MNIST, CIFAR-10
  and Imagenette.
* ``repro.photonics`` — device-level models of microring resonators (MRs),
  tuning circuits, waveguides, photodetectors and data converters.
* ``repro.thermal`` — a steady-state thermal grid solver used in place of the
  HotSpot tool to model thermal hotspot attacks.
* ``repro.accelerator`` — the CrossLight-style non-coherent optical CNN
  accelerator (CONV/FC blocks of VDP units) with weight-stationary mapping
  and attacked-inference execution.
* ``repro.attacks`` — hardware-trojan actuation and thermal hotspot attack
  models and attack scenario generation.
* ``repro.mitigation`` — L2 regularization and Gaussian noise-aware training
  producing the robust model variants.
* ``repro.analysis`` — the experiment harness that regenerates the paper's
  Table I and Figures 6-9.
"""

from repro.version import __version__

__all__ = ["__version__"]
