"""Gradient-based optimizers: SGD with momentum and Adam.

Both support decoupled ``weight_decay`` applied only to ``conv``/``fc``
weight tensors, which implements the L2 regularization mitigation from the
paper (§V.A) during training.

Both optimizers are *stacked-aware*: a parameter carrying a trainable
stacked value (one weight slab per model variant, see
:meth:`repro.nn.module.Module.load_stacked_state`) is updated slab-by-slab
from its ``stacked_grad`` buffer, and ``weight_decay`` may be a ``(V,)``
array carrying one decay coefficient per variant (the mitigation grid trains
``Original`` without decay next to the L2-regularized variants in the same
stacked pass).  Scalar decay on ordinary parameters behaves exactly as
before.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.nn.tensor import Parameter

__all__ = ["Optimizer", "SGD", "Adam"]

_DECAY_KINDS = ("conv", "fc")


class Optimizer:
    """Base class holding the parameter list and weight-decay policy."""

    def __init__(
        self,
        parameters: Sequence[Parameter],
        lr: float,
        weight_decay: float | np.ndarray = 0.0,
    ):
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        if np.any(np.asarray(weight_decay) < 0):
            raise ValueError(f"weight_decay must be non-negative, got {weight_decay}")
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received an empty parameter list")
        self.lr = float(lr)
        if isinstance(weight_decay, np.ndarray) or np.ndim(weight_decay) > 0:
            # Per-variant decay vector; cast to float32 so the decay term is
            # computed in the same precision as the scalar path.
            self.weight_decay = np.asarray(weight_decay, dtype=np.float32)
        else:
            self.weight_decay = float(weight_decay)

    def zero_grad(self) -> None:
        """Reset all parameter gradients."""
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError

    @staticmethod
    def _target(param: Parameter) -> tuple[np.ndarray, np.ndarray]:
        """The (values, gradient) pair this step updates — stacked when present."""
        if param.stacked_trainable:
            return param.stacked, param.stacked_grad
        return param.data, param.grad

    def _decayed_grad(self, param: Parameter) -> np.ndarray:
        """Gradient with the L2 (weight-decay) term added for weight tensors."""
        data, grad = self._target(param)
        if param.kind not in _DECAY_KINDS:
            return grad
        decay = self.weight_decay
        if isinstance(decay, np.ndarray):
            if not np.any(decay > 0):
                return grad
            if data.ndim < 1 or data.shape[0] != decay.shape[0]:
                raise ValueError(
                    f"per-variant weight_decay has {decay.shape[0]} entries but "
                    f"parameter {param.name!r} update target has shape {data.shape}"
                )
            return grad + decay.reshape((-1,) + (1,) * (data.ndim - 1)) * data
        if decay > 0:
            return grad + decay * data
        return grad

    def _state_for(self, param: Parameter, buffers: list, index: int) -> np.ndarray:
        """Return (lazily re-allocating) the state buffer matching ``param``.

        Attaching or clearing a trainable stacked value changes the update
        target's shape; the state buffer is reset in that case, which matches
        starting a fresh stacked (or unstacked) training run.
        """
        target = self._target(param)[0]
        if buffers[index] is None or buffers[index].shape != target.shape:
            buffers[index] = np.zeros_like(target)
        return buffers[index]


class SGD(Optimizer):
    """Stochastic gradient descent with classical momentum."""

    def __init__(
        self,
        parameters: Sequence[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float | np.ndarray = 0.0,
    ):
        super().__init__(parameters, lr, weight_decay)
        if not 0 <= momentum < 1:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = float(momentum)
        self._velocity: list[np.ndarray | None] = [None] * len(self.parameters)

    def step(self) -> None:
        for index, param in enumerate(self.parameters):
            grad = self._decayed_grad(param)
            if self.momentum > 0:
                velocity = self._state_for(param, self._velocity, index)
                velocity *= self.momentum
                velocity += grad
                update = velocity
            else:
                update = grad
            data, _ = self._target(param)
            data -= self.lr * update


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba) with bias correction."""

    def __init__(
        self,
        parameters: Sequence[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float | np.ndarray = 0.0,
    ):
        super().__init__(parameters, lr, weight_decay)
        beta1, beta2 = betas
        if not 0 <= beta1 < 1 or not 0 <= beta2 < 1:
            raise ValueError(f"betas must lie in [0, 1), got {betas}")
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.eps = float(eps)
        self._step_count = 0
        self._m: list[np.ndarray | None] = [None] * len(self.parameters)
        self._v: list[np.ndarray | None] = [None] * len(self.parameters)

    def step(self) -> None:
        self._step_count += 1
        bias1 = 1.0 - self.beta1**self._step_count
        bias2 = 1.0 - self.beta2**self._step_count
        for index, param in enumerate(self.parameters):
            grad = self._decayed_grad(param)
            m = self._state_for(param, self._m, index)
            v = self._state_for(param, self._v, index)
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad**2
            m_hat = m / bias1
            v_hat = v / bias2
            data, _ = self._target(param)
            data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
