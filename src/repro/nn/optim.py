"""Gradient-based optimizers: SGD with momentum and Adam.

Both support decoupled ``weight_decay`` applied only to ``conv``/``fc``
weight tensors, which implements the L2 regularization mitigation from the
paper (§V.A) during training.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.nn.tensor import Parameter

__all__ = ["Optimizer", "SGD", "Adam"]

_DECAY_KINDS = ("conv", "fc")


class Optimizer:
    """Base class holding the parameter list and weight-decay policy."""

    def __init__(self, parameters: Sequence[Parameter], lr: float, weight_decay: float = 0.0):
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        if weight_decay < 0:
            raise ValueError(f"weight_decay must be non-negative, got {weight_decay}")
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received an empty parameter list")
        self.lr = float(lr)
        self.weight_decay = float(weight_decay)

    def zero_grad(self) -> None:
        """Reset all parameter gradients."""
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError

    def _decayed_grad(self, param: Parameter) -> np.ndarray:
        """Gradient with the L2 (weight-decay) term added for weight tensors."""
        if self.weight_decay > 0 and param.kind in _DECAY_KINDS:
            return param.grad + self.weight_decay * param.data
        return param.grad


class SGD(Optimizer):
    """Stochastic gradient descent with classical momentum."""

    def __init__(
        self,
        parameters: Sequence[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters, lr, weight_decay)
        if not 0 <= momentum < 1:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = float(momentum)
        self._velocity = [np.zeros_like(param.data) for param in self.parameters]

    def step(self) -> None:
        for param, velocity in zip(self.parameters, self._velocity):
            grad = self._decayed_grad(param)
            if self.momentum > 0:
                velocity *= self.momentum
                velocity += grad
                update = velocity
            else:
                update = grad
            param.data -= self.lr * update


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba) with bias correction."""

    def __init__(
        self,
        parameters: Sequence[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters, lr, weight_decay)
        beta1, beta2 = betas
        if not 0 <= beta1 < 1 or not 0 <= beta2 < 1:
            raise ValueError(f"betas must lie in [0, 1), got {betas}")
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.eps = float(eps)
        self._step_count = 0
        self._m = [np.zeros_like(param.data) for param in self.parameters]
        self._v = [np.zeros_like(param.data) for param in self.parameters]

    def step(self) -> None:
        self._step_count += 1
        bias1 = 1.0 - self.beta1**self._step_count
        bias2 = 1.0 - self.beta2**self._step_count
        for param, m, v in zip(self.parameters, self._m, self._v):
            grad = self._decayed_grad(param)
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad**2
            m_hat = m / bias1
            v_hat = v / bias2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
