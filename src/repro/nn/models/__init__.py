"""The three CNN workloads from the paper's Table I.

* :class:`~repro.nn.models.cnn_mnist.MnistCNN` — ``CNN_1``: 2 conv + 3 FC
  layers, MNIST.
* :class:`~repro.nn.models.resnet.ResNet18` — 17 conv + 1 FC layers, CIFAR-10.
* :class:`~repro.nn.models.vgg.VGG16Variant` — 6 conv + 3 FC layers,
  Imagenette.

Each model can be built in the paper's *full-scale* configuration (used for
the Table I parameter inventory) or in a *scaled* configuration small enough
to train on a CPU within seconds, which is what the attack/mitigation
experiments use.  The relative susceptibility trends depend on architecture
shape (conv/FC balance, depth, parameter re-mapping pressure), which the
scaled variants preserve.
"""

from repro.nn.models.cnn_mnist import MnistCNN
from repro.nn.models.resnet import BasicBlock, ResNet18
from repro.nn.models.vgg import VGG16Variant
from repro.nn.models.registry import MODEL_REGISTRY, build_model
from repro.nn.models.table1 import (
    ModelSummary,
    full_scale_summary,
    layer_breakdown,
    summarize_model,
    table1_rows,
)

__all__ = [
    "MnistCNN",
    "ResNet18",
    "BasicBlock",
    "VGG16Variant",
    "MODEL_REGISTRY",
    "build_model",
    "ModelSummary",
    "summarize_model",
    "full_scale_summary",
    "layer_breakdown",
    "table1_rows",
]
