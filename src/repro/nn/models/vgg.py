"""The VGG16 variant with six convolution layers from Table I."""

from __future__ import annotations

import numpy as np

from repro.nn.layers import (
    Conv2D,
    Dropout,
    Flatten,
    GaussianNoise,
    Linear,
    MaxPool2D,
    ReLU,
    Sequential,
)
from repro.nn.module import Module
from repro.utils.rng import default_rng

__all__ = ["VGG16Variant"]

# Full-scale configuration: conv channel widths and FC widths chosen so the
# parameter inventory matches Table I (≈3.9M conv + ≈119.6M FC = 123.5M total
# with a 224x224x3 input): conv plan 64-64-128-256-512-512 with five 2x2
# max-pools, classifier 25088→4096→4096→10.
_PAPER_CONV_CHANNELS = (64, 64, 128, 256, 512, 512)
_PAPER_FC_WIDTHS = (4096, 4096)
_PAPER_IMAGE_SIZE = 224


class VGG16Variant(Module):
    """VGG16 variant: 6 conv layers + 3 FC layers (paper Table I).

    The layer plan interleaves a 2x2 max-pool after every conv layer except
    the first, shrinking the spatial resolution by 32x before the classifier
    (224 → 7 at full scale, 64 → 2 in the scaled configuration).

    Parameters
    ----------
    num_classes, in_channels, image_size:
        Task shape.
    conv_channels:
        Channel width of each of the six conv layers.
    fc_widths:
        Widths of the two hidden FC layers.
    dropout:
        Dropout probability applied after each hidden FC layer.
    noise_std:
        Insert Gaussian-noise layers (noise-aware training).
    rng:
        Seed or generator for weight initialization.
    """

    name = "vgg16_variant"

    def __init__(
        self,
        num_classes: int = 10,
        in_channels: int = 3,
        image_size: int = 64,
        conv_channels: tuple[int, ...] = (16, 16, 32, 32, 64, 64),
        fc_widths: tuple[int, int] = (256, 128),
        dropout: float = 0.0,
        noise_std: float = 0.0,
        rng: np.random.Generator | int | None = None,
    ):
        super().__init__()
        if len(conv_channels) != 6:
            raise ValueError(f"VGG16Variant needs exactly 6 conv widths, got {len(conv_channels)}")
        rng = default_rng(rng)
        self.num_classes = num_classes
        self.in_channels = in_channels
        self.image_size = image_size
        self.noise_std = float(noise_std)

        layers: list[Module] = []
        in_ch = in_channels
        spatial = image_size
        for index, out_ch in enumerate(conv_channels):
            layers.append(Conv2D(in_ch, out_ch, 3, stride=1, padding=1, rng=rng))
            layers.append(ReLU())
            if noise_std > 0:
                layers.append(GaussianNoise(noise_std, rng=int(rng.integers(0, 2**31 - 1))))
            # Pool after every conv except the first, while spatial size allows.
            if index > 0 and spatial >= 2:
                layers.append(MaxPool2D(2))
                spatial //= 2
            in_ch = out_ch
        layers.append(Flatten())

        flat_features = conv_channels[-1] * spatial * spatial
        h1, h2 = fc_widths
        layers.append(Linear(flat_features, h1, rng=rng))
        layers.append(ReLU())
        if dropout > 0:
            layers.append(Dropout(dropout, rng=int(rng.integers(0, 2**31 - 1))))
        if noise_std > 0:
            layers.append(GaussianNoise(noise_std, rng=int(rng.integers(0, 2**31 - 1))))
        layers.append(Linear(h1, h2, rng=rng))
        layers.append(ReLU())
        if dropout > 0:
            layers.append(Dropout(dropout, rng=int(rng.integers(0, 2**31 - 1))))
        if noise_std > 0:
            layers.append(GaussianNoise(noise_std, rng=int(rng.integers(0, 2**31 - 1))))
        layers.append(Linear(h2, num_classes, rng=rng))
        self.net = Sequential(*layers)

    def forward(self, x: np.ndarray) -> np.ndarray:
        return self.net(x)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return self.net.backward(grad_output)

    @classmethod
    def paper_config(cls, noise_std: float = 0.0, rng=None) -> "VGG16Variant":
        """Full-scale configuration used for the Table I inventory (123.5M params)."""
        return cls(
            image_size=_PAPER_IMAGE_SIZE,
            conv_channels=_PAPER_CONV_CHANNELS,
            fc_widths=_PAPER_FC_WIDTHS,
            dropout=0.5,
            noise_std=noise_std,
            rng=rng,
        )

    @classmethod
    def scaled_config(cls, image_size: int = 32, noise_std: float = 0.0, rng=None) -> "VGG16Variant":
        """CPU-friendly configuration used by the attack/mitigation experiments."""
        return cls(
            image_size=image_size,
            conv_channels=(8, 8, 16, 16, 32, 32),
            fc_widths=(128, 64),
            dropout=0.0,
            noise_std=noise_std,
            rng=rng,
        )
