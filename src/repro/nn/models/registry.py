"""Model registry keyed by the workload names used throughout the experiments."""

from __future__ import annotations

from repro.nn.models.cnn_mnist import MnistCNN
from repro.nn.models.resnet import ResNet18
from repro.nn.models.vgg import VGG16Variant
from repro.nn.module import Module
from repro.utils.validation import check_in_choices

__all__ = ["MODEL_REGISTRY", "build_model"]

MODEL_REGISTRY = {
    "cnn_mnist": MnistCNN,
    "resnet18": ResNet18,
    "vgg16_variant": VGG16Variant,
}

#: Dataset associated with each workload (paper Table I).
MODEL_DATASETS = {
    "cnn_mnist": "mnist",
    "resnet18": "cifar10",
    "vgg16_variant": "imagenette",
}


def build_model(
    name: str,
    profile: str = "scaled",
    noise_std: float = 0.0,
    rng=None,
    **kwargs,
) -> Module:
    """Build a workload model by name.

    Parameters
    ----------
    name:
        One of ``cnn_mnist``, ``resnet18``, ``vgg16_variant``.
    profile:
        ``"paper"`` builds the full-scale Table I configuration;
        ``"scaled"`` builds the CPU-friendly configuration used by the
        attack/mitigation experiments.
    noise_std:
        Gaussian activation-noise standard deviation (noise-aware training).
    rng:
        Seed or generator for weight initialization.
    kwargs:
        Extra arguments forwarded to the profile constructor (e.g.
        ``image_size``).
    """
    key = check_in_choices(name, "name", MODEL_REGISTRY)
    profile = check_in_choices(profile, "profile", ("paper", "scaled"))
    model_cls = MODEL_REGISTRY[key]
    if profile == "paper":
        return model_cls.paper_config(noise_std=noise_std, rng=rng, **kwargs)
    return model_cls.scaled_config(noise_std=noise_std, rng=rng, **kwargs)
