"""``CNN_1``: the simple MNIST classifier from Table I (2 conv + 3 FC layers)."""

from __future__ import annotations

import numpy as np

from repro.nn.layers import (
    Conv2D,
    Flatten,
    GaussianNoise,
    Linear,
    MaxPool2D,
    ReLU,
    Sequential,
)
from repro.nn.module import Module
from repro.utils.rng import default_rng

__all__ = ["MnistCNN"]


class MnistCNN(Module):
    """The paper's ``CNN_1`` workload.

    Architecture (full scale, 28x28x1 input):

    ``conv(1→16, 3x3) → ReLU → maxpool(2)`` →
    ``conv(16→16, 3x3) → ReLU → maxpool(2)`` →
    ``flatten → fc(784→50) → ReLU → fc(50→40) → ReLU → fc(40→10)``

    which yields ≈2.5K conv parameters and ≈41.7K FC parameters, matching the
    44.2K total reported in Table I.

    Parameters
    ----------
    num_classes:
        Output classes (10).
    in_channels:
        Input channels (1 for MNIST).
    image_size:
        Square input resolution (28).
    conv_channels:
        Channel widths of the two conv layers.
    hidden_units:
        Widths of the first two FC layers.
    noise_std:
        If positive, insert :class:`GaussianNoise` layers after each
        conv/FC stage (noise-aware training, paper §V.B).
    rng:
        Seed or generator for weight initialization.
    """

    name = "cnn_mnist"

    def __init__(
        self,
        num_classes: int = 10,
        in_channels: int = 1,
        image_size: int = 28,
        conv_channels: tuple[int, int] = (16, 16),
        hidden_units: tuple[int, int] = (50, 40),
        noise_std: float = 0.0,
        rng: np.random.Generator | int | None = None,
    ):
        super().__init__()
        rng = default_rng(rng)
        self.num_classes = num_classes
        self.in_channels = in_channels
        self.image_size = image_size
        self.noise_std = float(noise_std)

        c1, c2 = conv_channels
        h1, h2 = hidden_units
        feature_size = image_size // 4  # two 2x2 max-pools
        flat_features = c2 * feature_size * feature_size

        layers: list[Module] = [
            Conv2D(in_channels, c1, kernel_size=3, padding=1, rng=rng),
            ReLU(),
            MaxPool2D(2),
        ]
        layers += self._maybe_noise(rng)
        layers += [
            Conv2D(c1, c2, kernel_size=3, padding=1, rng=rng),
            ReLU(),
            MaxPool2D(2),
        ]
        layers += self._maybe_noise(rng)
        layers += [
            Flatten(),
            Linear(flat_features, h1, rng=rng),
            ReLU(),
        ]
        layers += self._maybe_noise(rng)
        layers += [
            Linear(h1, h2, rng=rng),
            ReLU(),
        ]
        layers += self._maybe_noise(rng)
        layers += [Linear(h2, num_classes, rng=rng)]
        self.net = Sequential(*layers)

    def _maybe_noise(self, rng: np.random.Generator) -> list[Module]:
        if self.noise_std > 0:
            return [GaussianNoise(self.noise_std, rng=int(rng.integers(0, 2**31 - 1)))]
        return []

    def forward(self, x: np.ndarray) -> np.ndarray:
        return self.net(x)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return self.net.backward(grad_output)

    @classmethod
    def paper_config(cls, noise_std: float = 0.0, rng=None) -> "MnistCNN":
        """Full-scale configuration used for the Table I inventory."""
        return cls(noise_std=noise_std, rng=rng)

    @classmethod
    def scaled_config(cls, image_size: int = 28, noise_std: float = 0.0, rng=None) -> "MnistCNN":
        """CPU-friendly configuration used by the attack/mitigation experiments.

        ``CNN_1`` is already small, so the scaled configuration only narrows
        the first FC layer slightly.
        """
        return cls(
            image_size=image_size,
            conv_channels=(8, 16),
            hidden_units=(48, 32),
            noise_std=noise_std,
            rng=rng,
        )
