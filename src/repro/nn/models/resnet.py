"""ResNet18 for CIFAR-10 (17 conv layers + 1 FC layer, paper Table I)."""

from __future__ import annotations

import numpy as np

from repro.nn.layers import (
    BatchNorm2D,
    Conv2D,
    GaussianNoise,
    GlobalAvgPool2D,
    Linear,
    ReLU,
    Sequential,
)
from repro.nn.module import Module
from repro.utils.rng import default_rng

__all__ = ["BasicBlock", "ResNet18"]


class BasicBlock(Module):
    """Standard two-conv residual block with an optional projection shortcut.

    ``out = relu(bn2(conv2(relu(bn1(conv1(x))))) + shortcut(x))``
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        stride: int = 1,
        noise_std: float = 0.0,
        rng: np.random.Generator | int | None = None,
    ):
        super().__init__()
        rng = default_rng(rng)
        self.conv1 = Conv2D(in_channels, out_channels, 3, stride=stride, padding=1,
                            bias=False, rng=rng)
        self.bn1 = BatchNorm2D(out_channels)
        self.relu1 = ReLU()
        self.conv2 = Conv2D(out_channels, out_channels, 3, stride=1, padding=1,
                            bias=False, rng=rng)
        self.bn2 = BatchNorm2D(out_channels)
        self.relu2 = ReLU()
        self.noise = (
            GaussianNoise(noise_std, rng=int(rng.integers(0, 2**31 - 1)))
            if noise_std > 0
            else None
        )
        if stride != 1 or in_channels != out_channels:
            self.shortcut_conv = Conv2D(in_channels, out_channels, 1, stride=stride,
                                        padding=0, bias=False, rng=rng)
            self.shortcut_bn = BatchNorm2D(out_channels)
        else:
            self.shortcut_conv = None
            self.shortcut_bn = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        main = self.relu1(self.bn1(self.conv1(x)))
        main = self.bn2(self.conv2(main))
        if self.shortcut_conv is not None:
            residual = self.shortcut_bn(self.shortcut_conv(x))
        else:
            residual = x
        out = self.relu2(main + residual)
        if self.noise is not None:
            out = self.noise(out)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad_output = np.asarray(grad_output, dtype=np.float32)
        if self.noise is not None:
            grad_output = self.noise.backward(grad_output)
        grad_sum = self.relu2.backward(grad_output)
        # Branch 1: main path.
        grad_main = self.bn2.backward(grad_sum)
        grad_main = self.conv2.backward(grad_main)
        grad_main = self.relu1.backward(grad_main)
        grad_main = self.bn1.backward(grad_main)
        grad_main = self.conv1.backward(grad_main)
        # Branch 2: shortcut path.
        if self.shortcut_conv is not None:
            grad_short = self.shortcut_bn.backward(grad_sum)
            grad_short = self.shortcut_conv.backward(grad_short)
        else:
            grad_short = grad_sum
        return grad_main + grad_short


class ResNet18(Module):
    """ResNet-18 with a CIFAR-style 3x3 stem.

    The network has 1 stem conv + 8 basic blocks x 2 convs = 17 convolution
    layers (matching Table I) plus a single FC classifier.

    Parameters
    ----------
    num_classes, in_channels:
        Task shape (10 classes, RGB input).
    base_width:
        Channels of the first stage; stages use ``base_width * (1, 2, 4, 8)``.
        The paper-scale model uses 64; the scaled experiments use 8.
    noise_std:
        Insert Gaussian-noise layers inside every residual block
        (noise-aware training).
    rng:
        Seed or generator for weight initialization.
    """

    name = "resnet18"

    def __init__(
        self,
        num_classes: int = 10,
        in_channels: int = 3,
        base_width: int = 64,
        noise_std: float = 0.0,
        rng: np.random.Generator | int | None = None,
    ):
        super().__init__()
        rng = default_rng(rng)
        self.num_classes = num_classes
        self.in_channels = in_channels
        self.base_width = base_width
        self.noise_std = float(noise_std)

        widths = [base_width, base_width * 2, base_width * 4, base_width * 8]
        self.stem_conv = Conv2D(in_channels, widths[0], 3, stride=1, padding=1,
                                bias=False, rng=rng)
        self.stem_bn = BatchNorm2D(widths[0])
        self.stem_relu = ReLU()

        blocks: list[Module] = []
        in_ch = widths[0]
        for stage_index, width in enumerate(widths):
            for block_index in range(2):
                stride = 2 if (stage_index > 0 and block_index == 0) else 1
                blocks.append(
                    BasicBlock(in_ch, width, stride=stride, noise_std=noise_std, rng=rng)
                )
                in_ch = width
        self.blocks = Sequential(*blocks)
        self.pool = GlobalAvgPool2D()
        self.fc = Linear(widths[-1], num_classes, rng=rng)

    def forward(self, x: np.ndarray) -> np.ndarray:
        out = self.stem_relu(self.stem_bn(self.stem_conv(x)))
        out = self.blocks(out)
        out = self.pool(out)
        return self.fc(out)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad = self.fc.backward(grad_output)
        grad = self.pool.backward(grad)
        grad = self.blocks.backward(grad)
        grad = self.stem_relu.backward(grad)
        grad = self.stem_bn.backward(grad)
        return self.stem_conv.backward(grad)

    @classmethod
    def paper_config(cls, noise_std: float = 0.0, rng=None) -> "ResNet18":
        """Full-scale ResNet-18 (base width 64) used for the Table I inventory."""
        return cls(base_width=64, noise_std=noise_std, rng=rng)

    @classmethod
    def scaled_config(cls, noise_std: float = 0.0, rng=None) -> "ResNet18":
        """CPU-friendly ResNet-18 (base width 8) used by the experiments."""
        return cls(base_width=8, noise_std=noise_std, rng=rng)
