"""Parameter inventories reproducing the paper's Table I.

Table I lists, for each CNN workload, the number of CONV layers, CONV
parameters, FC layers, FC parameters and total parameters.  These functions
compute the same breakdown directly from a model instance's parameters, and
:func:`table1_rows` assembles the full table (paper value vs. value computed
from our full-scale model definitions).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.nn.module import Module

__all__ = [
    "ModelSummary",
    "PAPER_TABLE1",
    "layer_breakdown",
    "summarize_model",
    "full_scale_summary",
    "table1_rows",
]


@dataclass(frozen=True)
class ModelSummary:
    """Parameter inventory of one CNN workload (one Table I column)."""

    name: str
    dataset: str
    conv_layers: int
    conv_parameters: int
    fc_layers: int
    fc_parameters: int

    @property
    def total_parameters(self) -> int:
        return self.conv_parameters + self.fc_parameters

    def as_dict(self) -> dict[str, int | str]:
        return {
            "name": self.name,
            "dataset": self.dataset,
            "conv_layers": self.conv_layers,
            "conv_parameters": self.conv_parameters,
            "fc_layers": self.fc_layers,
            "fc_parameters": self.fc_parameters,
            "total_parameters": self.total_parameters,
        }


#: The values printed in the paper's Table I (parameters in absolute counts).
PAPER_TABLE1: dict[str, ModelSummary] = {
    "cnn_mnist": ModelSummary(
        name="CNN_1", dataset="MNIST",
        conv_layers=2, conv_parameters=2_600, fc_layers=3, fc_parameters=41_600,
    ),
    "resnet18": ModelSummary(
        name="ResNet18", dataset="CIFAR10",
        conv_layers=17, conv_parameters=4_700_000, fc_layers=1, fc_parameters=5_100,
    ),
    "vgg16_variant": ModelSummary(
        name="VGG16_v", dataset="Imagenette",
        conv_layers=6, conv_parameters=3_900_000, fc_layers=3, fc_parameters=119_600_000,
    ),
}

_DATASET_BY_MODEL = {
    "cnn_mnist": "MNIST",
    "resnet18": "CIFAR10",
    "vgg16_variant": "Imagenette",
}


def layer_breakdown(model: Module) -> dict[str, dict[str, int]]:
    """Per-kind layer and parameter counts for a model.

    Bias parameters are attributed to the layer that owns them by walking the
    named parameters: a ``bias`` immediately following a ``conv``/``fc``
    weight in the same module is counted with that weight.

    Projection-shortcut (1x1 downsample) convolutions in residual blocks are
    counted in the parameter totals but not in the layer count, matching the
    paper's convention of 17 convolution layers for ResNet18.
    """
    counts = {"conv": {"layers": 0, "parameters": 0},
              "fc": {"layers": 0, "parameters": 0},
              "other": {"layers": 0, "parameters": 0}}
    named = model.named_parameters()
    last_weight_kind_by_module: dict[str, str] = {}
    for name, param in named:
        module_path = name.rsplit(".", 1)[0]
        if param.kind in ("conv", "fc"):
            if "shortcut" not in name:
                counts[param.kind]["layers"] += 1
            counts[param.kind]["parameters"] += param.size
            last_weight_kind_by_module[module_path] = param.kind
        elif param.kind == "bias":
            owner_kind = last_weight_kind_by_module.get(module_path, "other")
            counts[owner_kind]["parameters"] += param.size
        else:
            counts["other"]["layers"] += 1
            counts["other"]["parameters"] += param.size
    return counts


def summarize_model(model: Module, dataset: str = "") -> ModelSummary:
    """Build a :class:`ModelSummary` from a live model instance."""
    breakdown = layer_breakdown(model)
    name = getattr(model, "name", type(model).__name__)
    return ModelSummary(
        name=name,
        dataset=dataset or _DATASET_BY_MODEL.get(name, ""),
        conv_layers=breakdown["conv"]["layers"],
        conv_parameters=breakdown["conv"]["parameters"],
        fc_layers=breakdown["fc"]["layers"],
        fc_parameters=breakdown["fc"]["parameters"],
    )


def full_scale_summary(model_name: str) -> ModelSummary:
    """Summary of the full-scale (paper configuration) model ``model_name``."""
    from repro.nn.models.registry import build_model

    model = build_model(model_name, profile="paper")
    return summarize_model(model, dataset=_DATASET_BY_MODEL.get(model_name, ""))


def table1_rows(include_measured: bool = True) -> list[dict[str, object]]:
    """Assemble Table I as a list of row dictionaries.

    Each row contains the paper's reported values and (optionally) the values
    measured from this repository's full-scale model definitions.
    """
    rows: list[dict[str, object]] = []
    for model_name, paper in PAPER_TABLE1.items():
        row: dict[str, object] = {
            "model": paper.name,
            "dataset": paper.dataset,
            "paper_conv_layers": paper.conv_layers,
            "paper_conv_parameters": paper.conv_parameters,
            "paper_fc_layers": paper.fc_layers,
            "paper_fc_parameters": paper.fc_parameters,
            "paper_total_parameters": paper.total_parameters,
        }
        if include_measured:
            measured = full_scale_summary(model_name)
            row.update(
                {
                    "measured_conv_layers": measured.conv_layers,
                    "measured_conv_parameters": measured.conv_parameters,
                    "measured_fc_layers": measured.fc_layers,
                    "measured_fc_parameters": measured.fc_parameters,
                    "measured_total_parameters": measured.total_parameters,
                }
            )
        rows.append(row)
    return rows
