"""2-D convolution layer implemented via im2col."""

from __future__ import annotations

import numpy as np

from repro.nn import init
from repro.nn.backend import active_backend
from repro.nn.module import Module
from repro.nn.tensor import Parameter
from repro.utils.rng import default_rng
from repro.utils.validation import check_positive_int

__all__ = ["Conv2D"]


class Conv2D(Module):
    """2-D convolution over NCHW inputs.

    The kernel tensor has shape ``(out_channels, in_channels, kh, kw)`` and is
    tagged ``kind="conv"`` so the accelerator maps it onto the CONV block's
    MR banks.

    Parameters
    ----------
    in_channels, out_channels:
        Channel counts.
    kernel_size:
        Square kernel side (int) or ``(kh, kw)`` tuple.
    stride, padding:
        Convolution stride and symmetric zero padding.
    bias:
        Include per-output-channel bias.
    rng:
        Seed or generator for weight initialization.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int | tuple[int, int] = 3,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        rng: np.random.Generator | int | None = None,
    ):
        super().__init__()
        self.in_channels = check_positive_int(in_channels, "in_channels")
        self.out_channels = check_positive_int(out_channels, "out_channels")
        if isinstance(kernel_size, int):
            kernel_size = (kernel_size, kernel_size)
        self.kernel_size = (
            check_positive_int(kernel_size[0], "kernel_size[0]"),
            check_positive_int(kernel_size[1], "kernel_size[1]"),
        )
        self.stride = check_positive_int(stride, "stride")
        if padding < 0:
            raise ValueError(f"padding must be non-negative, got {padding}")
        self.padding = int(padding)
        rng = default_rng(rng)
        weight_shape = (out_channels, in_channels, *self.kernel_size)
        self.weight = Parameter(init.he_normal(weight_shape, rng), kind="conv")
        self.bias = Parameter(init.zeros((out_channels,)), kind="bias") if bias else None
        self._cache: tuple[np.ndarray, tuple[int, int, int, int], int, int] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float32)
        if self.training and self.weight.stacked_trainable:
            return self._forward_stacked_train(x)
        if x.ndim == 5 or self.weight.stacked is not None:
            return self._forward_ensemble(x)
        if x.ndim != 4 or x.shape[1] != self.in_channels:
            raise ValueError(
                f"Conv2D expects input (N, {self.in_channels}, H, W), got {x.shape}"
            )
        kh, kw = self.kernel_size
        backend = active_backend()
        # The patch matrix is cached for backward, so no transient workspace.
        cols, out_h, out_w = backend.im2col(x, kh, kw, self.stride, self.padding)
        weight_matrix = self.weight.data.reshape(self.out_channels, -1)
        out = backend.matmul(cols, weight_matrix.T)
        if self.bias is not None:
            out = out + self.bias.data
        batch = x.shape[0]
        out = out.reshape(batch, out_h, out_w, self.out_channels).transpose(0, 3, 1, 2)
        self._cache = (cols, x.shape, out_h, out_w)
        return out

    def _forward_ensemble(self, x: np.ndarray) -> np.ndarray:
        """Scenario-stacked forward over ``(S?, N, C, H, W)`` inputs.

        While the activations are still shared across scenarios (a 4-D input,
        or a 5-D input with a singleton scenario axis), im2col runs **once**
        per input batch and the shared patch matrix is contracted against all
        ``S`` stacked weight sets as a single batched matmul.  Once the
        activations have diverged, the scenario axis is folded into the batch
        axis for the unfold and each scenario's patches meet its own weight
        set in the batched contraction.
        """
        if x.ndim not in (4, 5) or x.shape[-3] != self.in_channels:
            raise ValueError(
                f"Conv2D expects input (N, {self.in_channels}, H, W) or "
                f"(S, N, {self.in_channels}, H, W), got {x.shape}"
            )
        self._cache = None  # ensemble forwards are inference-only
        backend = active_backend()
        stacked = self.weight.stacked
        kh, kw = self.kernel_size
        if x.ndim == 5 and x.shape[0] == 1:
            x = x[0]  # shared activations: keep the single-im2col fast path

        # Inference-only path: the patch matrix is consumed by the matmul
        # below and never cached, so backends may reuse a keyed workspace.
        if x.ndim == 4:
            batch = x.shape[0]
            cols, out_h, out_w = backend.im2col(
                x, kh, kw, self.stride, self.padding, transient=True
            )
            if stacked is None:
                out = backend.matmul(
                    cols, self.weight.data.reshape(self.out_channels, -1).T
                )[None]
            else:
                weight_matrix = stacked.reshape(stacked.shape[0], self.out_channels, -1)
                out = backend.stacked_matmul(cols[None], weight_matrix.transpose(0, 2, 1))
        else:
            scenarios, batch = x.shape[:2]
            cols, out_h, out_w = backend.im2col(
                x.reshape((scenarios * batch,) + x.shape[2:]),
                kh, kw, self.stride, self.padding,
                transient=True,
            )
            cols = cols.reshape(scenarios, batch * out_h * out_w, -1)
            if stacked is None:
                weight_matrix = self.weight.data.reshape(1, self.out_channels, -1)
            else:
                weight_matrix = stacked.reshape(stacked.shape[0], self.out_channels, -1)
            out = backend.stacked_matmul(cols, weight_matrix.transpose(0, 2, 1))
        if self.bias is not None:
            if self.bias.stacked is not None:
                out = out + self.bias.stacked[:, None, :]
            else:
                out = out + self.bias.data
        lead = out.shape[0]
        return out.reshape(lead, batch, out_h, out_w, self.out_channels).transpose(
            0, 1, 4, 2, 3
        )

    def _forward_stacked_train(self, x: np.ndarray) -> np.ndarray:
        """Variant-stacked training forward over ``(V?, N, C, H, W)`` inputs.

        A shared 4-D input — the raw image batch, identical for every variant
        (downstream activations are always 5-D in stacked training, even for
        a single variant) — is unfolded **once** and the patch matrix meets
        all ``V`` stacked kernels in one batched matmul; since nothing sits
        upstream of the raw input, :meth:`backward` also skips the (discarded)
        input gradient for it.  A diverged 5-D input folds the variant axis
        into the batch axis for the unfold, giving each variant its own patch
        slab.  Both shapes cache the patch matrix for :meth:`backward`.
        """
        stacked = self.weight.stacked
        variants = stacked.shape[0]
        if x.ndim not in (4, 5) or x.shape[-3] != self.in_channels:
            raise ValueError(
                f"Conv2D expects input (N, {self.in_channels}, H, W) or "
                f"(V, N, {self.in_channels}, H, W), got {x.shape}"
            )
        kh, kw = self.kernel_size
        backend = active_backend()
        weight_matrix = stacked.reshape(variants, self.out_channels, -1)
        # Training caches the patch matrix for backward — never transient.
        if x.ndim == 4:
            batch = x.shape[0]
            cols, out_h, out_w = backend.im2col(x, kh, kw, self.stride, self.padding)
            out = backend.stacked_matmul(cols[None], weight_matrix.transpose(0, 2, 1))
            shared_input = True
            input_shape = x.shape
        else:
            if x.shape[0] != variants:
                raise ValueError(
                    f"stacked input has {x.shape[0]} variants, weights have {variants}"
                )
            batch = x.shape[1]
            cols, out_h, out_w = backend.im2col(
                x.reshape((variants * batch,) + x.shape[2:]),
                kh, kw, self.stride, self.padding,
            )
            cols = cols.reshape(variants, batch * out_h * out_w, -1)
            out = backend.stacked_matmul(cols, weight_matrix.transpose(0, 2, 1))
            shared_input = False
            input_shape = x.shape
        if self.bias is not None:
            out = out + self.bias.stacked[:, None, :]
        self._cache = ("stacked", cols, shared_input, input_shape, out_h, out_w)
        return out.reshape(variants, batch, out_h, out_w, self.out_channels).transpose(
            0, 1, 4, 2, 3
        )

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        if isinstance(self._cache[0], str):  # "stacked" marker
            return self._backward_stacked(np.asarray(grad_output, dtype=np.float32))
        cols, input_shape, out_h, out_w = self._cache
        grad_output = np.asarray(grad_output, dtype=np.float32)
        backend = active_backend()
        batch = input_shape[0]
        # (N, F, OH, OW) -> (N*OH*OW, F)
        grad_matrix = grad_output.transpose(0, 2, 3, 1).reshape(batch * out_h * out_w, -1)
        weight_matrix = self.weight.data.reshape(self.out_channels, -1)
        self.weight.grad += backend.matmul(grad_matrix.T, cols).reshape(
            self.weight.data.shape
        )
        if self.bias is not None:
            self.bias.grad += grad_matrix.sum(axis=0)
        grad_cols = backend.matmul(grad_matrix, weight_matrix)
        kh, kw = self.kernel_size
        return backend.col2im(grad_cols, input_shape, kh, kw, self.stride, self.padding)

    def _backward_stacked(self, grad_output: np.ndarray) -> np.ndarray:
        """Backward of :meth:`_forward_stacked_train`.

        Accumulates one kernel/bias gradient slab per variant and returns the
        per-variant input gradient ``(V, N, C, H, W)``.  A shared 4-D input
        is the raw image batch (nothing upstream consumes its gradient), so
        that case skips the input-gradient matmul/col2im entirely and
        returns ``None``.
        """
        _, cols, shared_input, input_shape, out_h, out_w = self._cache
        backend = active_backend()
        variants = self.weight.stacked.shape[0]
        batch = input_shape[0] if shared_input else input_shape[1]
        # (V, N, F, OH, OW) -> (V, N*OH*OW, F)
        grad_matrix = grad_output.transpose(0, 1, 3, 4, 2).reshape(
            variants, batch * out_h * out_w, -1
        )
        self.weight.stacked_grad += backend.stacked_matmul(
            grad_matrix.transpose(0, 2, 1), cols
        ).reshape(self.weight.stacked.shape)
        if self.bias is not None:
            self.bias.stacked_grad += grad_matrix.sum(axis=1)
        if shared_input:
            return None
        weight_matrix = self.weight.stacked.reshape(variants, self.out_channels, -1)
        grad_cols = backend.stacked_matmul(grad_matrix, weight_matrix)
        kh, kw = self.kernel_size
        folded_shape = (variants * batch,) + tuple(input_shape[2:])
        grad_input = backend.col2im(
            grad_cols.reshape(variants * batch * out_h * out_w, -1),
            folded_shape, kh, kw, self.stride, self.padding,
        )
        return grad_input.reshape((variants, batch) + grad_input.shape[1:])

    def output_shape(self, input_hw: tuple[int, int]) -> tuple[int, int, int]:
        """Return ``(out_channels, out_h, out_w)`` for an input of ``(h, w)``."""
        kh, kw = self.kernel_size
        out_h = (input_hw[0] + 2 * self.padding - kh) // self.stride + 1
        out_w = (input_hw[1] + 2 * self.padding - kw) // self.stride + 1
        return self.out_channels, out_h, out_w

    def __repr__(self) -> str:
        return (
            f"Conv2D({self.in_channels}, {self.out_channels}, "
            f"kernel_size={self.kernel_size}, stride={self.stride}, padding={self.padding})"
        )
