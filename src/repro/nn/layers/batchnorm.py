"""Batch normalization over NCHW feature maps."""

from __future__ import annotations

import numpy as np

from repro.nn import init
from repro.nn.backend import active_backend
from repro.nn.module import Module
from repro.nn.tensor import Parameter
from repro.utils.validation import check_positive_int

__all__ = ["BatchNorm2D"]


class BatchNorm2D(Module):
    """Per-channel batch normalization with running statistics.

    During training the batch mean/variance are used and the running
    statistics are updated with exponential smoothing (``momentum``); during
    inference the running statistics are used.  Scale (``gamma``) and shift
    (``beta``) parameters are tagged ``kind="other"`` — CrossLight-style
    accelerators keep them in the electronic post-processing stage, so they
    are never mapped onto MRs and HT attacks do not corrupt them.
    """

    _buffer_names = ("running_mean", "running_var")

    def __init__(self, num_features: int, momentum: float = 0.1, eps: float = 1e-5):
        super().__init__()
        self.num_features = check_positive_int(num_features, "num_features")
        if not 0 < momentum < 1:
            raise ValueError(f"momentum must be in (0, 1), got {momentum}")
        self.momentum = float(momentum)
        self.eps = float(eps)
        self.gamma = Parameter(init.ones((num_features,)), kind="other")
        self.beta = Parameter(init.zeros((num_features,)), kind="other")
        self.running_mean = np.zeros(num_features, dtype=np.float32)
        self.running_var = np.ones(num_features, dtype=np.float32)
        #: Per-variant running statistics ``(V, C)`` used while the layer is
        #: part of a variant-stacked training grid (attached by the stacked
        #: grid trainer alongside the trainable stacked gamma/beta).
        self.stacked_running_mean: np.ndarray | None = None
        self.stacked_running_var: np.ndarray | None = None
        self._cache = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float32)
        if x.ndim == 5:
            if self.training and self.gamma.stacked_trainable:
                return self._forward_stacked_train(x)
            # Scenario-stacked ensemble input: inference statistics are fixed,
            # so each scenario normalizes independently by folding the
            # scenario axis into the batch axis.  Training statistics would
            # mix scenarios, which has no physical counterpart — reject it.
            if self.training:
                raise RuntimeError(
                    "BatchNorm2D cannot train on scenario-stacked (5-D) inputs; "
                    "ensemble forwards are inference-only"
                )
            if self.gamma.stacked is not None or self.stacked_running_mean is not None:
                return self._forward_stacked_eval(x)
            from repro.nn.ensemble import fold_scenarios, unfold_scenarios

            folded, lead = fold_scenarios(x)
            out = self.forward(folded)
            self._cache = None
            return unfold_scenarios(out, lead)
        if x.ndim != 4 or x.shape[1] != self.num_features:
            raise ValueError(
                f"BatchNorm2D expects (N, {self.num_features}, H, W), got {x.shape}"
            )
        if self.training:
            mean = x.mean(axis=(0, 2, 3))
            var = x.var(axis=(0, 2, 3))
            self.running_mean = (
                (1.0 - self.momentum) * self.running_mean + self.momentum * mean
            ).astype(np.float32)
            self.running_var = (
                (1.0 - self.momentum) * self.running_var + self.momentum * var
            ).astype(np.float32)
        else:
            mean = self.running_mean
            var = self.running_var
        inv_std = 1.0 / np.sqrt(var + self.eps)
        x_hat = (x - mean[None, :, None, None]) * inv_std[None, :, None, None]
        out = self.gamma.data[None, :, None, None] * x_hat + self.beta.data[None, :, None, None]
        self._cache = (x_hat, inv_std, x.shape)
        return out

    def _forward_stacked_train(self, x: np.ndarray) -> np.ndarray:
        """Variant-stacked training forward over ``(V, N, C, H, W)`` inputs.

        Every variant normalizes with *its own* batch statistics and updates
        its own running-statistics slab; the per-variant reductions run as a
        short loop over contiguous slabs so each variant's statistics are
        bit-identical to a standalone 4-D forward of that variant.
        """
        if x.shape[2] != self.num_features:
            raise ValueError(
                f"BatchNorm2D expects (V, N, {self.num_features}, H, W), got {x.shape}"
            )
        variants = x.shape[0]
        mean, var = active_backend().stacked_moments(x)
        if self.stacked_running_mean is None:
            self.stacked_running_mean = np.broadcast_to(
                self.running_mean, (variants, self.num_features)
            ).astype(np.float32).copy()
            self.stacked_running_var = np.broadcast_to(
                self.running_var, (variants, self.num_features)
            ).astype(np.float32).copy()
        self.stacked_running_mean = (
            (1.0 - self.momentum) * self.stacked_running_mean + self.momentum * mean
        ).astype(np.float32)
        self.stacked_running_var = (
            (1.0 - self.momentum) * self.stacked_running_var + self.momentum * var
        ).astype(np.float32)
        inv_std = 1.0 / np.sqrt(var + self.eps)
        expand = (slice(None), None, slice(None), None, None)
        x_hat = (x - mean[expand]) * inv_std[expand]
        out = self.gamma.stacked[expand] * x_hat + self.beta.stacked[expand]
        self._cache = (x_hat, inv_std, x.shape)
        return out

    def _forward_stacked_eval(self, x: np.ndarray) -> np.ndarray:
        """Inference on stacked inputs with per-variant parameters/statistics."""
        expand = (slice(None), None, slice(None), None, None)
        mean = (
            self.stacked_running_mean
            if self.stacked_running_mean is not None
            else self.running_mean[None]
        )
        var = (
            self.stacked_running_var
            if self.stacked_running_var is not None
            else self.running_var[None]
        )
        gamma = self.gamma.stacked if self.gamma.stacked is not None else self.gamma.data[None]
        beta = self.beta.stacked if self.beta.stacked is not None else self.beta.data[None]
        inv_std = 1.0 / np.sqrt(var + self.eps)
        x_hat = (x - mean[expand]) * inv_std[expand]
        self._cache = None
        return gamma[expand] * x_hat + beta[expand]

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        x_hat, inv_std, input_shape = self._cache
        grad_output = np.asarray(grad_output, dtype=np.float32)
        if len(input_shape) == 5:
            return self._backward_stacked(grad_output)
        batch, _, height, width = input_shape
        count = batch * height * width

        self.gamma.grad += (grad_output * x_hat).sum(axis=(0, 2, 3))
        self.beta.grad += grad_output.sum(axis=(0, 2, 3))

        grad_xhat = grad_output * self.gamma.data[None, :, None, None]
        if self.training:
            # Full batch-norm backward (batch statistics depend on x).
            sum_grad = grad_xhat.sum(axis=(0, 2, 3), keepdims=True)
            sum_grad_xhat = (grad_xhat * x_hat).sum(axis=(0, 2, 3), keepdims=True)
            grad_input = (
                grad_xhat - sum_grad / count - x_hat * sum_grad_xhat / count
            ) * inv_std[None, :, None, None]
        else:
            grad_input = grad_xhat * inv_std[None, :, None, None]
        return grad_input.astype(np.float32)

    def _backward_stacked(self, grad_output: np.ndarray) -> np.ndarray:
        """Backward of :meth:`_forward_stacked_train` (per-variant statistics)."""
        x_hat, inv_std, input_shape = self._cache
        variants, batch, _, height, width = input_shape
        count = batch * height * width
        expand = (slice(None), None, slice(None), None, None)

        self.gamma.stacked_grad += np.stack(
            [(grad_output[v] * x_hat[v]).sum(axis=(0, 2, 3)) for v in range(variants)]
        )
        self.beta.stacked_grad += np.stack(
            [grad_output[v].sum(axis=(0, 2, 3)) for v in range(variants)]
        )

        grad_xhat = grad_output * self.gamma.stacked[expand]
        sum_grad = np.stack(
            [grad_xhat[v].sum(axis=(0, 2, 3)) for v in range(variants)]
        )
        sum_grad_xhat = np.stack(
            [(grad_xhat[v] * x_hat[v]).sum(axis=(0, 2, 3)) for v in range(variants)]
        )
        grad_input = (
            grad_xhat - sum_grad[expand] / count - x_hat * sum_grad_xhat[expand] / count
        ) * inv_std[expand]
        return grad_input.astype(np.float32)

    def __repr__(self) -> str:
        return f"BatchNorm2D(num_features={self.num_features}, momentum={self.momentum})"
