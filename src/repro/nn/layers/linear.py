"""Fully-connected (dense) layer."""

from __future__ import annotations

import numpy as np

from repro.nn import init
from repro.nn.backend import active_backend
from repro.nn.module import Module
from repro.nn.tensor import Parameter
from repro.utils.rng import default_rng
from repro.utils.validation import check_positive_int

__all__ = ["Linear"]


class Linear(Module):
    """Affine transform ``y = x @ W.T + b``.

    The weight matrix is stored as ``(out_features, in_features)``; its rows
    are the per-output-neuron weight vectors that the accelerator maps onto
    MR banks in the FC block (``kind="fc"``).

    Parameters
    ----------
    in_features, out_features:
        Input / output dimensionality.
    bias:
        Include a bias vector (kept in the electronic domain, never mapped to
        MRs).
    rng:
        Seed or generator for weight initialization.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: np.random.Generator | int | None = None,
    ):
        super().__init__()
        self.in_features = check_positive_int(in_features, "in_features")
        self.out_features = check_positive_int(out_features, "out_features")
        rng = default_rng(rng)
        self.weight = Parameter(
            init.he_normal((out_features, in_features), rng), kind="fc"
        )
        self.bias = Parameter(init.zeros((out_features,)), kind="bias") if bias else None
        self._cached_input: np.ndarray | None = None
        self._shared_stacked_input = False

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float32)
        if self.training and self.weight.stacked_trainable:
            return self._forward_stacked_train(x)
        if x.ndim == 3 or self.weight.stacked is not None:
            return self._forward_ensemble(x)
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ValueError(
                f"Linear expects input of shape (N, {self.in_features}), got {x.shape}"
            )
        self._cached_input = x
        out = active_backend().matmul(x, self.weight.data.T)
        if self.bias is not None:
            out = out + self.bias.data
        return out

    def _forward_stacked_train(self, x: np.ndarray) -> np.ndarray:
        """Variant-stacked training forward: ``(V, N, F) x (V, O, F) -> (V, N, O)``.

        All ``V`` variants contract against their own weight slab in one
        batched matmul; the cached stacked input lets :meth:`backward`
        accumulate one gradient slab per variant.  A 2-D input — still shared
        across variants, i.e. (a paramless transform of) the raw input batch,
        since every downstream activation in stacked training carries the
        variant axis — is broadcast to the variant count without copying, and
        :meth:`backward` skips its (unconsumed) input gradient like
        :class:`~repro.nn.layers.conv.Conv2D` does for shared 4-D inputs.
        """
        stacked = self.weight.stacked
        if x.ndim not in (2, 3) or x.shape[-1] != self.in_features:
            raise ValueError(
                f"Linear expects input (N, {self.in_features}) or "
                f"(V, N, {self.in_features}), got {x.shape}"
            )
        self._shared_stacked_input = x.ndim == 2
        if x.ndim == 2:
            x = np.broadcast_to(x[None], (stacked.shape[0],) + x.shape)
        self._cached_input = x
        out = active_backend().stacked_matmul(x, stacked.transpose(0, 2, 1))
        if self.bias is not None:
            out = out + self.bias.stacked[:, None, :]
        return out

    def _forward_ensemble(self, x: np.ndarray) -> np.ndarray:
        """Scenario-stacked forward: ``(S?, N, F) x (S?, O, F) -> (S, N, O)``.

        Either operand may be shared — a 2-D input against stacked weights is
        the canonical ``einsum('nf,sof->sno')`` contraction, expressed as a
        batched matmul so every scenario hits BLAS; a stacked input against
        shared weights broadcasts through a plain matmul.  Singleton leading
        axes broadcast against the other operand's scenario count.
        """
        if x.ndim not in (2, 3) or x.shape[-1] != self.in_features:
            raise ValueError(
                f"Linear expects input (N, {self.in_features}) or "
                f"(S, N, {self.in_features}), got {x.shape}"
            )
        self._cached_input = None  # ensemble forwards are inference-only
        backend = active_backend()
        stacked = self.weight.stacked
        if stacked is None:
            out = backend.matmul(x, self.weight.data.T)
        else:
            lhs = x[None] if x.ndim == 2 else x
            out = backend.stacked_matmul(lhs, stacked.transpose(0, 2, 1))
        if self.bias is not None:
            if self.bias.stacked is not None:
                out = out + self.bias.stacked[:, None, :]
            else:
                out = out + self.bias.data
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cached_input is None:
            raise RuntimeError("backward called before forward")
        grad_output = np.asarray(grad_output, dtype=np.float32)
        backend = active_backend()
        if self._cached_input.ndim == 3:
            # Variant-stacked backward: one gradient slab per variant.
            self.weight.stacked_grad += backend.stacked_matmul(
                grad_output.transpose(0, 2, 1), self._cached_input
            )
            if self.bias is not None:
                self.bias.stacked_grad += grad_output.sum(axis=1)
            if self._shared_stacked_input:
                return None  # nothing trainable sits upstream of a shared input
            return backend.stacked_matmul(grad_output, self.weight.stacked)
        self.weight.grad += backend.matmul(grad_output.T, self._cached_input)
        if self.bias is not None:
            self.bias.grad += grad_output.sum(axis=0)
        return backend.matmul(grad_output, self.weight.data)

    def __repr__(self) -> str:
        return (
            f"Linear(in_features={self.in_features}, out_features={self.out_features}, "
            f"bias={self.bias is not None})"
        )
