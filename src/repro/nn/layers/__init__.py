"""Neural-network layers with explicit forward and backward passes."""

from repro.nn.layers.linear import Linear
from repro.nn.layers.conv import Conv2D
from repro.nn.layers.pooling import AvgPool2D, GlobalAvgPool2D, MaxPool2D
from repro.nn.layers.activations import LeakyReLU, ReLU, Sigmoid, Tanh
from repro.nn.layers.batchnorm import BatchNorm2D
from repro.nn.layers.dropout import Dropout
from repro.nn.layers.flatten import Flatten
from repro.nn.layers.noise import GaussianNoise
from repro.nn.layers.sequential import Sequential

__all__ = [
    "Linear",
    "Conv2D",
    "MaxPool2D",
    "AvgPool2D",
    "GlobalAvgPool2D",
    "ReLU",
    "LeakyReLU",
    "Sigmoid",
    "Tanh",
    "BatchNorm2D",
    "Dropout",
    "Flatten",
    "GaussianNoise",
    "Sequential",
]
