"""Pooling layers: max, average and global average pooling.

Every pooling layer treats each sample independently, so scenario-stacked
``(S, N, C, H, W)`` inputs from the ensemble forward path are handled by
folding the scenario axis into the batch axis (see :mod:`repro.nn.ensemble`);
ensemble forwards drop the backward cache since they are inference-only.
"""

from __future__ import annotations

import numpy as np

from repro.nn.ensemble import fold_scenarios, unfold_scenarios
from repro.nn.functional import col2im, im2col
from repro.nn.module import Module
from repro.utils.validation import check_positive_int

__all__ = ["MaxPool2D", "AvgPool2D", "GlobalAvgPool2D"]


class MaxPool2D(Module):
    """Max pooling over non-overlapping (or strided) windows."""

    def __init__(self, kernel_size: int = 2, stride: int | None = None, padding: int = 0):
        super().__init__()
        self.kernel_size = check_positive_int(kernel_size, "kernel_size")
        self.stride = check_positive_int(stride if stride is not None else kernel_size, "stride")
        if padding < 0:
            raise ValueError(f"padding must be non-negative, got {padding}")
        self.padding = int(padding)
        self._cache = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float32)
        if x.ndim == 5:
            folded, lead = fold_scenarios(x)
            out = self._forward_inference(folded)
            self._cache = None
            return unfold_scenarios(out, lead)
        batch, channels, _, _ = x.shape
        k = self.kernel_size
        # Treat each channel independently so the window matrix is (N*C, ...)
        reshaped = x.reshape(batch * channels, 1, *x.shape[2:])
        cols, out_h, out_w = im2col(reshaped, k, k, self.stride, self.padding)
        argmax = np.argmax(cols, axis=1)
        out = cols[np.arange(cols.shape[0]), argmax]
        out = out.reshape(batch, channels, out_h, out_w)
        self._cache = (argmax, cols.shape, reshaped.shape, x.shape, out_h, out_w)
        return out

    def _forward_inference(self, x: np.ndarray) -> np.ndarray:
        """Cache-free max pooling for the scenario-stacked ensemble path.

        For the ubiquitous non-overlapping, unpadded case the windows are a
        plain reshape, so the max runs without materializing the im2col patch
        matrix or its argmax (``max`` is order-independent, so the result is
        bit-identical to the windowed path).  Other geometries fall back to
        the im2col forward.
        """
        k = self.kernel_size
        batch, channels, height, width = x.shape
        if (
            self.padding == 0
            and self.stride == k
            and height % k == 0
            and width % k == 0
        ):
            windows = x.reshape(batch, channels, height // k, k, width // k, k)
            return windows.max(axis=(3, 5))
        out = self.forward(x)
        self._cache = None
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        argmax, cols_shape, reshaped_shape, input_shape, out_h, out_w = self._cache
        grad_output = np.asarray(grad_output, dtype=np.float32)
        grad_cols = np.zeros(cols_shape, dtype=np.float32)
        grad_flat = grad_output.reshape(-1)
        grad_cols[np.arange(cols_shape[0]), argmax] = grad_flat
        k = self.kernel_size
        grad_reshaped = col2im(grad_cols, reshaped_shape, k, k, self.stride, self.padding)
        return grad_reshaped.reshape(input_shape)

    def __repr__(self) -> str:
        return f"MaxPool2D(kernel_size={self.kernel_size}, stride={self.stride})"


class AvgPool2D(Module):
    """Average pooling over strided windows."""

    def __init__(self, kernel_size: int = 2, stride: int | None = None, padding: int = 0):
        super().__init__()
        self.kernel_size = check_positive_int(kernel_size, "kernel_size")
        self.stride = check_positive_int(stride if stride is not None else kernel_size, "stride")
        if padding < 0:
            raise ValueError(f"padding must be non-negative, got {padding}")
        self.padding = int(padding)
        self._cache = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float32)
        if x.ndim == 5:
            folded, lead = fold_scenarios(x)
            out = self.forward(folded)
            self._cache = None
            return unfold_scenarios(out, lead)
        batch, channels, _, _ = x.shape
        k = self.kernel_size
        reshaped = x.reshape(batch * channels, 1, *x.shape[2:])
        cols, out_h, out_w = im2col(reshaped, k, k, self.stride, self.padding)
        out = cols.mean(axis=1).reshape(batch, channels, out_h, out_w)
        self._cache = (cols.shape, reshaped.shape, x.shape)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        cols_shape, reshaped_shape, input_shape = self._cache
        grad_output = np.asarray(grad_output, dtype=np.float32)
        window = cols_shape[1]
        grad_cols = np.repeat(grad_output.reshape(-1, 1) / window, window, axis=1)
        k = self.kernel_size
        grad_reshaped = col2im(grad_cols, reshaped_shape, k, k, self.stride, self.padding)
        return grad_reshaped.reshape(input_shape)

    def __repr__(self) -> str:
        return f"AvgPool2D(kernel_size={self.kernel_size}, stride={self.stride})"


class GlobalAvgPool2D(Module):
    """Average over the full spatial extent, producing ``(N, C)`` features."""

    def __init__(self):
        super().__init__()
        self._input_shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float32)
        if x.ndim == 5:
            self._input_shape = None
            return x.mean(axis=(3, 4))
        self._input_shape = x.shape
        return x.mean(axis=(2, 3))

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._input_shape is None:
            raise RuntimeError("backward called before forward")
        batch, channels, height, width = self._input_shape
        grad_output = np.asarray(grad_output, dtype=np.float32)
        grad = grad_output[:, :, None, None] / float(height * width)
        return np.broadcast_to(grad, self._input_shape).astype(np.float32).copy()

    def __repr__(self) -> str:
        return "GlobalAvgPool2D()"
