"""Pooling layers: max, average and global average pooling.

Every pooling layer treats each sample independently, so scenario-stacked
``(S, N, C, H, W)`` inputs from the ensemble forward path are handled by
folding the scenario axis into the batch axis (see :mod:`repro.nn.ensemble`);
ensemble forwards drop the backward cache since they are inference-only.
"""

from __future__ import annotations

import numpy as np

from repro.nn.backend import active_backend
from repro.nn.ensemble import fold_scenarios, unfold_scenarios
from repro.nn.module import Module
from repro.utils.validation import check_positive_int

__all__ = ["MaxPool2D", "AvgPool2D", "GlobalAvgPool2D"]


class MaxPool2D(Module):
    """Max pooling over non-overlapping (or strided) windows."""

    def __init__(self, kernel_size: int = 2, stride: int | None = None, padding: int = 0):
        super().__init__()
        self.kernel_size = check_positive_int(kernel_size, "kernel_size")
        self.stride = check_positive_int(stride if stride is not None else kernel_size, "stride")
        if padding < 0:
            raise ValueError(f"padding must be non-negative, got {padding}")
        self.padding = int(padding)
        self._cache = None
        self._window_cache = None
        self._stacked_lead: int | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float32)
        self._stacked_lead = None
        self._window_cache = None
        if x.ndim == 5:
            if self.training:
                # Variant-stacked training: fold the variant axis into the
                # batch axis so the cached pooling path (and its backward)
                # applies unchanged, then restore the leading axis.  The
                # ubiquitous non-overlapping, unpadded geometry takes the
                # im2col-free window path — windows are a plain reshape with
                # the same (kh, kw) element order as the im2col columns, so
                # max values *and* argmax tie-breaks (hence gradient routing)
                # are bit-identical to the windowed reference.
                folded, lead = fold_scenarios(x)
                if self._is_reshape_geometry(folded):
                    out = self._forward_windows_train(folded)
                else:
                    out = self.forward(folded)
                self._stacked_lead = lead
                return unfold_scenarios(out, lead)
            folded, lead = fold_scenarios(x)
            out = self._forward_inference(folded)
            self._cache = None
            return unfold_scenarios(out, lead)
        batch, channels, _, _ = x.shape
        k = self.kernel_size
        # Treat each channel independently so the window matrix is (N*C, ...)
        reshaped = x.reshape(batch * channels, 1, *x.shape[2:])
        # Only the argmax and shapes are cached, so the patch matrix is
        # transient and backends may reuse a keyed workspace.
        cols, out_h, out_w = active_backend().im2col(
            reshaped, k, k, self.stride, self.padding, transient=True
        )
        argmax = np.argmax(cols, axis=1)
        out = cols[np.arange(cols.shape[0]), argmax]
        out = out.reshape(batch, channels, out_h, out_w)
        self._cache = (argmax, cols.shape, reshaped.shape, x.shape, out_h, out_w)
        return out

    def _is_reshape_geometry(self, x: np.ndarray) -> bool:
        k = self.kernel_size
        height, width = x.shape[2:]
        return (
            self.padding == 0
            and self.stride == k
            and height % k == 0
            and width % k == 0
        )

    def _window_slices(self, x_or_grad: np.ndarray) -> list[np.ndarray]:
        """The ``k*k`` strided window-element views in (ky, kx) row-major order."""
        k = self.kernel_size
        return [x_or_grad[..., ky::k, kx::k] for ky in range(k) for kx in range(k)]

    def _forward_windows_train(self, x: np.ndarray) -> np.ndarray:
        """Cached im2col-free max pooling for non-overlapping windows.

        Works on strided window-element views with plain elementwise maxima —
        no im2col patch matrix and no argmax over a tiny trailing axis (both
        are iterator-overhead-bound for 2x2 windows).  The winner chain uses
        strict ``>`` against the running maximum, so ties keep the earliest
        (ky, kx) in row-major order — exactly the im2col path's flat
        ``argmax`` winner — making values *and* gradient routing bit-identical
        to the windowed reference.
        """
        slices = self._window_slices(x)
        # order='C' (not the default 'K'): the im2col reference emits
        # C-contiguous outputs, and downstream layout-sensitive reductions
        # (e.g. the relative noise scale) must see the same memory order.
        out = slices[0].astype(np.float32, order="C", copy=True)
        winner = np.zeros(out.shape, dtype=np.int8)
        for index, piece in enumerate(slices[1:], start=1):
            better = piece > out
            np.copyto(out, piece, where=better)
            winner[better] = index
        self._window_cache = (winner, x.shape)
        return out

    def _forward_inference(self, x: np.ndarray) -> np.ndarray:
        """Cache-free max pooling for the scenario-stacked ensemble path.

        For the ubiquitous non-overlapping, unpadded case the windows are a
        plain reshape, so the max runs without materializing the im2col patch
        matrix or its argmax (``max`` is order-independent, so the result is
        bit-identical to the windowed path).  Other geometries fall back to
        the im2col forward.
        """
        k = self.kernel_size
        batch, channels, height, width = x.shape
        if (
            self.padding == 0
            and self.stride == k
            and height % k == 0
            and width % k == 0
        ):
            return active_backend().window_max(x, k)
        out = self.forward(x)
        self._cache = None
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None and self._window_cache is None:
            raise RuntimeError("backward called before forward")
        grad_output = np.asarray(grad_output, dtype=np.float32)
        if self._stacked_lead is not None:
            folded, lead = fold_scenarios(grad_output)
            return unfold_scenarios(self._backward_folded(folded), lead)
        return self._backward_folded(grad_output)

    def _backward_folded(self, grad_output: np.ndarray) -> np.ndarray:
        if self._window_cache is not None:
            return self._backward_windows(grad_output)
        argmax, cols_shape, reshaped_shape, input_shape, out_h, out_w = self._cache
        grad_cols = np.zeros(cols_shape, dtype=np.float32)
        grad_flat = grad_output.reshape(-1)
        grad_cols[np.arange(cols_shape[0]), argmax] = grad_flat
        k = self.kernel_size
        grad_reshaped = active_backend().col2im(
            grad_cols, reshaped_shape, k, k, self.stride, self.padding
        )
        return grad_reshaped.reshape(input_shape)

    def _backward_windows(self, grad_output: np.ndarray) -> np.ndarray:
        """Backward of :meth:`_forward_windows_train` (non-overlapping scatter)."""
        winner, input_shape = self._window_cache
        grad_input = np.zeros(input_shape, dtype=np.float32)
        for index, piece in enumerate(self._window_slices(grad_input)):
            np.copyto(piece, grad_output, where=(winner == index))
        return grad_input

    def __repr__(self) -> str:
        return f"MaxPool2D(kernel_size={self.kernel_size}, stride={self.stride})"


class AvgPool2D(Module):
    """Average pooling over strided windows."""

    def __init__(self, kernel_size: int = 2, stride: int | None = None, padding: int = 0):
        super().__init__()
        self.kernel_size = check_positive_int(kernel_size, "kernel_size")
        self.stride = check_positive_int(stride if stride is not None else kernel_size, "stride")
        if padding < 0:
            raise ValueError(f"padding must be non-negative, got {padding}")
        self.padding = int(padding)
        self._cache = None
        self._stacked_lead: int | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float32)
        self._stacked_lead = None
        if x.ndim == 5:
            folded, lead = fold_scenarios(x)
            out = self.forward(folded)
            if self.training:
                self._stacked_lead = lead
            else:
                self._cache = None
            return unfold_scenarios(out, lead)
        batch, channels, _, _ = x.shape
        k = self.kernel_size
        reshaped = x.reshape(batch * channels, 1, *x.shape[2:])
        # Only shapes are cached for backward: the patch matrix is transient.
        cols, out_h, out_w = active_backend().im2col(
            reshaped, k, k, self.stride, self.padding, transient=True
        )
        out = cols.mean(axis=1).reshape(batch, channels, out_h, out_w)
        self._cache = (cols.shape, reshaped.shape, x.shape)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        grad_output = np.asarray(grad_output, dtype=np.float32)
        if self._stacked_lead is not None:
            folded, lead = fold_scenarios(grad_output)
            return unfold_scenarios(self._backward_folded(folded), lead)
        return self._backward_folded(grad_output)

    def _backward_folded(self, grad_output: np.ndarray) -> np.ndarray:
        cols_shape, reshaped_shape, input_shape = self._cache
        window = cols_shape[1]
        grad_cols = np.repeat(grad_output.reshape(-1, 1) / window, window, axis=1)
        k = self.kernel_size
        grad_reshaped = active_backend().col2im(
            grad_cols, reshaped_shape, k, k, self.stride, self.padding
        )
        return grad_reshaped.reshape(input_shape)

    def __repr__(self) -> str:
        return f"AvgPool2D(kernel_size={self.kernel_size}, stride={self.stride})"


class GlobalAvgPool2D(Module):
    """Average over the full spatial extent, producing ``(N, C)`` features."""

    def __init__(self):
        super().__init__()
        self._input_shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        # The spatial mean always reduces a C-contiguous slab: numpy groups
        # its pairwise summation by memory layout, and the serial and
        # variant-stacked paths hand this layer differently laid-out (but
        # value-identical) arrays.  Normalizing the layout first makes the
        # two paths reduce bit-identically.
        x = np.asarray(x, dtype=np.float32)
        if x.ndim == 5:
            # Cache the stacked shape only in training mode; ensemble
            # inference forwards stay backward-free.
            self._input_shape = x.shape if self.training else None
            return np.stack(
                [np.ascontiguousarray(x[v]).mean(axis=(2, 3)) for v in range(x.shape[0])]
            )
        self._input_shape = x.shape
        return np.ascontiguousarray(x).mean(axis=(2, 3))

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._input_shape is None:
            raise RuntimeError("backward called before forward")
        height, width = self._input_shape[-2:]
        grad_output = np.asarray(grad_output, dtype=np.float32)
        grad = grad_output[..., None, None] / float(height * width)
        return np.broadcast_to(grad, self._input_shape).astype(np.float32).copy()

    def __repr__(self) -> str:
        return "GlobalAvgPool2D()"
