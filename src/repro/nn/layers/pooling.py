"""Pooling layers: max, average and global average pooling."""

from __future__ import annotations

import numpy as np

from repro.nn.functional import col2im, im2col
from repro.nn.module import Module
from repro.utils.validation import check_positive_int

__all__ = ["MaxPool2D", "AvgPool2D", "GlobalAvgPool2D"]


class MaxPool2D(Module):
    """Max pooling over non-overlapping (or strided) windows."""

    def __init__(self, kernel_size: int = 2, stride: int | None = None, padding: int = 0):
        super().__init__()
        self.kernel_size = check_positive_int(kernel_size, "kernel_size")
        self.stride = check_positive_int(stride if stride is not None else kernel_size, "stride")
        if padding < 0:
            raise ValueError(f"padding must be non-negative, got {padding}")
        self.padding = int(padding)
        self._cache = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float32)
        batch, channels, _, _ = x.shape
        k = self.kernel_size
        # Treat each channel independently so the window matrix is (N*C, ...)
        reshaped = x.reshape(batch * channels, 1, *x.shape[2:])
        cols, out_h, out_w = im2col(reshaped, k, k, self.stride, self.padding)
        argmax = np.argmax(cols, axis=1)
        out = cols[np.arange(cols.shape[0]), argmax]
        out = out.reshape(batch, channels, out_h, out_w)
        self._cache = (argmax, cols.shape, reshaped.shape, x.shape, out_h, out_w)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        argmax, cols_shape, reshaped_shape, input_shape, out_h, out_w = self._cache
        grad_output = np.asarray(grad_output, dtype=np.float32)
        grad_cols = np.zeros(cols_shape, dtype=np.float32)
        grad_flat = grad_output.reshape(-1)
        grad_cols[np.arange(cols_shape[0]), argmax] = grad_flat
        k = self.kernel_size
        grad_reshaped = col2im(grad_cols, reshaped_shape, k, k, self.stride, self.padding)
        return grad_reshaped.reshape(input_shape)

    def __repr__(self) -> str:
        return f"MaxPool2D(kernel_size={self.kernel_size}, stride={self.stride})"


class AvgPool2D(Module):
    """Average pooling over strided windows."""

    def __init__(self, kernel_size: int = 2, stride: int | None = None, padding: int = 0):
        super().__init__()
        self.kernel_size = check_positive_int(kernel_size, "kernel_size")
        self.stride = check_positive_int(stride if stride is not None else kernel_size, "stride")
        if padding < 0:
            raise ValueError(f"padding must be non-negative, got {padding}")
        self.padding = int(padding)
        self._cache = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float32)
        batch, channels, _, _ = x.shape
        k = self.kernel_size
        reshaped = x.reshape(batch * channels, 1, *x.shape[2:])
        cols, out_h, out_w = im2col(reshaped, k, k, self.stride, self.padding)
        out = cols.mean(axis=1).reshape(batch, channels, out_h, out_w)
        self._cache = (cols.shape, reshaped.shape, x.shape)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        cols_shape, reshaped_shape, input_shape = self._cache
        grad_output = np.asarray(grad_output, dtype=np.float32)
        window = cols_shape[1]
        grad_cols = np.repeat(grad_output.reshape(-1, 1) / window, window, axis=1)
        k = self.kernel_size
        grad_reshaped = col2im(grad_cols, reshaped_shape, k, k, self.stride, self.padding)
        return grad_reshaped.reshape(input_shape)

    def __repr__(self) -> str:
        return f"AvgPool2D(kernel_size={self.kernel_size}, stride={self.stride})"


class GlobalAvgPool2D(Module):
    """Average over the full spatial extent, producing ``(N, C)`` features."""

    def __init__(self):
        super().__init__()
        self._input_shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float32)
        self._input_shape = x.shape
        return x.mean(axis=(2, 3))

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._input_shape is None:
            raise RuntimeError("backward called before forward")
        batch, channels, height, width = self._input_shape
        grad_output = np.asarray(grad_output, dtype=np.float32)
        grad = grad_output[:, :, None, None] / float(height * width)
        return np.broadcast_to(grad, self._input_shape).astype(np.float32).copy()

    def __repr__(self) -> str:
        return "GlobalAvgPool2D()"
