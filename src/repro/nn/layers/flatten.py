"""Flatten layer bridging convolutional and fully-connected stages."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module

__all__ = ["Flatten"]


class Flatten(Module):
    """Reshape ``(N, C, H, W)`` feature maps to ``(N, C*H*W)`` vectors.

    Scenario-stacked ``(S, N, C, H, W)`` inputs from the ensemble forward
    path flatten to ``(S, N, C*H*W)``, preserving the leading scenario axis.
    """

    def __init__(self):
        super().__init__()
        self._input_shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float32)
        if x.ndim == 5:
            # Stacked training needs the shape for backward; ensemble
            # inference forwards stay backward-free.
            self._input_shape = x.shape if self.training else None
            return x.reshape(*x.shape[:2], -1)
        self._input_shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._input_shape is None:
            raise RuntimeError("backward called before forward")
        return np.asarray(grad_output, dtype=np.float32).reshape(self._input_shape)

    def __repr__(self) -> str:
        return "Flatten()"
