"""Sequential container executing child modules in order."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module

__all__ = ["Sequential"]


class Sequential(Module):
    """Run child modules in order; backward runs them in reverse."""

    def __init__(self, *layers: Module):
        super().__init__()
        self.layers = list(layers)

    def append(self, layer: Module) -> "Sequential":
        """Append a layer and return self (builder style)."""
        self.layers.append(layer)
        return self

    def __len__(self) -> int:
        return len(self.layers)

    def __getitem__(self, index: int) -> Module:
        return self.layers[index]

    def __iter__(self):
        return iter(self.layers)

    def forward(self, x: np.ndarray) -> np.ndarray:
        for layer in self.layers:
            x = layer(x)
        return x

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad_output = layer.backward(grad_output)
            if grad_output is None:
                # A stacked-training layer consumed a shared (raw) input and
                # skipped its input gradient; everything further upstream is
                # a paramless transform of that shared input, so stop here.
                break
        return grad_output

    def __repr__(self) -> str:
        inner = ", ".join(repr(layer) for layer in self.layers)
        return f"Sequential({inner})"
