"""Inverted dropout layer."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module
from repro.utils.rng import default_rng
from repro.utils.validation import check_probability

__all__ = ["Dropout"]


class Dropout(Module):
    """Inverted dropout: active only in training mode.

    Each activation is zeroed with probability ``p`` and the survivors are
    scaled by ``1 / (1 - p)`` so the expected activation is unchanged.
    """

    def __init__(self, p: float = 0.5, rng: np.random.Generator | int | None = None):
        super().__init__()
        self.p = check_probability(p, "p")
        self._rng = default_rng(rng)
        self._mask: np.ndarray | None = None
        #: Per-variant generators for variant-stacked training (one mask slab
        #: per variant, drawn from that variant's own stream so the stacked
        #: step matches the serial per-variant step draw-for-draw).
        self.stacked_rngs: list[np.random.Generator | None] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float32)
        if not self.training or self.p == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.p
        if self.stacked_rngs is not None:
            mask = np.empty(x.shape, dtype=np.float32)
            for index, rng in enumerate(self.stacked_rngs):
                rng = rng if rng is not None else self._rng
                mask[index] = (rng.random(x.shape[1:]) < keep).astype(np.float32) / keep
            self._mask = mask
        else:
            self._mask = (self._rng.random(x.shape) < keep).astype(np.float32) / keep
        return x * self._mask

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad_output = np.asarray(grad_output, dtype=np.float32)
        if self._mask is None:
            return grad_output
        return grad_output * self._mask

    def __repr__(self) -> str:
        return f"Dropout(p={self.p})"
