"""Inverted dropout layer."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module
from repro.utils.rng import default_rng
from repro.utils.validation import check_probability

__all__ = ["Dropout"]


class Dropout(Module):
    """Inverted dropout: active only in training mode.

    Each activation is zeroed with probability ``p`` and the survivors are
    scaled by ``1 / (1 - p)`` so the expected activation is unchanged.
    """

    def __init__(self, p: float = 0.5, rng: np.random.Generator | int | None = None):
        super().__init__()
        self.p = check_probability(p, "p")
        self._rng = default_rng(rng)
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float32)
        if not self.training or self.p == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.p
        self._mask = (self._rng.random(x.shape) < keep).astype(np.float32) / keep
        return x * self._mask

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad_output = np.asarray(grad_output, dtype=np.float32)
        if self._mask is None:
            return grad_output
        return grad_output * self._mask

    def __repr__(self) -> str:
        return f"Dropout(p={self.p})"
