"""Gaussian activation-noise layer used for noise-aware training (paper §V.B).

SafeLight trains "noise-aware" model variants by injecting random Gaussian
noise into model layers during training, so the learned weights tolerate the
parameter corruption later introduced by hardware-trojan attacks.  This layer
implements that injection: additive zero-mean Gaussian noise during training,
identity during inference.
"""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module
from repro.utils.rng import default_rng

__all__ = ["GaussianNoise"]


class GaussianNoise(Module):
    """Additive zero-mean Gaussian activation noise (training only).

    Parameters
    ----------
    std:
        Noise standard deviation.  The paper sweeps 0.1 .. 0.9 (variants
        ``n1`` .. ``n9``).
    relative:
        When true, the noise is scaled by the per-batch standard deviation of
        the activations, which keeps the perturbation magnitude meaningful for
        layers with very different dynamic ranges (deep ResNet/VGG stages).
    rng:
        Seed or generator for the noise stream.
    """

    def __init__(
        self,
        std: float = 0.1,
        relative: bool = True,
        rng: np.random.Generator | int | None = None,
    ):
        super().__init__()
        if std < 0:
            raise ValueError(f"std must be non-negative, got {std}")
        self.std = float(std)
        self.relative = bool(relative)
        self._rng = default_rng(rng)
        #: Per-variant noise levels/streams for variant-stacked training: a
        #: ``(V,)`` std array and a parallel list of generators (``None`` for
        #: noise-free variants, whose slabs pass through untouched).  Each
        #: variant draws from *its own* generator, so a stacked grid step is
        #: bit-identical to the corresponding serial training step.
        self.stacked_std: np.ndarray | None = None
        self.stacked_rngs: list[np.random.Generator | None] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float32)
        if not self.training:
            return x
        if self.stacked_std is not None:
            return self._forward_stacked(x)
        if self.std == 0.0:
            return x
        scale = self.std
        if self.relative:
            activation_std = float(x.std())
            scale = self.std * (activation_std if activation_std > 0 else 1.0)
        noise = self._rng.normal(0.0, scale, size=x.shape).astype(np.float32)
        return x + noise

    def _forward_stacked(self, x: np.ndarray) -> np.ndarray:
        """Per-variant noise injection on a variant-stacked activation.

        The leading axis of ``x`` is the variant axis ((V, N, F) after FC
        stages, (V, N, C, H, W) after conv stages).
        """
        if x.shape[0] != len(self.stacked_std):
            raise ValueError(
                f"stacked input has {x.shape[0]} variants, "
                f"noise layer is configured for {len(self.stacked_std)}"
            )
        out = np.empty(x.shape, dtype=np.float32)
        for index, (std, rng) in enumerate(zip(self.stacked_std, self.stacked_rngs)):
            std = float(std)
            slab = x[index]
            if std <= 0.0 or rng is None:
                out[index] = slab
                continue
            scale = std
            if self.relative:
                activation_std = float(slab.std())
                scale = std * (activation_std if activation_std > 0 else 1.0)
            out[index] = slab + rng.normal(0.0, scale, size=slab.shape).astype(np.float32)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        # Additive noise has unit Jacobian with respect to the input.
        return np.asarray(grad_output, dtype=np.float32)

    def __repr__(self) -> str:
        return f"GaussianNoise(std={self.std}, relative={self.relative})"
