"""Gaussian activation-noise layer used for noise-aware training (paper §V.B).

SafeLight trains "noise-aware" model variants by injecting random Gaussian
noise into model layers during training, so the learned weights tolerate the
parameter corruption later introduced by hardware-trojan attacks.  This layer
implements that injection: additive zero-mean Gaussian noise during training,
identity during inference.
"""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module
from repro.utils.rng import default_rng

__all__ = ["GaussianNoise"]


class GaussianNoise(Module):
    """Additive zero-mean Gaussian activation noise (training only).

    Parameters
    ----------
    std:
        Noise standard deviation.  The paper sweeps 0.1 .. 0.9 (variants
        ``n1`` .. ``n9``).
    relative:
        When true, the noise is scaled by the per-batch standard deviation of
        the activations, which keeps the perturbation magnitude meaningful for
        layers with very different dynamic ranges (deep ResNet/VGG stages).
    rng:
        Seed or generator for the noise stream.
    """

    def __init__(
        self,
        std: float = 0.1,
        relative: bool = True,
        rng: np.random.Generator | int | None = None,
    ):
        super().__init__()
        if std < 0:
            raise ValueError(f"std must be non-negative, got {std}")
        self.std = float(std)
        self.relative = bool(relative)
        self._rng = default_rng(rng)

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float32)
        if not self.training or self.std == 0.0:
            return x
        scale = self.std
        if self.relative:
            activation_std = float(x.std())
            scale = self.std * (activation_std if activation_std > 0 else 1.0)
        noise = self._rng.normal(0.0, scale, size=x.shape).astype(np.float32)
        return x + noise

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        # Additive noise has unit Jacobian with respect to the input.
        return np.asarray(grad_output, dtype=np.float32)

    def __repr__(self) -> str:
        return f"GaussianNoise(std={self.std}, relative={self.relative})"
