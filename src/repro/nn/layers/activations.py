"""Elementwise activation layers."""

from __future__ import annotations

import numpy as np

from repro.nn import functional as F
from repro.nn.module import Module

__all__ = ["ReLU", "LeakyReLU", "Sigmoid", "Tanh"]


class ReLU(Module):
    """Rectified linear unit."""

    def __init__(self):
        super().__init__()
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float32)
        self._mask = x > 0
        return x * self._mask

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        return np.asarray(grad_output, dtype=np.float32) * self._mask

    def __repr__(self) -> str:
        return "ReLU()"


class LeakyReLU(Module):
    """Leaky rectified linear unit with negative slope ``alpha``."""

    def __init__(self, alpha: float = 0.01):
        super().__init__()
        if alpha < 0:
            raise ValueError(f"alpha must be non-negative, got {alpha}")
        self.alpha = float(alpha)
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float32)
        self._mask = x > 0
        return np.where(self._mask, x, self.alpha * x).astype(np.float32)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        grad_output = np.asarray(grad_output, dtype=np.float32)
        return np.where(self._mask, grad_output, self.alpha * grad_output).astype(np.float32)

    def __repr__(self) -> str:
        return f"LeakyReLU(alpha={self.alpha})"


class Sigmoid(Module):
    """Logistic sigmoid."""

    def __init__(self):
        super().__init__()
        self._output: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._output = F.sigmoid(np.asarray(x, dtype=np.float32))
        return self._output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._output is None:
            raise RuntimeError("backward called before forward")
        grad_output = np.asarray(grad_output, dtype=np.float32)
        return grad_output * self._output * (1.0 - self._output)

    def __repr__(self) -> str:
        return "Sigmoid()"


class Tanh(Module):
    """Hyperbolic tangent."""

    def __init__(self):
        super().__init__()
        self._output: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._output = np.tanh(np.asarray(x, dtype=np.float32))
        return self._output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._output is None:
            raise RuntimeError("backward called before forward")
        grad_output = np.asarray(grad_output, dtype=np.float32)
        return grad_output * (1.0 - self._output**2)

    def __repr__(self) -> str:
        return "Tanh()"
