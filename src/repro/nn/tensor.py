"""Trainable parameter container.

The framework does not implement a general autograd graph; each layer
implements its own backward pass and accumulates gradients directly into the
``grad`` buffer of its :class:`Parameter` objects.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Parameter"]


class Parameter:
    """A trainable array with an associated gradient buffer.

    Parameters
    ----------
    data:
        Initial value; stored as ``float32``.
    name:
        Optional human-readable name (filled in by ``Module.named_parameters``
        when left empty).
    kind:
        Semantic role of the parameter used by the accelerator mapping:
        ``"conv"`` for convolution kernels, ``"fc"`` for fully-connected
        weight matrices, ``"bias"`` for bias vectors and ``"other"`` for
        normalization parameters.  Only ``conv`` and ``fc`` weights are
        imprinted onto MR banks (biases and batch-norm parameters stay in the
        electronic domain in CrossLight-style accelerators).

    A parameter can additionally carry a *stacked* value of shape
    ``(S, *shape)`` — one weight set per attack scenario or per model
    variant — attached via
    :meth:`repro.nn.module.Module.load_stacked_state`.  While a stacked value
    is present, layers that consume the parameter evaluate all ``S`` weight
    sets in a single ensemble forward pass.  When the stacked value was
    loaded as *trainable* the parameter also owns a ``stacked_grad`` buffer
    of the same shape and the layers run cached stacked forwards whose
    ``backward`` accumulates one gradient slab per variant (the variant-grid
    training path); without it, stacked forwards are inference-only.
    """

    def __init__(self, data: np.ndarray, name: str = "", kind: str = "other"):
        self.data = np.asarray(data, dtype=np.float32)
        self.grad = np.zeros_like(self.data)
        self.name = name
        self.kind = kind
        self.stacked: np.ndarray | None = None
        self.stacked_grad: np.ndarray | None = None

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def size(self) -> int:
        return int(self.data.size)

    @property
    def stacked_trainable(self) -> bool:
        """True when this parameter trains one weight slab per variant."""
        return self.stacked is not None and self.stacked_grad is not None

    def zero_grad(self) -> None:
        """Reset the gradient buffer(s) to zero."""
        self.grad.fill(0.0)
        if self.stacked_grad is not None:
            self.stacked_grad.fill(0.0)

    def copy(self) -> "Parameter":
        """Return a deep copy (used to snapshot clean weights before attacks)."""
        clone = Parameter(self.data.copy(), name=self.name, kind=self.kind)
        clone.grad = self.grad.copy()
        return clone

    def __repr__(self) -> str:
        return f"Parameter(name={self.name!r}, kind={self.kind!r}, shape={self.data.shape})"
