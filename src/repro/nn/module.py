"""Base class for all layers and models."""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.nn.tensor import Parameter

__all__ = ["Module"]


class Module:
    """Base class providing parameter registration and train/eval switching.

    Subclasses implement :meth:`forward` (and cache whatever intermediate
    values their :meth:`backward` needs).  Child modules and parameters are
    discovered automatically from instance attributes, so ordinary attribute
    assignment is all a subclass needs:

    >>> class Block(Module):
    ...     def __init__(self):
    ...         super().__init__()
    ...         self.fc = Linear(4, 2)
    ...     def forward(self, x):
    ...         return self.fc(x)
    ...     def backward(self, grad):
    ...         return self.fc.backward(grad)
    """

    #: Names of plain-array state attributes (e.g. batch-norm running
    #: statistics) that belong to the module's persistent state but are not
    #: trainable parameters.  Subclasses override this tuple; discovery and
    #: serialization go through :meth:`named_buffers`.
    _buffer_names: tuple[str, ...] = ()

    def __init__(self) -> None:
        self.training = True

    # ------------------------------------------------------------------ core
    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)

    # -------------------------------------------------------------- discovery
    def children(self) -> Iterator["Module"]:
        """Yield immediate child modules (attribute order)."""
        for value in self.__dict__.values():
            if isinstance(value, Module):
                yield value
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        yield item

    def named_children(self) -> Iterator[tuple[str, "Module"]]:
        """Yield ``(attribute_name, module)`` pairs for immediate children."""
        for key, value in self.__dict__.items():
            if isinstance(value, Module):
                yield key, value
            elif isinstance(value, (list, tuple)):
                for index, item in enumerate(value):
                    if isinstance(item, Module):
                        yield f"{key}.{index}", item

    def modules(self) -> Iterator["Module"]:
        """Yield this module and all descendants, depth-first."""
        yield self
        for child in self.children():
            yield from child.modules()

    def parameters(self) -> list[Parameter]:
        """Return all trainable parameters of this module and its children."""
        return [param for _, param in self.named_parameters()]

    def named_parameters(self, prefix: str = "") -> list[tuple[str, Parameter]]:
        """Return ``(dotted_name, parameter)`` pairs, depth-first.

        Also back-fills ``Parameter.name`` so downstream consumers (the
        accelerator mapping, serialization) see stable names.
        """
        result: list[tuple[str, Parameter]] = []
        for key, value in self.__dict__.items():
            full = f"{prefix}{key}"
            if isinstance(value, Parameter):
                if not value.name:
                    value.name = full
                result.append((full, value))
            elif isinstance(value, Module):
                result.extend(value.named_parameters(prefix=f"{full}."))
            elif isinstance(value, (list, tuple)):
                for index, item in enumerate(value):
                    if isinstance(item, Module):
                        result.extend(item.named_parameters(prefix=f"{full}.{index}."))
                    elif isinstance(item, Parameter):
                        name = f"{full}.{index}"
                        if not item.name:
                            item.name = name
                        result.append((name, item))
        return result

    # ----------------------------------------------------------------- modes
    def train(self, mode: bool = True) -> "Module":
        """Set training mode recursively (affects dropout, noise, batch norm)."""
        for module in self.modules():
            module.training = mode
        return self

    def eval(self) -> "Module":
        """Set inference mode recursively."""
        return self.train(False)

    def zero_grad(self) -> None:
        """Reset gradients of every parameter."""
        for param in self.parameters():
            param.zero_grad()

    # ------------------------------------------------------------- state I/O
    def state_dict(self) -> dict[str, np.ndarray]:
        """Return a name→array snapshot of all parameters (copies)."""
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Load parameter values from a :meth:`state_dict` snapshot."""
        params = dict(self.named_parameters())
        missing = set(params) - set(state)
        unexpected = set(state) - set(params)
        if missing or unexpected:
            raise KeyError(
                f"state_dict mismatch: missing={sorted(missing)}, unexpected={sorted(unexpected)}"
            )
        for name, param in params.items():
            value = np.asarray(state[name], dtype=np.float32)
            if value.shape != param.data.shape:
                raise ValueError(
                    f"shape mismatch for {name}: expected {param.data.shape}, got {value.shape}"
                )
            param.data = value.copy()

    def num_parameters(self) -> int:
        """Total number of scalar parameters."""
        return int(sum(param.size for param in self.parameters()))

    # ---------------------------------------------------------------- buffers
    def named_buffers(self, prefix: str = "") -> list[tuple[str, np.ndarray]]:
        """Return ``(dotted_name, array)`` pairs for all state buffers.

        Buffers are the non-trainable arrays declared in ``_buffer_names``
        (batch-norm running statistics); they complete the parameter state
        for checkpointing, since :meth:`state_dict` only covers parameters.
        """
        result: list[tuple[str, np.ndarray]] = [
            (f"{prefix}{name}", getattr(self, name)) for name in self._buffer_names
        ]
        for key, value in self.__dict__.items():
            if isinstance(value, Module):
                result.extend(value.named_buffers(prefix=f"{prefix}{key}."))
            elif isinstance(value, (list, tuple)):
                for index, item in enumerate(value):
                    if isinstance(item, Module):
                        result.extend(
                            item.named_buffers(prefix=f"{prefix}{key}.{index}.")
                        )
        return result

    def full_state_dict(self) -> dict[str, np.ndarray]:
        """Parameters *and* buffers as one name→array snapshot (copies).

        This is the complete persistent state of the model: loading it into a
        freshly built instance reproduces inference exactly, including
        batch-norm running statistics that :meth:`state_dict` omits.
        """
        state = self.state_dict()
        for name, value in self.named_buffers():
            state[name] = np.asarray(value).copy()
        return state

    def load_full_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Inverse of :meth:`full_state_dict`."""
        buffer_names = {name for name, _ in self.named_buffers()}
        params_state = {
            name: value for name, value in state.items() if name not in buffer_names
        }
        self.load_state_dict(params_state)
        missing = sorted(buffer_names - set(state))
        if missing:
            raise KeyError(f"full state dict is missing buffer(s): {missing}")
        buffers = dict(self.named_buffers())
        for name in buffer_names:
            value = np.asarray(state[name], dtype=np.float32)
            if value.shape != buffers[name].shape:
                raise ValueError(
                    f"shape mismatch for buffer {name}: expected "
                    f"{buffers[name].shape}, got {value.shape}"
                )
            self._set_buffer(name, value.copy())

    def _set_buffer(self, dotted: str, value: np.ndarray) -> None:
        """Assign a buffer by its dotted :meth:`named_buffers` name.

        Path segments are attribute names, with numeric segments indexing
        into list/tuple children (mirroring :meth:`named_buffers` paths such
        as ``net.layers.3.running_mean``).
        """
        target: object = self
        parts = dotted.split(".")
        for part in parts[:-1]:
            if part.isdigit():
                target = target[int(part)]  # type: ignore[index]
            else:
                target = getattr(target, part)
        setattr(target, parts[-1], value)

    # ------------------------------------------------------- stacked weights
    def load_stacked_state(
        self, stacked: dict[str, np.ndarray], trainable: bool = False
    ) -> None:
        """Attach per-scenario stacked values ``(S, *shape)`` to parameters.

        ``stacked`` may cover any subset of the named parameters (the attack
        batch only stacks the mapped conv/fc weights); every supplied array
        must share the same leading scenario count ``S`` — except for the
        singleton ``S = 1``, which broadcasts against the other scenarios
        (used to carry a single shared weight set through the ensemble).
        While stacked values are loaded, the forward pass evaluates all
        scenarios at once (see :mod:`repro.nn.ensemble`); call
        :meth:`clear_stacked_state` (or use the context manager) to return to
        the ordinary single-weight forward.

        With ``trainable=True`` the stacked state becomes the *variant-grid
        training* state: ``stacked`` must cover **every** named parameter
        (the optimizer updates whole per-variant weight sets), singleton
        broadcasting is disallowed, and each parameter gains a
        ``stacked_grad`` buffer so training-mode forwards cache what their
        stacked ``backward`` needs.
        """
        params = dict(self.named_parameters())
        unexpected = sorted(set(stacked) - set(params))
        if unexpected:
            raise KeyError(f"stacked state has unknown parameter(s): {unexpected}")
        if trainable:
            missing = sorted(set(params) - set(stacked))
            if missing:
                raise KeyError(
                    f"trainable stacked state must cover every parameter; "
                    f"missing: {missing}"
                )
        scenario_counts = set()
        for name, value in stacked.items():
            value = np.asarray(value, dtype=np.float32)
            if value.ndim == 0 or value.shape[1:] != params[name].data.shape:
                raise ValueError(
                    f"stacked value for {name} must have shape (S, "
                    f"{', '.join(map(str, params[name].data.shape))}), got {value.shape}"
                )
            if value.shape[0] != 1 or trainable:
                scenario_counts.add(value.shape[0])
        if len(scenario_counts) > 1:
            raise ValueError(
                f"inconsistent scenario counts in stacked state: {sorted(scenario_counts)}"
            )
        for name, value in stacked.items():
            param = params[name]
            param.stacked = np.asarray(value, dtype=np.float32).copy() if trainable else (
                np.asarray(value, dtype=np.float32)
            )
            param.stacked_grad = np.zeros_like(param.stacked) if trainable else None

    def clear_stacked_state(self) -> None:
        """Detach every stacked per-scenario value loaded on this module."""
        for param in self.parameters():
            param.stacked = None
            param.stacked_grad = None

    def has_stacked_state(self) -> bool:
        """True when any parameter currently carries a stacked value."""
        return any(param.stacked is not None for param in self.parameters())
