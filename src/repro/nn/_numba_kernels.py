"""Optional numba-jitted kernels for the ``fast`` compute backend.

numba is not a dependency of this project; when it is absent (or fails to
import for any reason) ``NUMBA_AVAILABLE`` is ``False`` and the ``fast``
backend silently keeps its pure-NumPy implementations.  Nothing here may be
imported unconditionally by other modules — always gate on
``NUMBA_AVAILABLE``.
"""

from __future__ import annotations

import numpy as np

try:  # pragma: no cover - exercised only where numba is installed
    import numba as _numba
except Exception:  # pragma: no cover - the expected path in slim images
    _numba = None

NUMBA_AVAILABLE = _numba is not None


if NUMBA_AVAILABLE:  # pragma: no cover - exercised only where numba is installed

    @_numba.njit(cache=True)
    def window_max_nonoverlap(x: np.ndarray, kernel: int) -> np.ndarray:
        """Non-overlapping window max over an NCHW tensor (stride == kernel)."""
        batch, channels, height, width = x.shape
        out_h = height // kernel
        out_w = width // kernel
        out = np.empty((batch, channels, out_h, out_w), dtype=x.dtype)
        for n in range(batch):
            for c in range(channels):
                for oy in range(out_h):
                    for ox in range(out_w):
                        best = x[n, c, oy * kernel, ox * kernel]
                        for ky in range(kernel):
                            for kx in range(kernel):
                                value = x[n, c, oy * kernel + ky, ox * kernel + kx]
                                if value > best:
                                    best = value
                        out[n, c, oy, ox] = best
        return out

    @_numba.njit(cache=True)
    def scale_rows_inplace(
        magnitudes: np.ndarray, rows: np.ndarray, scales: np.ndarray
    ) -> None:
        """In-place ``magnitudes[rows[r]] *= scales[r]`` row multiply."""
        width = magnitudes.shape[1]
        for r in range(rows.shape[0]):
            row = rows[r]
            for i in range(width):
                magnitudes[row, i] = magnitudes[row, i] * scales[r, i]

else:

    def window_max_nonoverlap(x: np.ndarray, kernel: int) -> np.ndarray:
        raise RuntimeError("numba is not available; gate on NUMBA_AVAILABLE")

    def scale_rows_inplace(
        magnitudes: np.ndarray, rows: np.ndarray, scales: np.ndarray
    ) -> None:
        raise RuntimeError("numba is not available; gate on NUMBA_AVAILABLE")
