"""Training loops, evaluation metrics and training configuration.

The :class:`Trainer` drives mini-batch SGD/Adam training of any
:class:`~repro.nn.module.Module` over a :class:`~repro.datasets.base.Dataset`.
It supports the paper's two software mitigation knobs directly:

* **L2 regularization** — via ``TrainingConfig.weight_decay`` (applied by the
  optimizer to conv/fc weights only), plus ``l2_penalty`` reporting.
* **Noise-aware training** — via ``TrainingConfig.weight_noise_std``
  (Gaussian noise injected into conv/fc weights for each forward pass during
  training, then removed before the update) and/or ``GaussianNoise`` layers
  already present in the model.

:class:`StackedTrainer` trains ``V`` model variants concurrently through the
variant-stacked forward/backward path: the model carries a trainable stacked
state (``Module.load_stacked_state(..., trainable=True)``), each data batch
is processed once for all variants, and per-variant hyper-parameters (weight
decay, weight/activation noise levels) ride along as vectors.  Each variant's
arithmetic is slab-for-slab the same as a serial :class:`Trainer` run, so the
two paths produce identical weights for identical seeds.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.datasets.base import DataLoader, Dataset
from repro.nn.backend import use_backend
from repro.nn.losses import (
    CrossEntropyLoss,
    StackedCrossEntropyLoss,
    l2_penalty,
    stacked_l2_penalty,
)
from repro.nn.module import Module
from repro.nn.optim import SGD, Adam, Optimizer
from repro.utils.rng import default_rng
from repro.utils.validation import check_in_choices, check_positive_int

__all__ = [
    "TrainingConfig",
    "TrainingHistory",
    "Trainer",
    "StackedTrainer",
    "count_correct",
    "evaluate_accuracy",
    "evaluate_accuracies",
]


@dataclass
class TrainingConfig:
    """Hyper-parameters for a training run.

    Attributes
    ----------
    epochs, batch_size, lr:
        Standard optimization hyper-parameters.
    optimizer:
        ``"adam"`` or ``"sgd"``.
    momentum:
        SGD momentum (ignored for Adam).
    weight_decay:
        L2 regularization coefficient (the paper's ``lambda``); 0 disables it.
    weight_noise_std:
        Standard deviation of the relative Gaussian noise injected into
        conv/fc weights during each training forward pass (noise-aware
        training); 0 disables it.
    label_smoothing:
        Cross-entropy label smoothing.
    seed:
        Seed controlling the weight-noise stream (and, by default, batch
        shuffling).
    shuffle_seed:
        Seed for the mini-batch shuffle order only; ``None`` falls back to
        ``seed``.  Variant-grid training pins this across every variant so
        all grid members provably consume identical batch sequences — the
        prerequisite for stacked-vs-serial training equivalence.
    verbose:
        Print one line per epoch.
    """

    epochs: int = 5
    batch_size: int = 32
    lr: float = 1e-3
    optimizer: str = "adam"
    momentum: float = 0.9
    weight_decay: float = 0.0
    weight_noise_std: float = 0.0
    label_smoothing: float = 0.0
    seed: int = 0
    shuffle_seed: int | None = None
    verbose: bool = False

    def __post_init__(self) -> None:
        check_positive_int(self.epochs, "epochs")
        check_positive_int(self.batch_size, "batch_size")
        check_in_choices(self.optimizer, "optimizer", ("adam", "sgd"))
        if self.weight_decay < 0:
            raise ValueError(f"weight_decay must be non-negative, got {self.weight_decay}")
        if self.weight_noise_std < 0:
            raise ValueError(
                f"weight_noise_std must be non-negative, got {self.weight_noise_std}"
            )

    @property
    def effective_shuffle_seed(self) -> int:
        """The seed actually driving the mini-batch shuffle order."""
        return self.seed if self.shuffle_seed is None else self.shuffle_seed


@dataclass
class TrainingHistory:
    """Per-epoch metrics recorded by :class:`Trainer.fit`."""

    train_loss: list[float] = field(default_factory=list)
    train_accuracy: list[float] = field(default_factory=list)
    test_accuracy: list[float] = field(default_factory=list)
    l2_penalty: list[float] = field(default_factory=list)

    @property
    def final_test_accuracy(self) -> float:
        """Test accuracy after the final epoch (NaN if never evaluated)."""
        return self.test_accuracy[-1] if self.test_accuracy else float("nan")

    def to_dict(self) -> dict:
        """Plain-JSON form (used by the model checkpoint store)."""
        return {
            "train_loss": list(self.train_loss),
            "train_accuracy": list(self.train_accuracy),
            "test_accuracy": list(self.test_accuracy),
            "l2_penalty": list(self.l2_penalty),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TrainingHistory":
        return cls(
            train_loss=[float(v) for v in data.get("train_loss", [])],
            train_accuracy=[float(v) for v in data.get("train_accuracy", [])],
            test_accuracy=[float(v) for v in data.get("test_accuracy", [])],
            l2_penalty=[float(v) for v in data.get("l2_penalty", [])],
        )


def _build_optimizer(
    parameters, config: TrainingConfig, weight_decay: float | np.ndarray
) -> Optimizer:
    """Optimizer for ``parameters`` with a (possibly per-variant) decay."""
    if config.optimizer == "adam":
        return Adam(parameters, lr=config.lr, weight_decay=weight_decay)
    return SGD(
        parameters,
        lr=config.lr,
        momentum=config.momentum,
        weight_decay=weight_decay,
    )


class Trainer:
    """Mini-batch trainer for the NumPy NN framework.

    ``backend``/``threads`` select the compute backend the hot kernels
    dispatch to for every ``fit`` call (see :mod:`repro.nn.backend`);
    ``None`` keeps the ambient selection, which defaults to the bit-identical
    ``reference`` backend.
    """

    def __init__(
        self,
        model: Module,
        config: TrainingConfig | None = None,
        *,
        backend: str | None = None,
        threads: int | None = None,
    ):
        self.model = model
        self.config = config or TrainingConfig()
        self.backend = backend
        self.threads = threads
        self.loss_fn = CrossEntropyLoss(label_smoothing=self.config.label_smoothing)
        self.optimizer = _build_optimizer(
            model.parameters(), self.config, self.config.weight_decay
        )
        self._noise_rng = default_rng(self.config.seed + 1)
        # Conv/FC weights are the tensors that both get mapped onto MRs and
        # receive noise-aware training perturbations.
        self._noisy_params = [
            param for param in self.model.parameters() if param.kind in ("conv", "fc")
        ]
        #: Optimizer steps taken across all ``fit`` calls (cache accounting).
        self.steps_taken = 0

    def make_loader(self, train: Dataset) -> DataLoader:
        """The shuffled training loader this trainer iterates.

        Exposed so callers (and tests) can verify that trainers with
        different mitigation settings but a shared shuffle seed consume
        identical batch sequences.
        """
        return DataLoader(
            train,
            batch_size=self.config.batch_size,
            shuffle=True,
            seed=self.config.effective_shuffle_seed,
        )

    # ------------------------------------------------------------------ fit
    def fit(self, train: Dataset, test: Dataset | None = None) -> TrainingHistory:
        """Train the model and return the per-epoch history."""
        with use_backend(self.backend, self.threads):
            return self._fit(train, test)

    def _fit(self, train: Dataset, test: Dataset | None) -> TrainingHistory:
        history = TrainingHistory()
        loader = self.make_loader(train)
        for epoch in range(self.config.epochs):
            epoch_loss, epoch_accuracy = self._run_epoch(loader)
            history.train_loss.append(epoch_loss)
            history.train_accuracy.append(epoch_accuracy)
            history.l2_penalty.append(
                l2_penalty(
                    self.model.parameters(),
                    self.config.weight_decay,
                    num_samples=len(train),
                )
            )
            if test is not None:
                test_accuracy = evaluate_accuracy(self.model, test, self.config.batch_size)
                history.test_accuracy.append(test_accuracy)
            if self.config.verbose:
                test_msg = (
                    f", test_acc={history.test_accuracy[-1]:.3f}" if test is not None else ""
                )
                print(
                    f"epoch {epoch + 1}/{self.config.epochs}: "
                    f"loss={epoch_loss:.4f}, train_acc={epoch_accuracy:.3f}{test_msg}"
                )
        return history

    def _run_epoch(self, loader: DataLoader) -> tuple[float, float]:
        """One pass over the training loader; returns (mean loss, accuracy)."""
        self.model.train()
        total_loss = 0.0
        total_correct = 0
        total_samples = 0
        noise = _WeightNoise(
            self._noisy_params, self.config.weight_noise_std, self._noise_rng
        )
        for images, labels in loader:
            self.optimizer.zero_grad()
            with noise:
                logits = self.model(images)
                loss = self.loss_fn(logits, labels)
                grad_logits = self.loss_fn.backward()
                self.model.backward(grad_logits)
            self.optimizer.step()
            self.steps_taken += 1
            batch = labels.shape[0]
            total_loss += loss * batch
            total_correct += int(count_correct(logits, labels))
            total_samples += batch
        if total_samples == 0:
            return float("nan"), float("nan")
        return total_loss / total_samples, total_correct / total_samples


class StackedTrainer:
    """Trains ``V`` stacked variants of one template model concurrently.

    Parameters
    ----------
    model:
        Template module already carrying a *trainable* stacked state covering
        every parameter (``load_stacked_state(..., trainable=True)``), plus
        any per-variant stochastic-layer streams (``GaussianNoise.stacked_std``
        / ``stacked_rngs``, ``Dropout.stacked_rngs``, batch-norm stacked
        running statistics) attached by the caller.
    config:
        Shared hyper-parameters (epochs, batch size, lr, optimizer family,
        seed, shuffle seed).  ``config.weight_decay``/``weight_noise_std``
        are the fallback values when the per-variant vectors are omitted.
    weight_decay:
        Per-variant L2 coefficients ``(V,)`` (``None``: the config scalar for
        every variant).
    weight_noise_std:
        Per-variant weight-noise levels ``(V,)`` (``None``: the config scalar
        for every variant).  Each noisy variant draws from its own generator
        seeded ``config.seed + 1`` — exactly the stream a serial
        :class:`Trainer` for that variant would consume.
    """

    def __init__(
        self,
        model: Module,
        config: TrainingConfig | None = None,
        *,
        weight_decay: np.ndarray | None = None,
        weight_noise_std: np.ndarray | None = None,
        backend: str | None = None,
        threads: int | None = None,
    ):
        self.model = model
        self.config = config or TrainingConfig()
        self.backend = backend
        self.threads = threads
        stacked_params = [p for p in model.parameters() if p.stacked_trainable]
        if not stacked_params:
            raise ValueError(
                "StackedTrainer requires a trainable stacked state; call "
                "model.load_stacked_state(stacked, trainable=True) first"
            )
        self.num_variants = stacked_params[0].stacked.shape[0]
        if weight_decay is None:
            weight_decay = np.full(self.num_variants, self.config.weight_decay)
        self.weight_decay = np.asarray(weight_decay, dtype=np.float64)
        if self.weight_decay.shape != (self.num_variants,):
            raise ValueError(
                f"weight_decay must have shape ({self.num_variants},), "
                f"got {self.weight_decay.shape}"
            )
        if weight_noise_std is None:
            weight_noise_std = np.full(self.num_variants, self.config.weight_noise_std)
        self.weight_noise_std = np.asarray(weight_noise_std, dtype=np.float64)
        if self.weight_noise_std.shape != (self.num_variants,):
            raise ValueError(
                f"weight_noise_std must have shape ({self.num_variants},), "
                f"got {self.weight_noise_std.shape}"
            )
        self.loss_fn = StackedCrossEntropyLoss(
            label_smoothing=self.config.label_smoothing
        )
        self.optimizer = _build_optimizer(
            model.parameters(),
            self.config,
            self.weight_decay.astype(np.float32),
        )
        # One weight-noise stream per noisy variant, seeded exactly as the
        # serial Trainer seeds its single stream (variants with zero noise
        # never consume theirs — matching the serial early-exit).
        self._noise_rngs = [
            default_rng(self.config.seed + 1) if std > 0 else None
            for std in self.weight_noise_std
        ]
        self._noisy_params = [
            param for param in model.parameters() if param.kind in ("conv", "fc")
        ]
        self.steps_taken = 0

    def make_loader(self, train: Dataset) -> DataLoader:
        """Shared shuffled loader — one batch order for all variants."""
        return DataLoader(
            train,
            batch_size=self.config.batch_size,
            shuffle=True,
            seed=self.config.effective_shuffle_seed,
        )

    # ------------------------------------------------------------------ fit
    def fit(
        self, train: Dataset, test: Dataset | None = None
    ) -> list[TrainingHistory]:
        """Train all variants and return one per-epoch history per variant.

        The whole stacked loop runs under this trainer's compute backend
        (``backend``/``threads`` constructor arguments), so the variant-slab
        matmuls can thread across cores when the ``fast`` backend is active.
        """
        with use_backend(self.backend, self.threads):
            return self._fit(train, test)

    def _fit(self, train: Dataset, test: Dataset | None) -> list[TrainingHistory]:
        histories = [TrainingHistory() for _ in range(self.num_variants)]
        loader = self.make_loader(train)
        for epoch in range(self.config.epochs):
            epoch_loss, epoch_accuracy = self._run_epoch(loader)
            penalties = stacked_l2_penalty(
                self.model.parameters(), self.weight_decay, num_samples=len(train)
            )
            if test is not None:
                test_accuracies = evaluate_accuracies(
                    self.model, test, self.config.batch_size
                )
            for index, history in enumerate(histories):
                history.train_loss.append(float(epoch_loss[index]))
                history.train_accuracy.append(float(epoch_accuracy[index]))
                history.l2_penalty.append(float(penalties[index]))
                if test is not None:
                    history.test_accuracy.append(float(test_accuracies[index]))
            if self.config.verbose:
                print(
                    f"epoch {epoch + 1}/{self.config.epochs}: "
                    f"mean_loss={float(np.mean(epoch_loss)):.4f}, "
                    f"mean_train_acc={float(np.mean(epoch_accuracy)):.3f}"
                )
        return histories

    def _run_epoch(self, loader: DataLoader) -> tuple[np.ndarray, np.ndarray]:
        """One stacked pass over the loader; returns per-variant (loss, acc)."""
        self.model.train()
        total_loss = np.zeros(self.num_variants)
        total_correct = np.zeros(self.num_variants, dtype=np.int64)
        total_samples = 0
        noise = _WeightNoise(
            self._noisy_params, self.weight_noise_std, self._noise_rngs
        )
        for images, labels in loader:
            self.optimizer.zero_grad()
            with noise:
                logits = self.model(images)
                losses = self.loss_fn(logits, labels)
                grad_logits = self.loss_fn.backward()
                self.model.backward(grad_logits)
            self.optimizer.step()
            self.steps_taken += 1
            batch = labels.shape[0]
            total_loss += losses * batch
            total_correct += count_correct(logits, labels)
            total_samples += batch
        if total_samples == 0:
            nan = np.full(self.num_variants, float("nan"))
            return nan, nan.copy()
        return total_loss / total_samples, total_correct / total_samples


class _WeightNoise:
    """Context manager implementing weight-level noise-aware training.

    On entry, each conv/fc weight tensor is perturbed with zero-mean Gaussian
    noise whose standard deviation is ``std`` times the tensor's own standard
    deviation (relative noise); on exit the original values are restored.
    Gradients are therefore computed at the perturbed point, which is the
    standard noise-injection training recipe for analog accelerators.

    Two modes share this implementation:

    * **scalar** — ``std`` is a float and ``rng`` a single generator: the
      classic per-model path used by :class:`Trainer`.
    * **stacked** — ``std`` is a ``(V,)`` vector and ``rng`` a parallel list
      of per-variant generators: each parameter's stacked slab ``v`` is
      perturbed relative to *its own* standard deviation from *its own*
      stream, replicating the serial per-variant perturbation bit-for-bit.
    """

    def __init__(self, parameters, std, rng):
        self.parameters = parameters
        self.stacked = np.ndim(std) > 0
        if self.stacked:
            self.std = np.asarray(std, dtype=np.float64)
            self.rngs = list(rng)
        else:
            self.std = float(std)
            self.rng = rng
        self._saved: list[np.ndarray] = []

    def _active(self) -> bool:
        if self.stacked:
            return bool(np.any(self.std > 0))
        return self.std > 0

    def __enter__(self) -> "_WeightNoise":
        if not self._active():
            return self
        if self.stacked:
            self._saved = [param.stacked.copy() for param in self.parameters]
            for param in self.parameters:
                for index, (std, rng) in enumerate(zip(self.std, self.rngs)):
                    std = float(std)
                    if std <= 0 or rng is None:
                        continue
                    slab = param.stacked[index]
                    scale = std * max(float(slab.std()), 1e-8)
                    param.stacked[index] = slab + rng.normal(
                        0.0, scale, size=slab.shape
                    ).astype(np.float32)
            return self
        self._saved = [param.data.copy() for param in self.parameters]
        for param in self.parameters:
            scale = self.std * max(float(param.data.std()), 1e-8)
            param.data = param.data + self.rng.normal(0.0, scale, size=param.data.shape).astype(
                np.float32
            )
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        if not self._active():
            return
        for param, saved in zip(self.parameters, self._saved):
            if self.stacked:
                param.stacked[...] = saved
            else:
                param.data = saved
        self._saved = []


# -------------------------------------------------------------- evaluation
def count_correct(logits: np.ndarray, labels: np.ndarray):
    """Top-1 correct-prediction count.

    For 2-D ``(N, classes)`` logits returns a scalar count; for stacked
    ``(V, N, classes)`` logits returns a ``(V,)`` per-variant count.  Shared
    by the training loops and :func:`evaluate_accuracy` so every accuracy in
    the library is computed by the same reduction.
    """
    predictions = np.argmax(logits, axis=-1)
    return (predictions == labels).sum(axis=-1)


def evaluate_accuracies(
    model: Module, dataset: Dataset, batch_size: int = 64
) -> np.ndarray:
    """Per-variant top-1 accuracies of a (possibly stacked) model.

    A model carrying a stacked state produces ``(V,)`` accuracies in one
    ensemble pass over the dataset; an ordinary model produces a length-1
    array.  :func:`evaluate_accuracy` is the scalar wrapper.
    """
    model.eval()
    loader = DataLoader(dataset, batch_size=batch_size, shuffle=False)
    correct: np.ndarray | int = 0
    total = 0
    for images, labels in loader:
        logits = model(images)
        if logits.ndim == 2:
            logits = logits[None]
        correct = correct + count_correct(logits, labels)
        total += labels.shape[0]
    if total == 0:
        size = int(np.size(correct)) or 1
        return np.full(size, float("nan"))
    return np.asarray(correct, dtype=np.int64) / total


def evaluate_accuracy(model: Module, dataset: Dataset, batch_size: int = 64) -> float:
    """Top-1 accuracy of ``model`` on ``dataset`` (inference mode)."""
    accuracies = evaluate_accuracies(model, dataset, batch_size)
    if accuracies.shape != (1,):
        raise ValueError(
            "evaluate_accuracy expects a single-weight model; use "
            "evaluate_accuracies for stacked models"
        )
    return float(accuracies[0])
