"""Training loop, evaluation metrics and training configuration.

The :class:`Trainer` drives mini-batch SGD/Adam training of any
:class:`~repro.nn.module.Module` over a :class:`~repro.datasets.base.Dataset`.
It supports the paper's two software mitigation knobs directly:

* **L2 regularization** — via ``TrainingConfig.weight_decay`` (applied by the
  optimizer to conv/fc weights only), plus ``l2_penalty`` reporting.
* **Noise-aware training** — via ``TrainingConfig.weight_noise_std``
  (Gaussian noise injected into conv/fc weights for each forward pass during
  training, then removed before the update) and/or ``GaussianNoise`` layers
  already present in the model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.datasets.base import DataLoader, Dataset
from repro.nn.losses import CrossEntropyLoss, l2_penalty
from repro.nn.module import Module
from repro.nn.optim import SGD, Adam, Optimizer
from repro.utils.rng import default_rng
from repro.utils.validation import check_in_choices, check_positive_int

__all__ = ["TrainingConfig", "TrainingHistory", "Trainer", "evaluate_accuracy"]


@dataclass
class TrainingConfig:
    """Hyper-parameters for a training run.

    Attributes
    ----------
    epochs, batch_size, lr:
        Standard optimization hyper-parameters.
    optimizer:
        ``"adam"`` or ``"sgd"``.
    momentum:
        SGD momentum (ignored for Adam).
    weight_decay:
        L2 regularization coefficient (the paper's ``lambda``); 0 disables it.
    weight_noise_std:
        Standard deviation of the relative Gaussian noise injected into
        conv/fc weights during each training forward pass (noise-aware
        training); 0 disables it.
    label_smoothing:
        Cross-entropy label smoothing.
    seed:
        Seed controlling shuffling and the weight-noise stream.
    verbose:
        Print one line per epoch.
    """

    epochs: int = 5
    batch_size: int = 32
    lr: float = 1e-3
    optimizer: str = "adam"
    momentum: float = 0.9
    weight_decay: float = 0.0
    weight_noise_std: float = 0.0
    label_smoothing: float = 0.0
    seed: int = 0
    verbose: bool = False

    def __post_init__(self) -> None:
        check_positive_int(self.epochs, "epochs")
        check_positive_int(self.batch_size, "batch_size")
        check_in_choices(self.optimizer, "optimizer", ("adam", "sgd"))
        if self.weight_decay < 0:
            raise ValueError(f"weight_decay must be non-negative, got {self.weight_decay}")
        if self.weight_noise_std < 0:
            raise ValueError(
                f"weight_noise_std must be non-negative, got {self.weight_noise_std}"
            )


@dataclass
class TrainingHistory:
    """Per-epoch metrics recorded by :class:`Trainer.fit`."""

    train_loss: list[float] = field(default_factory=list)
    train_accuracy: list[float] = field(default_factory=list)
    test_accuracy: list[float] = field(default_factory=list)
    l2_penalty: list[float] = field(default_factory=list)

    @property
    def final_test_accuracy(self) -> float:
        """Test accuracy after the final epoch (NaN if never evaluated)."""
        return self.test_accuracy[-1] if self.test_accuracy else float("nan")


class Trainer:
    """Mini-batch trainer for the NumPy NN framework."""

    def __init__(self, model: Module, config: TrainingConfig | None = None):
        self.model = model
        self.config = config or TrainingConfig()
        self.loss_fn = CrossEntropyLoss(label_smoothing=self.config.label_smoothing)
        self.optimizer = self._build_optimizer()
        self._noise_rng = default_rng(self.config.seed + 1)
        # Conv/FC weights are the tensors that both get mapped onto MRs and
        # receive noise-aware training perturbations.
        self._noisy_params = [
            param for param in self.model.parameters() if param.kind in ("conv", "fc")
        ]

    def _build_optimizer(self) -> Optimizer:
        params = self.model.parameters()
        if self.config.optimizer == "adam":
            return Adam(params, lr=self.config.lr, weight_decay=self.config.weight_decay)
        return SGD(
            params,
            lr=self.config.lr,
            momentum=self.config.momentum,
            weight_decay=self.config.weight_decay,
        )

    # ------------------------------------------------------------------ fit
    def fit(self, train: Dataset, test: Dataset | None = None) -> TrainingHistory:
        """Train the model and return the per-epoch history."""
        history = TrainingHistory()
        loader = DataLoader(
            train,
            batch_size=self.config.batch_size,
            shuffle=True,
            seed=self.config.seed,
        )
        for epoch in range(self.config.epochs):
            epoch_loss, epoch_accuracy = self._run_epoch(loader)
            history.train_loss.append(epoch_loss)
            history.train_accuracy.append(epoch_accuracy)
            history.l2_penalty.append(
                l2_penalty(
                    self.model.parameters(),
                    self.config.weight_decay,
                    num_samples=len(train),
                )
            )
            if test is not None:
                test_accuracy = evaluate_accuracy(self.model, test, self.config.batch_size)
                history.test_accuracy.append(test_accuracy)
            if self.config.verbose:
                test_msg = (
                    f", test_acc={history.test_accuracy[-1]:.3f}" if test is not None else ""
                )
                print(
                    f"epoch {epoch + 1}/{self.config.epochs}: "
                    f"loss={epoch_loss:.4f}, train_acc={epoch_accuracy:.3f}{test_msg}"
                )
        return history

    def _run_epoch(self, loader: DataLoader) -> tuple[float, float]:
        """One pass over the training loader; returns (mean loss, accuracy)."""
        self.model.train()
        total_loss = 0.0
        total_correct = 0
        total_samples = 0
        for images, labels in loader:
            self.optimizer.zero_grad()
            with _WeightNoise(self._noisy_params, self.config.weight_noise_std, self._noise_rng):
                logits = self.model(images)
                loss = self.loss_fn(logits, labels)
                grad_logits = self.loss_fn.backward()
                self.model.backward(grad_logits)
            self.optimizer.step()
            batch = labels.shape[0]
            total_loss += loss * batch
            total_correct += int((np.argmax(logits, axis=1) == labels).sum())
            total_samples += batch
        if total_samples == 0:
            return float("nan"), float("nan")
        return total_loss / total_samples, total_correct / total_samples


class _WeightNoise:
    """Context manager implementing weight-level noise-aware training.

    On entry, each conv/fc weight tensor is perturbed with zero-mean Gaussian
    noise whose standard deviation is ``std`` times the tensor's own standard
    deviation (relative noise); on exit the original values are restored.
    Gradients are therefore computed at the perturbed point, which is the
    standard noise-injection training recipe for analog accelerators.
    """

    def __init__(self, parameters, std: float, rng: np.random.Generator):
        self.parameters = parameters
        self.std = float(std)
        self.rng = rng
        self._saved: list[np.ndarray] = []

    def __enter__(self) -> "_WeightNoise":
        if self.std <= 0:
            return self
        self._saved = [param.data.copy() for param in self.parameters]
        for param in self.parameters:
            scale = self.std * max(float(param.data.std()), 1e-8)
            param.data = param.data + self.rng.normal(0.0, scale, size=param.data.shape).astype(
                np.float32
            )
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        if self.std <= 0:
            return
        for param, saved in zip(self.parameters, self._saved):
            param.data = saved
        self._saved = []


def evaluate_accuracy(model: Module, dataset: Dataset, batch_size: int = 64) -> float:
    """Top-1 accuracy of ``model`` on ``dataset`` (inference mode)."""
    model.eval()
    loader = DataLoader(dataset, batch_size=batch_size, shuffle=False)
    correct = 0
    total = 0
    for images, labels in loader:
        logits = model(images)
        correct += int((np.argmax(logits, axis=1) == labels).sum())
        total += labels.shape[0]
    return correct / total if total else float("nan")
