"""Weight-initialization schemes."""

from __future__ import annotations

import numpy as np

from repro.utils.rng import default_rng

__all__ = ["he_normal", "he_uniform", "xavier_uniform", "xavier_normal", "zeros", "ones"]


def _fan_in_out(shape: tuple[int, ...]) -> tuple[int, int]:
    """Compute fan-in/fan-out for dense (out, in) and conv (F, C, KH, KW) shapes."""
    if len(shape) == 2:
        fan_out, fan_in = shape
    elif len(shape) == 4:
        receptive = shape[2] * shape[3]
        fan_in = shape[1] * receptive
        fan_out = shape[0] * receptive
    else:
        fan_in = fan_out = int(np.prod(shape)) if shape else 1
    return max(fan_in, 1), max(fan_out, 1)


def he_normal(shape: tuple[int, ...], rng: np.random.Generator | int | None = None) -> np.ndarray:
    """Kaiming-He normal initialization (suited for ReLU networks)."""
    rng = default_rng(rng)
    fan_in, _ = _fan_in_out(shape)
    std = np.sqrt(2.0 / fan_in)
    return rng.normal(0.0, std, size=shape).astype(np.float32)


def he_uniform(shape: tuple[int, ...], rng: np.random.Generator | int | None = None) -> np.ndarray:
    """Kaiming-He uniform initialization."""
    rng = default_rng(rng)
    fan_in, _ = _fan_in_out(shape)
    bound = np.sqrt(6.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


def xavier_uniform(shape: tuple[int, ...], rng: np.random.Generator | int | None = None) -> np.ndarray:
    """Glorot/Xavier uniform initialization (suited for tanh/sigmoid networks)."""
    rng = default_rng(rng)
    fan_in, fan_out = _fan_in_out(shape)
    bound = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


def xavier_normal(shape: tuple[int, ...], rng: np.random.Generator | int | None = None) -> np.ndarray:
    """Glorot/Xavier normal initialization."""
    rng = default_rng(rng)
    fan_in, fan_out = _fan_in_out(shape)
    std = np.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape).astype(np.float32)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    """All-zero initialization (biases)."""
    return np.zeros(shape, dtype=np.float32)


def ones(shape: tuple[int, ...]) -> np.ndarray:
    """All-one initialization (batch-norm scale)."""
    return np.ones(shape, dtype=np.float32)
