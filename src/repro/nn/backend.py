"""Registry-selectable compute backends for the NN hot kernels.

Every hot kernel in the layer stack — the dense/batched matmuls behind
:class:`~repro.nn.layers.linear.Linear` and
:class:`~repro.nn.layers.conv.Conv2D`, the im2col/col2im unfolds, the
pooling window maxima, the per-variant batch-norm reductions and the
injection carrier-scale multiply — dispatches through a
:class:`ComputeBackend` instance.  Backends register by name (mirroring the
attack registry in :mod:`repro.attacks.registry`) and are selected, in
precedence order, by

1. an explicit :func:`use_backend` context (per-call override),
2. the ``REPRO_NN_BACKEND`` environment variable,
3. the ``reference`` default.

``reference`` delegates to exactly the expressions the layers used before
backends existed, so it is bit-identical to the historical code path and
every golden/equivalence test keeps its meaning.  ``fast`` keeps the same
math but trades allocations and serial slab loops for

* preallocated, reused im2col workspaces keyed by ``(shape, dtype)`` on the
  inference/ensemble paths (where the patch matrix is consumed immediately
  and never cached for backward),
* a single-pass im2col that writes patches directly in the final
  ``(batch, oh, ow, C, kh, kw)`` layout instead of filling an intermediate
  layout and copying through a transpose,
* threaded batched matmuls that split the variant/scenario slab axis across
  a shared :class:`~concurrent.futures.ThreadPoolExecutor` (NumPy's BLAS
  releases the GIL; ``REPRO_NN_THREADS`` / ``--threads`` control the width),
* fused single-pass per-variant moments for stacked batch norm, and
* optional numba-jitted pooling/injection kernels used only when numba
  imports cleanly (see :mod:`repro.nn._numba_kernels`).

Thread count never changes which slab a matmul computes, so the ``fast``
backend is deterministic for a given backend name; it is validated against
``reference`` by tolerance (not bit-exactness) in ``tests/test_backends.py``
and ``repro bench --suite backends``.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager

import numpy as np

import repro.nn._numba_kernels as _nk
import repro.nn.functional as F

__all__ = [
    "ComputeBackend",
    "ReferenceBackend",
    "FastBackend",
    "register_backend",
    "get_backend",
    "registered_backends",
    "active_backend",
    "use_backend",
    "resolve_backend_name",
    "resolve_threads",
    "backend_provenance",
    "cache_environment",
    "DEFAULT_BACKEND",
    "BACKEND_ENV_VAR",
    "THREADS_ENV_VAR",
]

DEFAULT_BACKEND = "reference"
BACKEND_ENV_VAR = "REPRO_NN_BACKEND"
THREADS_ENV_VAR = "REPRO_NN_THREADS"

_REGISTRY: dict[str, type["ComputeBackend"]] = {}
_INSTANCES: dict[str, "ComputeBackend"] = {}
#: (backend_name | None, threads | None) override stack pushed by use_backend.
_OVERRIDES: list[tuple[str | None, int | None]] = []

_POOL_LOCK = threading.Lock()
_POOL: ThreadPoolExecutor | None = None
_POOL_WIDTH = 0


def register_backend(cls: type["ComputeBackend"]) -> type["ComputeBackend"]:
    """Class decorator registering a :class:`ComputeBackend` under ``cls.name``."""
    name = getattr(cls, "name", None)
    if not name or not isinstance(name, str):
        raise ValueError(f"backend class {cls.__name__} must define a string `name`")
    if name in _REGISTRY and _REGISTRY[name] is not cls:
        raise ValueError(f"backend {name!r} is already registered")
    _REGISTRY[name] = cls
    _INSTANCES.pop(name, None)
    return cls


def registered_backends() -> tuple[str, ...]:
    """Names of all registered backends, sorted."""
    return tuple(sorted(_REGISTRY))


def get_backend(name: str | None = None) -> "ComputeBackend":
    """Return the (shared) backend instance for ``name``.

    ``None`` resolves through the override stack / environment / default, so
    ``get_backend()`` is the instance the layers are currently dispatching to.
    """
    resolved = resolve_backend_name(name)
    if resolved not in _REGISTRY:
        raise ValueError(
            f"unknown compute backend {resolved!r}; "
            f"registered: {', '.join(registered_backends())}"
        )
    instance = _INSTANCES.get(resolved)
    if instance is None:
        instance = _REGISTRY[resolved]()
        _INSTANCES[resolved] = instance
    return instance


def active_backend() -> "ComputeBackend":
    """The backend the layer kernels dispatch to right now."""
    return get_backend(None)


def resolve_backend_name(name: str | None = None) -> str:
    """Resolve a backend name: explicit > context override > env > default."""
    if name:
        return name
    for override, _ in reversed(_OVERRIDES):
        if override:
            return override
    env = os.environ.get(BACKEND_ENV_VAR, "").strip()
    return env or DEFAULT_BACKEND


def resolve_threads(threads: int | None = None) -> int:
    """Resolve the slab-axis thread count: explicit > context > env > cores."""
    if threads is not None and threads > 0:
        return int(threads)
    for _, override in reversed(_OVERRIDES):
        if override is not None and override > 0:
            return int(override)
    env = os.environ.get(THREADS_ENV_VAR, "").strip()
    if env:
        try:
            value = int(env)
        except ValueError as exc:
            raise ValueError(f"{THREADS_ENV_VAR} must be an integer, got {env!r}") from exc
        if value > 0:
            return value
    return max(1, os.cpu_count() or 1)


@contextmanager
def use_backend(name: str | None = None, threads: int | None = None):
    """Context manager selecting the backend (and thread width) for a scope.

    Either argument may be ``None`` to keep the surrounding resolution; the
    previous selection is restored on exit.  Yields the active backend.
    """
    if name:
        get_backend(name)  # validate eagerly so typos fail at entry
    _OVERRIDES.append((name or None, int(threads) if threads else None))
    try:
        yield active_backend()
    finally:
        _OVERRIDES.pop()


def backend_provenance(
    name: str | None = None, threads: int | None = None
) -> dict[str, object]:
    """Provenance fields describing the effective backend selection.

    ``name``/``threads`` are per-run overrides (e.g. resolved experiment
    params); falsy values fall through to the ambient resolution.
    """
    return {
        "nn_backend": resolve_backend_name(name or None),
        "nn_threads": resolve_threads(threads or None),
    }


def cache_environment() -> dict[str, object]:
    """Process-level backend state that must key the result cache.

    Returns ``{}`` under the default configuration so fingerprints computed
    before backends existed stay valid; any non-default ``REPRO_NN_BACKEND``
    or explicit ``REPRO_NN_THREADS`` shows up in the mapping (and therefore
    in :func:`repro.engine.spec.spec_fingerprint`), so cached results are
    never silently served across backends.
    """
    env: dict[str, object] = {}
    backend = os.environ.get(BACKEND_ENV_VAR, "").strip()
    threads = os.environ.get(THREADS_ENV_VAR, "").strip()
    if backend and backend != DEFAULT_BACKEND:
        env["nn_backend"] = backend
        env["nn_threads"] = resolve_threads()
    elif threads:
        try:
            value = int(threads)
        except ValueError:
            value = None
        if value and value > 0:
            env["nn_threads"] = value
    return env


def _shared_pool(width: int) -> ThreadPoolExecutor:
    """The shared slab-axis thread pool, grown (never shrunk) to ``width``."""
    global _POOL, _POOL_WIDTH
    with _POOL_LOCK:
        if _POOL is None or _POOL_WIDTH < width:
            if _POOL is not None:
                _POOL.shutdown(wait=False)
            _POOL = ThreadPoolExecutor(
                max_workers=width, thread_name_prefix="repro-nn-backend"
            )
            _POOL_WIDTH = width
        return _POOL


def _matmul_into(a: np.ndarray, b: np.ndarray, out: np.ndarray) -> None:
    np.matmul(a, b, out=out)


class _WorkspacePool:
    """Reusable scratch buffers keyed by ``(shape, dtype)``.

    Borrowed buffers are only handed to *transient* consumers — callers that
    fully overwrite the buffer and drop every reference to it before the next
    borrow of the same key (the inference/ensemble im2col sites).  Training
    paths that cache the patch matrix for backward must never borrow.
    """

    MAX_ENTRIES = 8

    def __init__(self):
        self._buffers: dict[tuple[tuple[int, ...], str], np.ndarray] = {}

    def borrow(self, shape: tuple[int, ...], dtype: np.dtype) -> np.ndarray:
        key = (tuple(int(s) for s in shape), np.dtype(dtype).str)
        buffer = self._buffers.get(key)
        if buffer is None:
            if len(self._buffers) >= self.MAX_ENTRIES:
                self._buffers.pop(next(iter(self._buffers)))
            buffer = np.empty(key[0], dtype=dtype)
            self._buffers[key] = buffer
        return buffer

    def release(self) -> None:
        self._buffers.clear()


class ComputeBackend:
    """Kernel dispatch surface shared by every backend.

    The base class implements the historical (pre-backend) expressions, so a
    subclass only overrides the kernels it accelerates.  All methods must
    keep the reference semantics: same shapes, same dtypes, results within
    documented tolerance (bit-identical for ``reference``).
    """

    name = "abstract"
    description = ""

    # --- dense / batched matmuls -------------------------------------------------
    def matmul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """2-D GEMM ``a @ b``."""
        return a @ b

    def stacked_matmul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Batched matmul over a leading variant/scenario slab axis."""
        return np.matmul(a, b)

    # --- unfold / fold -----------------------------------------------------------
    def im2col(
        self,
        x: np.ndarray,
        kernel_h: int,
        kernel_w: int,
        stride: int,
        padding: int,
        transient: bool = False,
    ) -> tuple[np.ndarray, int, int]:
        """Unfold NCHW input into the ``(N*oh*ow, C*kh*kw)`` patch matrix.

        ``transient=True`` promises the caller consumes the patch matrix
        before the next backend call and never caches it, allowing workspace
        reuse in backends that support it.
        """
        return F.im2col(x, kernel_h, kernel_w, stride, padding)

    def col2im(
        self,
        cols: np.ndarray,
        input_shape: tuple[int, int, int, int],
        kernel_h: int,
        kernel_w: int,
        stride: int,
        padding: int,
    ) -> np.ndarray:
        """Fold a patch matrix back into NCHW, summing overlaps."""
        return F.col2im(cols, input_shape, kernel_h, kernel_w, stride, padding)

    # --- pooling -----------------------------------------------------------------
    def window_max(self, x: np.ndarray, kernel: int) -> np.ndarray:
        """Non-overlapping ``kernel x kernel`` window max over NCHW input."""
        batch, channels, height, width = x.shape
        windows = x.reshape(
            batch, channels, height // kernel, kernel, width // kernel, kernel
        )
        return windows.max(axis=(3, 5))

    # --- batch norm --------------------------------------------------------------
    def stacked_moments(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Per-variant channel ``(mean, var)`` of a ``(V, N, C, H, W)`` slab."""
        variants = x.shape[0]
        mean = np.stack([x[v].mean(axis=(0, 2, 3)) for v in range(variants)])
        var = np.stack([x[v].var(axis=(0, 2, 3)) for v in range(variants)])
        return mean, var

    # --- injection ---------------------------------------------------------------
    def scale_rows(
        self, magnitudes: np.ndarray, rows: list[int], scales: np.ndarray
    ) -> None:
        """In-place ``magnitudes[rows] *= scales`` (carrier-scale multiply)."""
        magnitudes[rows] *= scales

    # --- housekeeping ------------------------------------------------------------
    def release_workspaces(self) -> None:
        """Drop any cached scratch buffers (no-op for stateless backends)."""

    def describe(self) -> dict[str, object]:
        """Identity fields for provenance/reports."""
        return {"backend": self.name, "threads": resolve_threads()}

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


@register_backend
class ReferenceBackend(ComputeBackend):
    """The historical code path, bit-identical to the pre-backend layers."""

    name = "reference"
    description = "bit-identical baseline (historical layer expressions)"


@register_backend
class FastBackend(ComputeBackend):
    """Allocation-avoiding, thread-parallel backend (tolerance-validated)."""

    name = "fast"
    description = (
        "reused im2col workspaces, single-pass unfold, threaded slab matmuls, "
        "fused stacked moments, optional numba kernels"
    )

    #: Minimum ``lead * n * k * m`` product before threading a batched matmul;
    #: below this the submit/join overhead dominates the BLAS wins.
    MIN_THREADED_WORK = 1 << 21

    def __init__(self):
        self._workspaces = _WorkspacePool()

    def im2col(
        self,
        x: np.ndarray,
        kernel_h: int,
        kernel_w: int,
        stride: int,
        padding: int,
        transient: bool = False,
    ) -> tuple[np.ndarray, int, int]:
        if not transient:
            # The write-direct pass below only beats the reference fill +
            # transpose copy when the allocation is amortized by workspace
            # reuse; a fresh non-transient patch matrix (e.g. conv cols kept
            # for the backward) is faster through the reference layout.
            return F.im2col(x, kernel_h, kernel_w, stride, padding)
        batch, channels, height, width = x.shape
        out_h = F.conv_output_size(height, kernel_h, stride, padding)
        out_w = F.conv_output_size(width, kernel_w, stride, padding)
        if padding > 0:
            x = np.pad(
                x,
                ((0, 0), (0, 0), (padding, padding), (padding, padding)),
                mode="constant",
            )
        # Write patches directly in the final (batch, oh, ow, C, kh, kw)
        # layout: one strided pass into the reused workspace instead of the
        # reference's allocate + fill + full transpose copy.  Element values
        # and the resulting C-contiguous 2-D layout match the reference
        # exactly.
        shape = (batch, out_h, out_w, channels, kernel_h, kernel_w)
        patches = self._workspaces.borrow(shape, x.dtype)
        for ky in range(kernel_h):
            y_end = ky + stride * out_h
            for kx in range(kernel_w):
                x_end = kx + stride * out_w
                patches[:, :, :, :, ky, kx] = x[
                    :, :, ky:y_end:stride, kx:x_end:stride
                ].transpose(0, 2, 3, 1)
        return (
            patches.reshape(batch * out_h * out_w, channels * kernel_h * kernel_w),
            out_h,
            out_w,
        )

    def stacked_matmul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        if (
            a.ndim == 3
            and b.ndim == 3
            and b.shape[0] == 1
            and a.shape[0] > 1
            and a.flags.c_contiguous
        ):
            # Shared weights, per-slab activations fuse into ONE large GEMM
            # instead of `lead` small ones: (V*n, k) @ (k, m) — both reshapes
            # are views, no copies at all.  BLAS blocking may round the fused
            # reduction differently, which is why the fast backend is
            # tolerance-tested, not bit-exact.  (The mirrored case — shared
            # activations, per-slab weights — is deliberately NOT fused: the
            # (n, k) @ (k, V*m) form needs a full transpose repack of the
            # output slab, which costs more than the fused GEMM saves.)
            lead, rows, inner = a.shape
            out = a.reshape(lead * rows, inner) @ b[0]
            return out.reshape(lead, rows, out.shape[-1])
        if (
            a.ndim == 3
            and b.ndim == 3
            and a.shape[0] == b.shape[0]
            and a.shape[0] > 1
        ):
            lead, rows, inner = a.shape
            cols = b.shape[2]
            threads = resolve_threads()
            if (
                threads > 1
                and lead * rows * inner * cols >= self.MIN_THREADED_WORK
            ):
                out = np.empty((lead, rows, cols), dtype=np.result_type(a, b))
                width = min(threads, lead)
                chunk = -(-lead // width)
                pool = _shared_pool(width)
                futures = [
                    pool.submit(
                        _matmul_into,
                        a[start : start + chunk],
                        b[start : start + chunk],
                        out[start : start + chunk],
                    )
                    for start in range(0, lead, chunk)
                ]
                for future in futures:
                    future.result()
                return out
        return np.matmul(a, b)

    def window_max(self, x: np.ndarray, kernel: int) -> np.ndarray:
        if _nk.NUMBA_AVAILABLE and x.flags.c_contiguous:
            return _nk.window_max_nonoverlap(x, kernel)
        return super().window_max(x, kernel)

    def stacked_moments(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        # One fused pass over the whole (V, N, C, H, W) slab instead of V
        # sequential slab reductions; within float tolerance of the
        # reference loop (different summation grouping), never bit-exact.
        mean = x.mean(axis=(1, 3, 4))
        var = x.var(axis=(1, 3, 4))
        return mean, var

    def scale_rows(
        self, magnitudes: np.ndarray, rows: list[int], scales: np.ndarray
    ) -> None:
        if _nk.NUMBA_AVAILABLE and magnitudes.flags.c_contiguous:
            _nk.scale_rows_inplace(
                magnitudes,
                np.asarray(rows, dtype=np.int64),
                np.ascontiguousarray(scales),
            )
            return
        super().scale_rows(magnitudes, rows, scales)

    def release_workspaces(self) -> None:
        self._workspaces.release()

    def describe(self) -> dict[str, object]:
        info = super().describe()
        info["numba"] = bool(_nk.NUMBA_AVAILABLE)
        return info
