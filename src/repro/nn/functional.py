"""Stateless numerical routines shared by the layers: im2col, softmax, etc."""

from __future__ import annotations

import numpy as np

__all__ = [
    "conv_output_size",
    "im2col",
    "col2im",
    "softmax",
    "log_softmax",
    "relu",
    "sigmoid",
    "one_hot",
]


def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Spatial output size of a convolution/pooling window."""
    out = (size + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise ValueError(
            f"Invalid convolution geometry: size={size}, kernel={kernel}, "
            f"stride={stride}, padding={padding}"
        )
    return out


def im2col(
    x: np.ndarray, kernel_h: int, kernel_w: int, stride: int, padding: int
) -> tuple[np.ndarray, int, int]:
    """Unfold ``x`` (NCHW) into a matrix of sliding patches.

    Returns ``(cols, out_h, out_w)`` where ``cols`` has shape
    ``(N * out_h * out_w, C * kernel_h * kernel_w)``.
    """
    batch, channels, height, width = x.shape
    out_h = conv_output_size(height, kernel_h, stride, padding)
    out_w = conv_output_size(width, kernel_w, stride, padding)
    if padding > 0:
        x = np.pad(
            x, ((0, 0), (0, 0), (padding, padding), (padding, padding)), mode="constant"
        )
    cols = np.empty(
        (batch, channels, kernel_h, kernel_w, out_h, out_w), dtype=x.dtype
    )
    for ky in range(kernel_h):
        y_end = ky + stride * out_h
        for kx in range(kernel_w):
            x_end = kx + stride * out_w
            cols[:, :, ky, kx, :, :] = x[:, :, ky:y_end:stride, kx:x_end:stride]
    cols = cols.transpose(0, 4, 5, 1, 2, 3).reshape(
        batch * out_h * out_w, channels * kernel_h * kernel_w
    )
    return cols, out_h, out_w


def col2im(
    cols: np.ndarray,
    input_shape: tuple[int, int, int, int],
    kernel_h: int,
    kernel_w: int,
    stride: int,
    padding: int,
) -> np.ndarray:
    """Fold a patch matrix produced by :func:`im2col` back into an NCHW tensor.

    Overlapping patch contributions are summed, which is exactly the gradient
    of the unfold operation.
    """
    batch, channels, height, width = input_shape
    out_h = conv_output_size(height, kernel_h, stride, padding)
    out_w = conv_output_size(width, kernel_w, stride, padding)
    cols = cols.reshape(batch, out_h, out_w, channels, kernel_h, kernel_w).transpose(
        0, 3, 4, 5, 1, 2
    )
    padded = np.zeros(
        (batch, channels, height + 2 * padding, width + 2 * padding), dtype=cols.dtype
    )
    for ky in range(kernel_h):
        y_end = ky + stride * out_h
        for kx in range(kernel_w):
            x_end = kx + stride * out_w
            padded[:, :, ky:y_end:stride, kx:x_end:stride] += cols[:, :, ky, kx, :, :]
    if padding > 0:
        return padded[:, :, padding:-padding, padding:-padding]
    return padded


def softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax."""
    shifted = logits - np.max(logits, axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / np.sum(exp, axis=axis, keepdims=True)


def log_softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable log-softmax."""
    shifted = logits - np.max(logits, axis=axis, keepdims=True)
    return shifted - np.log(np.sum(np.exp(shifted), axis=axis, keepdims=True))


def relu(x: np.ndarray) -> np.ndarray:
    """Elementwise rectified linear unit."""
    return np.maximum(x, 0.0)


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Elementwise logistic sigmoid (stable for large ``|x|``).

    Computed directly in the input's floating dtype — no float64 temporary
    and no cast-back copy.
    """
    dtype = x.dtype if np.issubdtype(x.dtype, np.floating) else np.float64
    out = np.empty_like(x, dtype=dtype)
    positive = x >= 0
    negative = ~positive
    out[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
    exp_x = np.exp(x[negative])
    out[negative] = exp_x / (1.0 + exp_x)
    return out


def one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    """One-hot encode integer labels as a float32 ``(N, num_classes)`` matrix.

    The single one-hot encoder in the package; the losses build their
    (optionally label-smoothed) targets on top of it.
    """
    encoded = np.zeros((labels.shape[0], num_classes), dtype=np.float32)
    encoded[np.arange(labels.shape[0]), labels] = 1.0
    return encoded
