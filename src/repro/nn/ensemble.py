"""Ensemble (scenario-stacked) inference support for the NumPy NN framework.

Scenario-batched attacked inference evaluates ``S`` corrupted weight sets in
one stacked forward pass: each mapped :class:`~repro.nn.tensor.Parameter`
carries a ``(S, *shape)`` stacked value, activations gain a leading scenario
axis, and every layer broadcasts over it:

* :class:`~repro.nn.layers.linear.Linear` contracts
  ``einsum('snf,sof->sno')`` (a batched BLAS matmul);
* :class:`~repro.nn.layers.conv.Conv2D` computes im2col **once per input
  batch** while the activations are still shared across scenarios and reuses
  the patch matrix against all ``S`` weight sets as one batched matmul;
* pooling, batch-norm (inference statistics), flatten and the elementwise
  activations fold the scenario axis into the batch axis.

A stacked value with the singleton scenario count ``S = 1`` broadcasts
against truly stacked layers.  The inference engine exploits this: parameters
whose corrupted rows are all identical (e.g. conv kernels under an FC-only
attack) are collapsed to a single shared row, so the forward pass stays
un-replicated until the first genuinely attacked layer.

Ensemble forwards loaded this way are inference-only: layers drop their
backward caches, so calling ``backward`` after a stacked forward raises
instead of silently computing wrong gradients.  Stacked states loaded as
*trainable* (``Module.load_stacked_state(..., trainable=True)``) instead run
cached stacked forwards whose backward accumulates per-variant gradient
slabs — the variant-grid training path driven by
:class:`~repro.nn.training.StackedTrainer`.
"""

from __future__ import annotations

from contextlib import contextmanager

import numpy as np

from repro.nn.module import Module

__all__ = [
    "stacked_state",
    "stack_state_dicts",
    "num_scenarios",
    "fold_scenarios",
    "unfold_scenarios",
]


@contextmanager
def stacked_state(
    model: Module,
    stacked: dict[str, np.ndarray],
    backend: str | None = None,
    threads: int | None = None,
):
    """Temporarily attach a stacked per-scenario state to ``model``.

    Usage::

        with stacked_state(model, corrupted_state_batch(model, mapping, outcomes)):
            logits = model(images)          # (S, N, num_classes)
        # ordinary single-weight forward restored here

    ``backend``/``threads`` select the compute backend the stacked forwards
    dispatch to for the duration of the context (see
    :mod:`repro.nn.backend`); ``None`` keeps the ambient selection.
    """
    from repro.nn.backend import use_backend

    model.load_stacked_state(stacked)
    try:
        if backend or threads:
            with use_backend(backend, threads):
                yield model
        else:
            yield model
    finally:
        model.clear_stacked_state()


def stack_state_dicts(states: list[dict[str, np.ndarray]]) -> dict[str, np.ndarray]:
    """Stack per-variant state dicts into one ``name -> (V, *shape)`` mapping.

    All dictionaries must share the same keys and per-key shapes; the result
    is ready for :meth:`~repro.nn.module.Module.load_stacked_state`.
    """
    if not states:
        raise ValueError("need at least one state dict to stack")
    keys = set(states[0])
    for index, state in enumerate(states[1:], start=1):
        if set(state) != keys:
            raise ValueError(
                f"state dict {index} keys differ from state dict 0: "
                f"{sorted(keys ^ set(state))}"
            )
    return {key: np.stack([state[key] for state in states]) for key in states[0]}


def num_scenarios(stacked: dict[str, np.ndarray]) -> int:
    """Scenario count ``S`` of a stacked state (1 when all rows are shared)."""
    counts = {np.asarray(value).shape[0] for value in stacked.values()}
    counts.discard(1)
    if len(counts) > 1:
        raise ValueError(f"inconsistent scenario counts: {sorted(counts)}")
    return counts.pop() if counts else 1


def fold_scenarios(x: np.ndarray) -> tuple[np.ndarray, int]:
    """Fold a ``(S, N, …)`` stacked activation into ``(S*N, …)``.

    Returns the folded array and ``S`` so :func:`unfold_scenarios` can restore
    the leading axis.  Layers that treat every sample independently (pooling,
    inference batch-norm, flatten) use this pair to broadcast over scenarios
    without any dedicated stacked kernel.
    """
    lead = x.shape[0]
    return x.reshape((x.shape[0] * x.shape[1],) + x.shape[2:]), lead


def unfold_scenarios(x: np.ndarray, lead: int) -> np.ndarray:
    """Inverse of :func:`fold_scenarios`: ``(S*N, …)`` back to ``(S, N, …)``."""
    return x.reshape((lead, x.shape[0] // lead) + x.shape[1:])
