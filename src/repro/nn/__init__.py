"""A from-scratch NumPy deep-learning framework.

This subpackage stands in for PyTorch (unavailable offline in this
environment).  It provides exactly what the SafeLight workloads need:

* layers with explicit forward/backward passes (:mod:`repro.nn.layers`),
* losses and optimizers (:mod:`repro.nn.losses`, :mod:`repro.nn.optim`),
* the three CNN architectures from the paper's Table I
  (:mod:`repro.nn.models`),
* a :class:`~repro.nn.training.Trainer` supporting L2 regularization and
  Gaussian noise-aware training.

Weights live in plain ``float32`` NumPy arrays wrapped in
:class:`~repro.nn.tensor.Parameter`, which is also the handle the accelerator
mapping and the attack-injection machinery operate on.
"""

from repro.nn.tensor import Parameter
from repro.nn.module import Module
from repro.nn.layers import (
    AvgPool2D,
    BatchNorm2D,
    Conv2D,
    Dropout,
    Flatten,
    GaussianNoise,
    GlobalAvgPool2D,
    LeakyReLU,
    Linear,
    MaxPool2D,
    ReLU,
    Sequential,
    Sigmoid,
    Tanh,
)
from repro.nn.losses import (
    CrossEntropyLoss,
    StackedCrossEntropyLoss,
    l2_penalty,
    stacked_l2_penalty,
)
from repro.nn.optim import SGD, Adam
from repro.nn.training import (
    StackedTrainer,
    Trainer,
    TrainingConfig,
    TrainingHistory,
    count_correct,
    evaluate_accuracies,
    evaluate_accuracy,
)
from repro.nn.ensemble import num_scenarios, stack_state_dicts, stacked_state
from repro.nn.backend import (
    ComputeBackend,
    FastBackend,
    ReferenceBackend,
    active_backend,
    get_backend,
    register_backend,
    registered_backends,
    use_backend,
)
from repro.nn import backend
from repro.nn import functional
from repro.nn import models

__all__ = [
    "Parameter",
    "Module",
    "Linear",
    "Conv2D",
    "MaxPool2D",
    "AvgPool2D",
    "GlobalAvgPool2D",
    "BatchNorm2D",
    "Dropout",
    "Flatten",
    "GaussianNoise",
    "ReLU",
    "LeakyReLU",
    "Sigmoid",
    "Tanh",
    "Sequential",
    "CrossEntropyLoss",
    "StackedCrossEntropyLoss",
    "l2_penalty",
    "stacked_l2_penalty",
    "SGD",
    "Adam",
    "Trainer",
    "StackedTrainer",
    "TrainingConfig",
    "TrainingHistory",
    "count_correct",
    "evaluate_accuracy",
    "evaluate_accuracies",
    "stacked_state",
    "stack_state_dicts",
    "num_scenarios",
    "ComputeBackend",
    "ReferenceBackend",
    "FastBackend",
    "register_backend",
    "get_backend",
    "registered_backends",
    "active_backend",
    "use_backend",
    "backend",
    "functional",
    "models",
]
