"""Loss functions.

The paper trains all CNN variants with cross-entropy, optionally augmented by
an L2 penalty ``R(w) = (lambda / 2m) * sum(||w||^2)`` (§V.A).  The penalty
value is exposed by :func:`l2_penalty` so reports can show the regularization
term; the corresponding gradient contribution is applied as weight decay by
the optimizers (mathematically equivalent for SGD).
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.nn.functional import log_softmax, one_hot, softmax
from repro.nn.tensor import Parameter

__all__ = ["CrossEntropyLoss", "StackedCrossEntropyLoss", "l2_penalty", "stacked_l2_penalty"]


def _smoothed_targets(
    logits_shape: tuple[int, ...], labels: np.ndarray, label_smoothing: float
) -> np.ndarray:
    """One-hot (optionally label-smoothed) targets of shape ``(N, classes)``."""
    num_classes = logits_shape[-1]
    target = one_hot(labels, num_classes)
    if label_smoothing > 0:
        target = target * (1.0 - label_smoothing) + label_smoothing / num_classes
    return target


class CrossEntropyLoss:
    """Softmax cross-entropy over integer class labels.

    ``forward`` returns the mean loss; ``backward`` returns the gradient with
    respect to the logits (already divided by the batch size).
    """

    def __init__(self, label_smoothing: float = 0.0):
        if not 0 <= label_smoothing < 1:
            raise ValueError(f"label_smoothing must be in [0, 1), got {label_smoothing}")
        self.label_smoothing = float(label_smoothing)
        self._cache: tuple[np.ndarray, np.ndarray] | None = None

    def forward(self, logits: np.ndarray, labels: np.ndarray) -> float:
        logits = np.asarray(logits, dtype=np.float32)
        labels = np.asarray(labels, dtype=np.int64)
        if logits.ndim != 2:
            raise ValueError(f"logits must be 2-D (N, classes), got shape {logits.shape}")
        if labels.shape[0] != logits.shape[0]:
            raise ValueError(
                f"batch mismatch: logits {logits.shape[0]} vs labels {labels.shape[0]}"
            )
        target = _smoothed_targets(logits.shape, labels, self.label_smoothing)
        log_probs = log_softmax(logits, axis=1)
        loss = float(-(target * log_probs).sum(axis=1).mean())
        self._cache = (logits, target)
        return loss

    def backward(self) -> np.ndarray:
        """Gradient of the mean loss with respect to the logits."""
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        logits, target = self._cache
        probs = softmax(logits, axis=1)
        return (probs - target) / logits.shape[0]

    def __call__(self, logits: np.ndarray, labels: np.ndarray) -> float:
        return self.forward(logits, labels)


class StackedCrossEntropyLoss:
    """Cross-entropy over variant-stacked ``(V, N, classes)`` logits.

    ``forward`` returns the per-variant mean losses as a ``(V,)`` vector and
    ``backward`` the per-variant logit gradients ``(V, N, classes)``, each
    already divided by the batch size.  Every variant's loss slab is computed
    with the same operations as :class:`CrossEntropyLoss` applies to a
    standalone batch, so a stacked training step reproduces the serial
    per-variant step exactly.
    """

    def __init__(self, label_smoothing: float = 0.0):
        if not 0 <= label_smoothing < 1:
            raise ValueError(f"label_smoothing must be in [0, 1), got {label_smoothing}")
        self.label_smoothing = float(label_smoothing)
        self._cache: tuple[np.ndarray, np.ndarray] | None = None

    def forward(self, logits: np.ndarray, labels: np.ndarray) -> np.ndarray:
        logits = np.asarray(logits, dtype=np.float32)
        labels = np.asarray(labels, dtype=np.int64)
        if logits.ndim != 3:
            raise ValueError(
                f"stacked logits must be 3-D (V, N, classes), got shape {logits.shape}"
            )
        if labels.shape[0] != logits.shape[1]:
            raise ValueError(
                f"batch mismatch: logits {logits.shape[1]} vs labels {labels.shape[0]}"
            )
        target = _smoothed_targets(logits.shape, labels, self.label_smoothing)
        log_probs = log_softmax(logits, axis=-1)
        losses = -(target * log_probs).sum(axis=-1).mean(axis=-1)
        self._cache = (logits, target)
        return losses.astype(np.float64)

    def backward(self) -> np.ndarray:
        """Per-variant gradient of each mean loss with respect to its logits."""
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        logits, target = self._cache
        probs = softmax(logits, axis=-1)
        return (probs - target) / logits.shape[1]

    def __call__(self, logits: np.ndarray, labels: np.ndarray) -> np.ndarray:
        return self.forward(logits, labels)


def l2_penalty(
    parameters: Iterable[Parameter],
    weight_decay: float,
    num_samples: int = 1,
    include_kinds: tuple[str, ...] = ("conv", "fc"),
) -> float:
    """Compute the L2 penalty ``(lambda / 2m) * sum(||w||^2)`` from the paper.

    Only weight tensors of the given ``kinds`` are penalized (biases and
    normalization parameters are conventionally excluded from weight decay).
    """
    if weight_decay < 0:
        raise ValueError(f"weight_decay must be non-negative, got {weight_decay}")
    if num_samples <= 0:
        raise ValueError(f"num_samples must be positive, got {num_samples}")
    total = 0.0
    for param in parameters:
        if param.kind in include_kinds:
            total += float(np.sum(param.data.astype(np.float64) ** 2))
    return weight_decay / (2.0 * num_samples) * total


def stacked_l2_penalty(
    parameters: Iterable[Parameter],
    weight_decays: np.ndarray,
    num_samples: int = 1,
    include_kinds: tuple[str, ...] = ("conv", "fc"),
) -> np.ndarray:
    """Per-variant :func:`l2_penalty` over variant-stacked parameters.

    ``weight_decays`` carries one lambda per variant; each variant's penalty
    is accumulated over its own weight slabs with the same float64 reductions
    as the serial function, so the two agree bitwise.
    """
    weight_decays = np.asarray(weight_decays, dtype=np.float64)
    if num_samples <= 0:
        raise ValueError(f"num_samples must be positive, got {num_samples}")
    if np.any(weight_decays < 0):
        raise ValueError("weight_decays must be non-negative")
    totals = [0.0] * weight_decays.shape[0]
    for param in parameters:
        if param.kind not in include_kinds:
            continue
        if param.stacked is None:
            raise ValueError(f"parameter {param.name!r} carries no stacked value")
        for index in range(weight_decays.shape[0]):
            totals[index] += float(np.sum(param.stacked[index].astype(np.float64) ** 2))
    return np.array(
        [
            float(weight_decays[index]) / (2.0 * num_samples) * totals[index]
            for index in range(weight_decays.shape[0])
        ]
    )
