"""Loss functions.

The paper trains all CNN variants with cross-entropy, optionally augmented by
an L2 penalty ``R(w) = (lambda / 2m) * sum(||w||^2)`` (§V.A).  The penalty
value is exposed by :func:`l2_penalty` so reports can show the regularization
term; the corresponding gradient contribution is applied as weight decay by
the optimizers (mathematically equivalent for SGD).
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.nn.functional import log_softmax, softmax
from repro.nn.tensor import Parameter

__all__ = ["CrossEntropyLoss", "l2_penalty"]


class CrossEntropyLoss:
    """Softmax cross-entropy over integer class labels.

    ``forward`` returns the mean loss; ``backward`` returns the gradient with
    respect to the logits (already divided by the batch size).
    """

    def __init__(self, label_smoothing: float = 0.0):
        if not 0 <= label_smoothing < 1:
            raise ValueError(f"label_smoothing must be in [0, 1), got {label_smoothing}")
        self.label_smoothing = float(label_smoothing)
        self._cache: tuple[np.ndarray, np.ndarray] | None = None

    def forward(self, logits: np.ndarray, labels: np.ndarray) -> float:
        logits = np.asarray(logits, dtype=np.float32)
        labels = np.asarray(labels, dtype=np.int64)
        if logits.ndim != 2:
            raise ValueError(f"logits must be 2-D (N, classes), got shape {logits.shape}")
        if labels.shape[0] != logits.shape[0]:
            raise ValueError(
                f"batch mismatch: logits {logits.shape[0]} vs labels {labels.shape[0]}"
            )
        num_classes = logits.shape[1]
        target = np.zeros_like(logits)
        target[np.arange(labels.shape[0]), labels] = 1.0
        if self.label_smoothing > 0:
            target = (
                target * (1.0 - self.label_smoothing) + self.label_smoothing / num_classes
            )
        log_probs = log_softmax(logits, axis=1)
        loss = float(-(target * log_probs).sum(axis=1).mean())
        self._cache = (logits, target)
        return loss

    def backward(self) -> np.ndarray:
        """Gradient of the mean loss with respect to the logits."""
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        logits, target = self._cache
        probs = softmax(logits, axis=1)
        return (probs - target) / logits.shape[0]

    def __call__(self, logits: np.ndarray, labels: np.ndarray) -> float:
        return self.forward(logits, labels)


def l2_penalty(
    parameters: Iterable[Parameter],
    weight_decay: float,
    num_samples: int = 1,
    include_kinds: tuple[str, ...] = ("conv", "fc"),
) -> float:
    """Compute the L2 penalty ``(lambda / 2m) * sum(||w||^2)`` from the paper.

    Only weight tensors of the given ``kinds`` are penalized (biases and
    normalization parameters are conventionally excluded from weight decay).
    """
    if weight_decay < 0:
        raise ValueError(f"weight_decay must be non-negative, got {weight_decay}")
    if num_samples <= 0:
        raise ValueError(f"num_samples must be positive, got {num_samples}")
    total = 0.0
    for param in parameters:
        if param.kind in include_kinds:
            total += float(np.sum(param.data.astype(np.float64) ** 2))
    return weight_decay / (2.0 * num_samples) * total
