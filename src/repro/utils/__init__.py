"""Shared utilities: seeded RNG management, validation and serialization."""

from repro.utils.rng import RngFactory, default_rng, spawn_rngs
from repro.utils.validation import (
    ValidationError,
    check_fraction,
    check_in_choices,
    check_positive,
    check_positive_int,
    check_probability,
    check_shape,
)
from repro.utils.serialization import load_arrays, save_arrays

__all__ = [
    "RngFactory",
    "default_rng",
    "spawn_rngs",
    "ValidationError",
    "check_fraction",
    "check_in_choices",
    "check_positive",
    "check_positive_int",
    "check_probability",
    "check_shape",
    "load_arrays",
    "save_arrays",
]
