"""Array serialization helpers.

Trained model parameters and experiment result tables are persisted as
compressed ``.npz`` archives so examples and benchmarks can cache expensive
training runs between invocations.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
from pathlib import Path

import numpy as np

__all__ = ["save_arrays", "load_arrays", "save_json", "load_json"]

#: Monotonic per-process counter making temporary-file names unique across
#: *threads* as well as processes (the serve daemon writes job records and
#: cache entries from several threads of one pid at once).
_TMP_COUNTER = itertools.count()


def _tmp_sibling(path: Path) -> Path:
    """A unique temporary sibling of ``path`` for atomic write-then-rename.

    Uniqueness covers concurrent processes (pid), concurrent threads within a
    process (thread id + counter), and repeated calls from the same thread
    (counter), so no two in-flight writes ever share a temporary file.
    """
    return path.with_name(
        f"{path.name}.tmp{os.getpid()}-{threading.get_ident()}-{next(_TMP_COUNTER)}"
    )


def save_arrays(path: str | Path, arrays: dict[str, np.ndarray]) -> Path:
    """Save a name→array mapping to a compressed ``.npz`` file.

    Parent directories are created as needed, and the archive is written to a
    temporary sibling then atomically renamed, so concurrent writers (e.g.
    process-pool sweep workers filling the checkpoint store) never expose a
    partially written file.  Returns the resolved path.
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = _tmp_sibling(path)
    try:
        with open(tmp, "wb") as handle:
            np.savez_compressed(
                handle, **{key: np.asarray(value) for key, value in arrays.items()}
            )
        os.replace(tmp, path)
    finally:
        if tmp.exists():
            tmp.unlink()
    return path


def load_arrays(path: str | Path) -> dict[str, np.ndarray]:
    """Load a ``.npz`` archive back into a plain dictionary of arrays."""
    with np.load(Path(path), allow_pickle=False) as archive:
        return {key: archive[key] for key in archive.files}


def save_json(path: str | Path, payload: dict) -> Path:
    """Serialize ``payload`` to pretty-printed JSON, converting NumPy scalars.

    The document is written to a temporary sibling then atomically renamed:
    concurrent writers (checkpoint hit-counter updates from parallel sweep
    workers, cache records, serve-daemon job updates from multiple threads)
    can interleave without ever leaving a truncated file behind — readers
    always see either the previous complete document or the new one.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = _tmp_sibling(path)
    try:
        tmp.write_text(json.dumps(payload, indent=2, sort_keys=True, default=_to_builtin))
        os.replace(tmp, path)
    finally:
        if tmp.exists():
            tmp.unlink()
    return path


def load_json(path: str | Path) -> dict:
    """Load a JSON document written by :func:`save_json`."""
    return json.loads(Path(path).read_text())


def _to_builtin(value):
    """JSON serializer fallback for NumPy types."""
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    raise TypeError(f"Cannot serialize {type(value).__name__} to JSON")
