"""Lightweight argument-validation helpers shared across the library."""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

__all__ = [
    "ValidationError",
    "check_positive",
    "check_positive_int",
    "check_fraction",
    "check_probability",
    "check_in_choices",
    "check_shape",
]


class ValidationError(ValueError):
    """Raised when a public API receives an argument outside its domain."""


def check_positive(value: float, name: str) -> float:
    """Return ``value`` if strictly positive, raise :class:`ValidationError` otherwise."""
    if not np.isfinite(value) or value <= 0:
        raise ValidationError(f"{name} must be a finite positive number, got {value!r}")
    return float(value)


def check_positive_int(value: int, name: str) -> int:
    """Return ``value`` if it is a strictly positive integer."""
    if not isinstance(value, (int, np.integer)) or isinstance(value, bool):
        raise ValidationError(f"{name} must be an integer, got {type(value).__name__}")
    if value <= 0:
        raise ValidationError(f"{name} must be positive, got {value}")
    return int(value)


def check_fraction(value: float, name: str, *, allow_zero: bool = False) -> float:
    """Validate a fraction in ``(0, 1]`` (or ``[0, 1]`` when ``allow_zero``)."""
    if not np.isfinite(value):
        raise ValidationError(f"{name} must be finite, got {value!r}")
    lower_ok = value >= 0 if allow_zero else value > 0
    if not lower_ok or value > 1:
        bound = "[0, 1]" if allow_zero else "(0, 1]"
        raise ValidationError(f"{name} must lie in {bound}, got {value}")
    return float(value)


def check_probability(value: float, name: str) -> float:
    """Validate a probability in ``[0, 1]``."""
    return check_fraction(value, name, allow_zero=True)


def check_in_choices(value: str, name: str, choices: Iterable[str]) -> str:
    """Validate that ``value`` is one of ``choices``."""
    options = tuple(choices)
    if value not in options:
        raise ValidationError(f"{name} must be one of {options}, got {value!r}")
    return value


def check_shape(array: np.ndarray, shape: Sequence[int | None], name: str) -> np.ndarray:
    """Validate an array's shape; ``None`` entries are wildcards."""
    array = np.asarray(array)
    if array.ndim != len(shape):
        raise ValidationError(
            f"{name} must have {len(shape)} dimensions, got {array.ndim}"
        )
    for axis, (actual, expected) in enumerate(zip(array.shape, shape)):
        if expected is not None and actual != expected:
            raise ValidationError(
                f"{name} has shape {array.shape}, expected axis {axis} == {expected}"
            )
    return array
