"""Deterministic random-number-generator management.

Every stochastic component in the library (dataset synthesis, weight
initialization, noise-aware training, attack scenario sampling) takes an
explicit ``numpy.random.Generator`` or an integer seed.  This module
centralizes the helpers used to derive independent generators from a single
experiment seed so results are reproducible run-to-run.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["default_rng", "seed_int", "spawn_rngs", "stable_hash", "RngFactory"]


def default_rng(seed: int | np.random.Generator | None = None) -> np.random.Generator:
    """Return a ``numpy.random.Generator``.

    Accepts ``None`` (fresh entropy), an integer seed, or an existing
    generator (returned unchanged).  This mirrors how most public APIs in the
    library accept their ``rng``/``seed`` arguments.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def seed_int(seed: int | np.random.Generator | None) -> int:
    """Best-effort integer representation of a seed for bookkeeping.

    Outcome records (e.g. :class:`repro.attacks.base.AttackOutcome`) store the
    seed they were sampled with; a pre-built ``Generator`` carries no single
    integer seed, so it is recorded as ``-1``.
    """
    if isinstance(seed, (int, np.integer)):
        return int(seed)
    return -1


def spawn_rngs(seed: int | None, count: int) -> list[np.random.Generator]:
    """Derive ``count`` statistically independent generators from ``seed``.

    Uses ``numpy.random.SeedSequence.spawn`` so that generators for separate
    attack scenarios (for example the 10 random trojan placements per attack
    intensity in Fig. 7) do not overlap.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(count)]


@dataclass
class RngFactory:
    """Factory producing named, reproducible generators from one master seed.

    Each distinct ``name`` maps to a deterministic child seed, so the same
    experiment configuration always draws the same random streams regardless
    of the order in which components request their generators.

    Example
    -------
    >>> factory = RngFactory(seed=7)
    >>> rng_attack = factory.get("attack-placement")
    >>> rng_noise = factory.get("training-noise")
    """

    seed: int = 0
    _cache: dict[str, np.random.Generator] = field(default_factory=dict, repr=False)

    def get(self, name: str) -> np.random.Generator:
        """Return the generator associated with ``name`` (created on demand)."""
        if name not in self._cache:
            child_seed = np.random.SeedSequence([self.seed, _stable_hash(name)])
            self._cache[name] = np.random.default_rng(child_seed)
        return self._cache[name]

    def child_seed(self, name: str) -> int:
        """Return a deterministic integer seed derived from ``name``."""
        return int(
            np.random.SeedSequence([self.seed, _stable_hash(name)]).generate_state(1)[0]
        )


def stable_hash(name: str) -> int:
    """Hash ``name`` into a 32-bit integer that is stable across processes.

    Used to derive named child seeds (:class:`RngFactory`), fault-rule rng
    streams (:mod:`repro.faults`) and retry-backoff jitter — anywhere a string
    must map to the same seed material in every interpreter.
    """
    value = 2166136261
    for byte in name.encode("utf-8"):
        value ^= byte
        value = (value * 16777619) % (2**32)
    return value


#: Backwards-compatible private alias (pre-1.3 internal name).
_stable_hash = stable_hash
