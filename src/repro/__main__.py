"""Entry point for ``python -m repro`` (see :mod:`repro.engine.cli`)."""

from repro.engine.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
