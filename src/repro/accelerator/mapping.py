"""Weight-stationary mapping of CNN parameters onto the accelerator's MR banks.

Every convolution kernel tensor is mapped onto the CONV block and every
fully-connected weight matrix onto the FC block (paper §IV: "All layers of the
models were mapped using a weight-stationary approach").  Weights are laid
out in parameter order: each weight scalar ``i`` of a block occupies slot
``(offset + i) mod capacity`` during mapping round ``(offset + i) // capacity``.
When a model has more weights than a block has MRs, the block is re-used over
multiple rounds and a single compromised MR therefore corrupts one weight per
round — the re-mapping pressure that makes the larger models more
susceptible.

Weight magnitudes are normalized per parameter tensor to ``[0, 1]`` before
being imprinted (signs and scales are restored electronically after the
photodetector), so the mapping records the normalization scale used by the
attack-injection model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.accelerator.config import AcceleratorConfig, BlockGeometry
from repro.nn.module import Module
from repro.nn.tensor import Parameter
from repro.utils.validation import ValidationError, check_in_choices

__all__ = ["MappedParameter", "WeightMapping"]


@dataclass(frozen=True)
class MappedParameter:
    """Mapping record for one weight tensor.

    Attributes
    ----------
    name:
        Dotted parameter name (as returned by ``Module.named_parameters``).
    kind:
        ``"conv"`` or ``"fc"`` — selects the accelerator block.
    shape:
        Tensor shape.
    size:
        Number of scalar weights.
    offset:
        Global offset of the tensor's first weight within its block's
        flattened weight stream.
    scale:
        Per-tensor normalization scale (maximum absolute weight at mapping
        time); used to convert between real weights and the normalized
        values imprinted on the MRs.
    """

    name: str
    kind: str
    shape: tuple[int, ...]
    size: int
    offset: int
    scale: float

    def global_indices(self) -> np.ndarray:
        """Global (block-stream) indices of this tensor's weights."""
        return self.offset + np.arange(self.size, dtype=np.int64)


class WeightMapping:
    """Weight-stationary mapping of a model onto an accelerator configuration.

    Parameters
    ----------
    model:
        The CNN whose ``conv``/``fc`` weight tensors are mapped.
    config:
        Accelerator configuration (block geometries).
    """

    def __init__(self, model: Module, config: AcceleratorConfig):
        self.config = config
        self.parameters: list[MappedParameter] = []
        self._params_by_name: dict[str, Parameter] = {}
        offsets = {"conv": 0, "fc": 0}
        for name, param in model.named_parameters():
            if param.kind not in ("conv", "fc"):
                continue
            scale = float(np.max(np.abs(param.data))) if param.size else 0.0
            mapped = MappedParameter(
                name=name,
                kind=param.kind,
                shape=tuple(param.shape),
                size=param.size,
                offset=offsets[param.kind],
                scale=scale if scale > 0 else 1.0,
            )
            offsets[param.kind] += param.size
            self.parameters.append(mapped)
            self._params_by_name[name] = param
        self._total = dict(offsets)

    # ------------------------------------------------------------- inventory
    def block_geometry(self, block: str) -> BlockGeometry:
        """Geometry of ``"conv"`` or ``"fc"``."""
        return self.config.block(block)

    def total_weights(self, block: str) -> int:
        """Number of model weights mapped onto ``block``."""
        block = check_in_choices(block, "block", ("conv", "fc"))
        return self._total[block]

    def mapping_rounds(self, block: str) -> int:
        """Number of temporal re-mapping rounds the block needs for this model."""
        capacity = self.block_geometry(block).capacity
        total = self.total_weights(block)
        return int(np.ceil(total / capacity)) if total else 0

    def utilization(self, block: str) -> float:
        """Fraction of the block's MRs used in the final mapping round average."""
        capacity = self.block_geometry(block).capacity
        total = self.total_weights(block)
        if total == 0:
            return 0.0
        rounds = self.mapping_rounds(block)
        return total / (rounds * capacity)

    def parameters_in_block(self, block: str) -> list[MappedParameter]:
        """Mapped tensors that live in ``block``."""
        block = check_in_choices(block, "block", ("conv", "fc"))
        return [mp for mp in self.parameters if mp.kind == block]

    def parameter_array(self, name: str) -> Parameter:
        """The live :class:`Parameter` behind a mapped tensor."""
        if name not in self._params_by_name:
            raise ValidationError(f"parameter {name!r} is not mapped")
        return self._params_by_name[name]

    # ------------------------------------------------------------- geometry
    def slots_for(self, mapped: MappedParameter) -> np.ndarray:
        """MR slot index of every weight in ``mapped`` (flat, per its block)."""
        capacity = self.block_geometry(mapped.kind).capacity
        return (mapped.global_indices() % capacity).astype(np.int64)

    def rounds_for(self, mapped: MappedParameter) -> np.ndarray:
        """Mapping round of every weight in ``mapped``."""
        capacity = self.block_geometry(mapped.kind).capacity
        return (mapped.global_indices() // capacity).astype(np.int64)

    def banks_for(self, mapped: MappedParameter) -> np.ndarray:
        """Flat bank index of every weight in ``mapped``."""
        geometry = self.block_geometry(mapped.kind)
        return self.slots_for(mapped) // geometry.cols

    def weights_on_slot(self, block: str, slot: int) -> list[tuple[str, int]]:
        """All ``(parameter name, flat weight index)`` pairs hosted by one MR slot.

        Used by diagnostics and tests; the attack-injection fast path uses the
        vectorized modular arithmetic instead.
        """
        geometry = self.block_geometry(block)
        if not 0 <= slot < geometry.capacity:
            raise ValidationError(f"slot {slot} outside capacity {geometry.capacity}")
        hosted: list[tuple[str, int]] = []
        for mapped in self.parameters_in_block(block):
            # Global indices congruent to ``slot`` modulo capacity that fall
            # inside this tensor's [offset, offset + size) range.
            first_round = (mapped.offset - slot + geometry.capacity - 1) // geometry.capacity
            candidate = first_round * geometry.capacity + slot
            while candidate < mapped.offset + mapped.size:
                if candidate >= mapped.offset:
                    hosted.append((mapped.name, candidate - mapped.offset))
                candidate += geometry.capacity
        return hosted

    # -------------------------------------------------------- normalization
    def normalize(self, mapped: MappedParameter, values: np.ndarray) -> np.ndarray:
        """Real weights → normalized magnitudes in [0, 1]."""
        return np.clip(np.abs(values) / mapped.scale, 0.0, 1.0)

    def denormalize(
        self, mapped: MappedParameter, magnitudes: np.ndarray, signs: np.ndarray
    ) -> np.ndarray:
        """Normalized magnitudes (+ original signs) → real weights."""
        return signs * np.clip(magnitudes, 0.0, 1.0) * mapped.scale

    # ------------------------------------------------------------- reporting
    def describe(self) -> dict[str, object]:
        """Summary used by reports and DESIGN/EXPERIMENTS documentation."""
        return {
            "config": self.config.name,
            "conv_weights": self.total_weights("conv"),
            "fc_weights": self.total_weights("fc"),
            "conv_capacity": self.block_geometry("conv").capacity,
            "fc_capacity": self.block_geometry("fc").capacity,
            "conv_rounds": self.mapping_rounds("conv"),
            "fc_rounds": self.mapping_rounds("fc"),
            "conv_utilization": self.utilization("conv"),
            "fc_utilization": self.utilization("fc"),
            "num_tensors": len(self.parameters),
        }
