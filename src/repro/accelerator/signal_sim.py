"""Detailed device-level simulation of small optical matrix-vector products.

The functional inference path (:mod:`repro.accelerator.inference`) corrupts
weights analytically.  This module runs the same operations through the
actual photonic device models for arbitrary operand sizes, so integration
tests and the examples can validate that the analytic corruption model agrees
with the signal-level behaviour of the hardware.

Two backends compute identical physics:

* ``"array"`` (default) — the vectorized array-core
  (:mod:`repro.photonics.bank_array`): matrix-vector products evaluate all
  rows as one broadcast Lorentzian, and :meth:`SignalLevelSimulator.monte_carlo`
  sweeps thousands of attack trials in one shot.
* ``"object"`` — the seed per-ring object path
  (:mod:`repro.photonics.legacy`), kept as the reference the array-core is
  checked against.  One programmed bank pair is reused across calls instead
  of reconstructing ``2*n`` ring objects per dot product.
"""

from __future__ import annotations

import numpy as np

from repro.photonics.bank_array import BankArrayPair
from repro.photonics.dac_adc import ADC, DAC
from repro.photonics.legacy import ObjectMRBankPair
from repro.photonics.thermal_sensitivity import ThermalSensitivity
from repro.photonics.waveguide import WDMGrid
from repro.utils.validation import ValidationError, check_positive_int

__all__ = ["SignalLevelSimulator"]


class SignalLevelSimulator:
    """Optical computation of normalized matrix-vector products.

    Parameters
    ----------
    vector_size:
        Operand length (number of WDM carriers per bank).
    channel_spacing_nm, q_factor:
        Device parameters (should match the accelerator configuration for
        apples-to-apples comparisons with the functional model).
    use_converters:
        Quantize operands with the DAC and outputs with the ADC.
    backend:
        ``"array"`` (vectorized array-core, default) or ``"object"`` (seed
        per-ring reference path).
    """

    def __init__(
        self,
        vector_size: int,
        channel_spacing_nm: float = 0.8,
        q_factor: float = 16_000.0,
        dac_bits: int = 8,
        adc_bits: int = 10,
        use_converters: bool = False,
        backend: str = "array",
    ):
        if backend not in ("array", "object"):
            raise ValidationError(f"backend must be 'array' or 'object', got {backend!r}")
        self.vector_size = check_positive_int(vector_size, "vector_size")
        self.grid = WDMGrid(num_channels=vector_size, spacing_nm=channel_spacing_nm)
        self.q_factor = q_factor
        self.dac = DAC(bits=dac_bits) if use_converters else None
        self.adc = ADC(bits=adc_bits) if use_converters else None
        self.sensitivity = ThermalSensitivity()
        self.backend = backend
        #: Persistent array-core pair stacks keyed by bank count (1 for dot
        #: products, ``rows`` for matvecs) — rebuilt state, never reallocated
        #: ring objects.
        self._array_pairs: dict[int, BankArrayPair] = {}
        #: Persistent legacy pair, programmed in place across calls.
        self._object_pair: ObjectMRBankPair | None = None

    # ------------------------------------------------------------- plumbing
    def _array_pair(self, banks: int) -> BankArrayPair:
        if banks not in self._array_pairs:
            self._array_pairs[banks] = BankArrayPair(
                self.vector_size, banks=banks, grid=self.grid, q_factor=self.q_factor
            )
        return self._array_pairs[banks]

    def _legacy_pair(self) -> ObjectMRBankPair:
        """The reused seed-path bank pair (2·n ring objects built once)."""
        if self._object_pair is None:
            self._object_pair = ObjectMRBankPair(
                self.vector_size, grid=self.grid, q_factor=self.q_factor
            )
        return self._object_pair

    def _quantize_operands(
        self, inputs: np.ndarray, weights: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        if self.dac is not None:
            inputs = np.clip(self.dac.convert(inputs), 0.0, 1.0)
            weights = np.clip(self.dac.convert(weights), 0.0, 1.0)
        return inputs, weights

    def _quantize_outputs(self, results: np.ndarray | float) -> np.ndarray | float:
        if self.adc is None:
            return results
        normalized = np.asarray(results, dtype=float) / self.vector_size
        return np.asarray(self.adc.convert(normalized)) * self.vector_size

    # -------------------------------------------------------------- products
    def dot(
        self,
        inputs: np.ndarray,
        weights: np.ndarray,
        attacked_weight_mrs: list[int] | None = None,
        bank_delta_t_k: float = 0.0,
    ) -> float:
        """Optical dot product of two normalized vectors with optional attacks.

        Parameters
        ----------
        inputs, weights:
            Normalized operands in ``[0, 1]`` of length ``vector_size``.
        attacked_weight_mrs:
            Indices of weight-bank rings under actuation attack.
        bank_delta_t_k:
            Temperature rise of the weight bank (hotspot attack).
        """
        inputs = np.asarray(inputs, dtype=float)
        weights = np.asarray(weights, dtype=float)
        if inputs.shape != (self.vector_size,) or weights.shape != (self.vector_size,):
            raise ValidationError(
                f"operands must have shape ({self.vector_size},), "
                f"got {inputs.shape} and {weights.shape}"
            )
        inputs, weights = self._quantize_operands(inputs, weights)
        if self.backend == "object":
            pair = self._legacy_pair()
            pair.clear_attacks()
            pair.program(inputs, weights)
            if attacked_weight_mrs:
                pair.weight_bank.apply_actuation_attack(attacked_weight_mrs)
            if bank_delta_t_k > 0:
                pair.weight_bank.apply_thermal_attack(bank_delta_t_k, self.sensitivity)
            result = pair.dot_product()
        else:
            pair = self._array_pair(1)
            pair.clear_attacks()
            pair.program(inputs, weights)
            if attacked_weight_mrs:
                pair.weight_bank.apply_actuation_attack(attacked_weight_mrs)
            if bank_delta_t_k > 0:
                pair.weight_bank.apply_thermal_attack(bank_delta_t_k, self.sensitivity)
            result = float(pair.dot_products()[0])
        return float(self._quantize_outputs(result))

    def matvec(
        self,
        matrix: np.ndarray,
        vector: np.ndarray,
        attacked_rows: dict[int, list[int]] | None = None,
        row_delta_t_k: dict[int, float] | None = None,
    ) -> np.ndarray:
        """Optical matrix-vector product, one bank pair per matrix row.

        ``attacked_rows`` maps row index → attacked weight-MR indices;
        ``row_delta_t_k`` maps row index → bank temperature rise.  The array
        backend evaluates every row in one vectorized pass.
        """
        matrix = np.asarray(matrix, dtype=float)
        vector = np.asarray(vector, dtype=float)
        if matrix.ndim != 2 or matrix.shape[1] != self.vector_size:
            raise ValidationError(
                f"matrix must be (rows, {self.vector_size}), got {matrix.shape}"
            )
        attacked_rows = attacked_rows or {}
        row_delta_t_k = row_delta_t_k or {}
        if self.backend == "object":
            outputs = np.zeros(matrix.shape[0])
            for row in range(matrix.shape[0]):
                outputs[row] = self.dot(
                    vector,
                    matrix[row],
                    attacked_weight_mrs=attacked_rows.get(row),
                    bank_delta_t_k=row_delta_t_k.get(row, 0.0),
                )
            return outputs
        if vector.shape != (self.vector_size,):
            raise ValidationError(
                f"vector must be ({self.vector_size},), got {vector.shape}"
            )
        vector, matrix = self._quantize_operands(vector, matrix)
        pair = self._array_pair(matrix.shape[0])
        outputs = pair.matvec(
            matrix,
            vector,
            attacked_rows=attacked_rows,
            row_delta_t_k=row_delta_t_k,
            sensitivity=self.sensitivity,
        )
        return np.asarray(self._quantize_outputs(outputs), dtype=float)

    # ------------------------------------------------------------ Monte Carlo
    def monte_carlo(
        self,
        inputs: np.ndarray,
        weights: np.ndarray,
        delta_t_k: np.ndarray | None = None,
        actuation_masks: np.ndarray | None = None,
    ) -> np.ndarray:
        """Batched attacked dot products: one result per Monte-Carlo trial.

        The operands are programmed once; per-trial attacks are applied as a
        ``(trials, 1, rings)`` batch axis over the array-core, so a
        thousand-trial thermal sweep is one broadcast evaluation instead of a
        thousand bank reconstructions.

        Parameters
        ----------
        inputs, weights:
            Normalized operands in ``[0, 1]`` of length ``vector_size``.
        delta_t_k:
            Per-trial weight-bank temperature rises, shape ``(trials,)`` (one
            hotspot per trial) or ``(trials, rings)`` (per-ring profiles).
        actuation_masks:
            Per-trial actuated weight-MR masks, shape ``(trials, rings)``.

        Returns
        -------
        ndarray of shape ``(trials,)``.
        """
        inputs = np.asarray(inputs, dtype=float)
        weights = np.asarray(weights, dtype=float)
        if inputs.shape != (self.vector_size,) or weights.shape != (self.vector_size,):
            raise ValidationError(
                f"operands must have shape ({self.vector_size},), "
                f"got {inputs.shape} and {weights.shape}"
            )
        inputs, weights = self._quantize_operands(inputs, weights)
        if delta_t_k is not None:
            delta_t_k = np.asarray(delta_t_k, dtype=float)
            if delta_t_k.ndim == 2:  # (trials, rings) → (trials, 1 bank, rings)
                delta_t_k = delta_t_k[:, None, :]
        if actuation_masks is not None:
            actuation_masks = np.asarray(actuation_masks, dtype=bool)
            if actuation_masks.ndim == 2:
                actuation_masks = actuation_masks[:, None, :]
        pair = self._array_pair(1)
        pair.clear_attacks()
        pair.program(inputs, weights)
        outputs = pair.monte_carlo(
            delta_t_k=delta_t_k,
            actuation_masks=actuation_masks,
            sensitivity=self.sensitivity,
        )[:, 0]
        return np.asarray(self._quantize_outputs(outputs), dtype=float)

    # ---------------------------------------------------------------- checks
    def functional_equivalent_dot(
        self,
        inputs: np.ndarray,
        weights: np.ndarray,
        attacked_weight_mrs: list[int] | None = None,
        bank_delta_t_k: float = 0.0,
        off_resonance_magnitude: float = 0.002,
    ) -> float:
        """The analytic (functional) prediction for the same attacked product.

        Used by tests to check that the fast functional corruption model and
        the device-level simulation agree on small cases.  Mirrors
        :mod:`repro.attacks.injection`: an off-resonance weight ring couples
        ≈0 to the detector; a whole-channel thermal shift re-pairs carriers
        with the previous ring's magnitude; a residual shift scales the
        coupled magnitude down by the Lorentzian factor.
        """
        weights = np.asarray(weights, dtype=float).copy()
        inputs = np.asarray(inputs, dtype=float)
        if attacked_weight_mrs:
            weights[np.asarray(attacked_weight_mrs, dtype=int)] = off_resonance_magnitude
        if bank_delta_t_k > 0:
            shift_nm = self.sensitivity.resonance_shift_nm(
                self.grid.center_nm, bank_delta_t_k
            )
            spacing = self.grid.spacing_nm
            channel_shift = int(np.floor(shift_nm / spacing + 0.5))
            residual = shift_nm - channel_shift * spacing
            linewidth = self.grid.center_nm / self.q_factor
            shifted = np.full_like(weights, off_resonance_magnitude)
            if channel_shift == 0:
                shifted = weights.copy()
            elif channel_shift < self.vector_size:
                shifted[channel_shift:] = weights[: self.vector_size - channel_shift]
            lorentz = 1.0 / (1.0 + (2.0 * residual / linewidth) ** 2)
            weights = shifted * lorentz
        return float(np.dot(inputs, weights))
