"""Detailed device-level simulation of small optical matrix-vector products.

The functional inference path (:mod:`repro.accelerator.inference`) corrupts
weights analytically.  This module runs the same operations through the
actual photonic device models (:class:`~repro.photonics.vdp.VDPUnit`,
:class:`~repro.photonics.mr_bank.MRBankPair`) for small operand sizes, so
integration tests and the examples can validate that the analytic corruption
model agrees with the signal-level behaviour of the hardware.
"""

from __future__ import annotations

import numpy as np

from repro.photonics.dac_adc import ADC, DAC
from repro.photonics.mr_bank import MRBankPair
from repro.photonics.thermal_sensitivity import ThermalSensitivity
from repro.photonics.waveguide import WDMGrid
from repro.utils.validation import ValidationError, check_positive_int

__all__ = ["SignalLevelSimulator"]


class SignalLevelSimulator:
    """Optical computation of normalized matrix-vector products.

    Parameters
    ----------
    vector_size:
        Operand length (number of WDM carriers per bank).
    channel_spacing_nm, q_factor:
        Device parameters (should match the accelerator configuration for
        apples-to-apples comparisons with the functional model).
    use_converters:
        Quantize operands with the DAC and outputs with the ADC.
    """

    def __init__(
        self,
        vector_size: int,
        channel_spacing_nm: float = 0.8,
        q_factor: float = 16_000.0,
        dac_bits: int = 8,
        adc_bits: int = 10,
        use_converters: bool = False,
    ):
        self.vector_size = check_positive_int(vector_size, "vector_size")
        self.grid = WDMGrid(num_channels=vector_size, spacing_nm=channel_spacing_nm)
        self.q_factor = q_factor
        self.dac = DAC(bits=dac_bits) if use_converters else None
        self.adc = ADC(bits=adc_bits) if use_converters else None
        self.sensitivity = ThermalSensitivity()

    def _new_bank_pair(self) -> MRBankPair:
        return MRBankPair(self.vector_size, grid=self.grid, q_factor=self.q_factor)

    # -------------------------------------------------------------- products
    def dot(
        self,
        inputs: np.ndarray,
        weights: np.ndarray,
        attacked_weight_mrs: list[int] | None = None,
        bank_delta_t_k: float = 0.0,
    ) -> float:
        """Optical dot product of two normalized vectors with optional attacks.

        Parameters
        ----------
        inputs, weights:
            Normalized operands in ``[0, 1]`` of length ``vector_size``.
        attacked_weight_mrs:
            Indices of weight-bank rings under actuation attack.
        bank_delta_t_k:
            Temperature rise of the weight bank (hotspot attack).
        """
        inputs = np.asarray(inputs, dtype=float)
        weights = np.asarray(weights, dtype=float)
        if inputs.shape != (self.vector_size,) or weights.shape != (self.vector_size,):
            raise ValidationError(
                f"operands must have shape ({self.vector_size},), "
                f"got {inputs.shape} and {weights.shape}"
            )
        if self.dac is not None:
            inputs = np.clip(self.dac.convert(inputs), 0.0, 1.0)
            weights = np.clip(self.dac.convert(weights), 0.0, 1.0)
        pair = self._new_bank_pair()
        pair.program(inputs, weights)
        if attacked_weight_mrs:
            pair.weight_bank.apply_actuation_attack(attacked_weight_mrs)
        if bank_delta_t_k > 0:
            pair.weight_bank.apply_thermal_attack(bank_delta_t_k, self.sensitivity)
        result = pair.dot_product()
        if self.adc is not None:
            normalized = result / self.vector_size
            result = float(self.adc.convert(normalized)) * self.vector_size
        return result

    def matvec(
        self,
        matrix: np.ndarray,
        vector: np.ndarray,
        attacked_rows: dict[int, list[int]] | None = None,
        row_delta_t_k: dict[int, float] | None = None,
    ) -> np.ndarray:
        """Optical matrix-vector product, one bank pair per matrix row.

        ``attacked_rows`` maps row index → attacked weight-MR indices;
        ``row_delta_t_k`` maps row index → bank temperature rise.
        """
        matrix = np.asarray(matrix, dtype=float)
        vector = np.asarray(vector, dtype=float)
        if matrix.ndim != 2 or matrix.shape[1] != self.vector_size:
            raise ValidationError(
                f"matrix must be (rows, {self.vector_size}), got {matrix.shape}"
            )
        attacked_rows = attacked_rows or {}
        row_delta_t_k = row_delta_t_k or {}
        outputs = np.zeros(matrix.shape[0])
        for row in range(matrix.shape[0]):
            outputs[row] = self.dot(
                vector,
                matrix[row],
                attacked_weight_mrs=attacked_rows.get(row),
                bank_delta_t_k=row_delta_t_k.get(row, 0.0),
            )
        return outputs

    # ---------------------------------------------------------------- checks
    def functional_equivalent_dot(
        self,
        inputs: np.ndarray,
        weights: np.ndarray,
        attacked_weight_mrs: list[int] | None = None,
        bank_delta_t_k: float = 0.0,
        off_resonance_magnitude: float = 0.002,
    ) -> float:
        """The analytic (functional) prediction for the same attacked product.

        Used by tests to check that the fast functional corruption model and
        the device-level simulation agree on small cases.  Mirrors
        :mod:`repro.attacks.injection`: an off-resonance weight ring couples
        ≈0 to the detector; a whole-channel thermal shift re-pairs carriers
        with the previous ring's magnitude; a residual shift scales the
        coupled magnitude down by the Lorentzian factor.
        """
        weights = np.asarray(weights, dtype=float).copy()
        inputs = np.asarray(inputs, dtype=float)
        if attacked_weight_mrs:
            weights[np.asarray(attacked_weight_mrs, dtype=int)] = off_resonance_magnitude
        if bank_delta_t_k > 0:
            shift_nm = self.sensitivity.resonance_shift_nm(
                self.grid.center_nm, bank_delta_t_k
            )
            spacing = self.grid.spacing_nm
            channel_shift = int(np.floor(shift_nm / spacing + 0.5))
            residual = shift_nm - channel_shift * spacing
            linewidth = self.grid.center_nm / self.q_factor
            shifted = np.full_like(weights, off_resonance_magnitude)
            if channel_shift == 0:
                shifted = weights.copy()
            elif channel_shift < self.vector_size:
                shifted[channel_shift:] = weights[: self.vector_size - channel_shift]
            lorentz = 1.0 / (1.0 + (2.0 * residual / linewidth) ** 2)
            weights = shifted * lorentz
        return float(np.dot(inputs, weights))
