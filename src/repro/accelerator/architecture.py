"""User-facing facade for the optical CNN accelerator.

:class:`ONNAccelerator` ties together the configuration, the weight-stationary
mapping, the attacked-inference engine and the power model, mirroring the
architecture diagram of the paper's Fig. 3 (photonic CONV/FC blocks, DAC/ADC
arrays, electronic control).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.accelerator.config import AcceleratorConfig
from repro.accelerator.inference import AttackedInferenceEngine
from repro.accelerator.mapping import WeightMapping
from repro.accelerator.power import PowerModel, PowerReport
from repro.nn.module import Module

__all__ = ["ONNAccelerator", "DeploymentReport"]


@dataclass(frozen=True)
class DeploymentReport:
    """Summary of mapping a model onto the accelerator."""

    model_name: str
    config_name: str
    conv_weights: int
    fc_weights: int
    conv_rounds: int
    fc_rounds: int
    conv_utilization: float
    fc_utilization: float

    def as_dict(self) -> dict[str, object]:
        return {
            "model": self.model_name,
            "config": self.config_name,
            "conv_weights": self.conv_weights,
            "fc_weights": self.fc_weights,
            "conv_rounds": self.conv_rounds,
            "fc_rounds": self.fc_rounds,
            "conv_utilization": self.conv_utilization,
            "fc_utilization": self.fc_utilization,
        }


class ONNAccelerator:
    """The non-coherent optical CNN accelerator (CrossLight-style).

    Parameters
    ----------
    config:
        Block geometries and device parameters; defaults to the paper
        configuration (CONV 100x20x20, FC 60x150x150).

    Example
    -------
    >>> accelerator = ONNAccelerator(AcceleratorConfig.scaled_config())
    >>> engine = accelerator.deploy(model)
    >>> engine.clean_accuracy(test_set)
    """

    def __init__(self, config: AcceleratorConfig | None = None):
        self.config = config or AcceleratorConfig.paper_config()
        self.power_model = PowerModel(self.config)

    def deploy(
        self,
        model: Module,
        quantize_weights: bool = True,
        batch_size: int = 64,
    ) -> AttackedInferenceEngine:
        """Map ``model`` onto the accelerator and return its inference engine."""
        return AttackedInferenceEngine(
            model,
            config=self.config,
            quantize_weights=quantize_weights,
            batch_size=batch_size,
        )

    def mapping_for(self, model: Module) -> WeightMapping:
        """Weight-stationary mapping of ``model`` (without touching its weights)."""
        return WeightMapping(model, self.config)

    def deployment_report(self, model: Module) -> DeploymentReport:
        """Describe how ``model`` occupies the accelerator."""
        mapping = self.mapping_for(model)
        return DeploymentReport(
            model_name=getattr(model, "name", type(model).__name__),
            config_name=self.config.name,
            conv_weights=mapping.total_weights("conv"),
            fc_weights=mapping.total_weights("fc"),
            conv_rounds=mapping.mapping_rounds("conv"),
            fc_rounds=mapping.mapping_rounds("fc"),
            conv_utilization=mapping.utilization("conv"),
            fc_utilization=mapping.utilization("fc"),
        )

    def power_report(self) -> PowerReport:
        """Static power/latency estimate of the accelerator hardware."""
        return self.power_model.report()
