"""The CrossLight-style non-coherent optical CNN accelerator model.

* :mod:`repro.accelerator.config` — block geometries (CONV: 100 VDP units of
  20x20 MRs, FC: 60 VDP units of 150x150 MRs) and device parameters.
* :mod:`repro.accelerator.mapping` — weight-stationary mapping of a CNN's
  conv/FC weights onto the MR banks, including multi-round re-mapping when a
  model exceeds the block capacity.
* :mod:`repro.accelerator.inference` — functional inference of a mapped model
  under HT attacks (weights corrupted according to their MR assignment).
* :mod:`repro.accelerator.signal_sim` — detailed device-level simulation of
  small matrix-vector products used to validate the functional model.
* :mod:`repro.accelerator.power` — power/latency estimation of the photonic
  and electronic components.
"""

from repro.accelerator.config import AcceleratorConfig, BlockGeometry
from repro.accelerator.blocks import BankCoordinate, MRCoordinate, slot_to_coordinate, coordinate_to_slot
from repro.accelerator.mapping import MappedParameter, WeightMapping
from repro.accelerator.architecture import ONNAccelerator
from repro.accelerator.inference import AttackedInferenceEngine, evaluate_under_attack
from repro.accelerator.signal_sim import SignalLevelSimulator
from repro.accelerator.power import PowerModel, PowerReport

__all__ = [
    "AcceleratorConfig",
    "BlockGeometry",
    "BankCoordinate",
    "MRCoordinate",
    "slot_to_coordinate",
    "coordinate_to_slot",
    "MappedParameter",
    "WeightMapping",
    "ONNAccelerator",
    "AttackedInferenceEngine",
    "evaluate_under_attack",
    "SignalLevelSimulator",
    "PowerModel",
    "PowerReport",
]
