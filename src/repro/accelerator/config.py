"""Accelerator configuration: block geometries and device parameters.

The paper's evaluation uses the CrossLight-derived configuration:

* CONV block — ``m = 100`` VDP units, each ``20 x 20`` MRs;
* FC block — ``n = 60`` VDP units, each ``150 x 150`` MRs.

A proportionally reduced ``scaled`` configuration is provided for the
CPU-scale experiments so that the *utilization behaviour* (several mapping
rounds for the larger workloads) is preserved with the scaled CNN models.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.photonics import constants
from repro.utils.validation import check_in_choices, check_positive, check_positive_int

__all__ = ["BlockGeometry", "AcceleratorConfig"]


@dataclass(frozen=True)
class BlockGeometry:
    """Geometry of one accelerator block (CONV or FC).

    Attributes
    ----------
    num_units:
        Number of VDP units in the block.
    rows:
        MR banks per VDP unit.
    cols:
        MRs per bank (also the number of WDM carriers per waveguide).
    """

    num_units: int
    rows: int
    cols: int

    def __post_init__(self) -> None:
        check_positive_int(self.num_units, "num_units")
        check_positive_int(self.rows, "rows")
        check_positive_int(self.cols, "cols")

    @property
    def mrs_per_unit(self) -> int:
        """Weight-bank MRs per VDP unit."""
        return self.rows * self.cols

    @property
    def num_banks(self) -> int:
        """Total MR banks in the block."""
        return self.num_units * self.rows

    @property
    def capacity(self) -> int:
        """Total weight slots (weight-bank MRs) in the block."""
        return self.num_units * self.rows * self.cols

    def describe(self) -> dict[str, int]:
        return {
            "num_units": self.num_units,
            "rows": self.rows,
            "cols": self.cols,
            "num_banks": self.num_banks,
            "capacity": self.capacity,
        }


@dataclass(frozen=True)
class AcceleratorConfig:
    """Full accelerator configuration.

    Attributes
    ----------
    conv_block, fc_block:
        Geometries of the convolution and fully-connected blocks.
    channel_spacing_nm:
        WDM carrier spacing.
    q_factor:
        Loaded Q of the MRs.
    dac_bits, adc_bits:
        Converter resolutions.
    name:
        Configuration label used in reports.
    """

    conv_block: BlockGeometry = field(default_factory=lambda: BlockGeometry(100, 20, 20))
    fc_block: BlockGeometry = field(default_factory=lambda: BlockGeometry(60, 150, 150))
    channel_spacing_nm: float = constants.DEFAULT_CHANNEL_SPACING_NM
    q_factor: float = constants.DEFAULT_MR_Q_FACTOR
    dac_bits: int = 8
    adc_bits: int = 10
    name: str = "crosslight-paper"

    def __post_init__(self) -> None:
        check_positive(self.channel_spacing_nm, "channel_spacing_nm")
        check_positive(self.q_factor, "q_factor")
        check_positive_int(self.dac_bits, "dac_bits")
        check_positive_int(self.adc_bits, "adc_bits")

    @classmethod
    def paper_config(cls) -> "AcceleratorConfig":
        """The paper's configuration: CONV 100x20x20, FC 60x150x150."""
        return cls()

    @classmethod
    def scaled_config(cls) -> "AcceleratorConfig":
        """Reduced configuration matched to the CPU-scale CNN models.

        The reduction keeps the CONV/FC capacity ratio and, with the scaled
        models, keeps utilization above one mapping round for the larger
        workloads (the paper's "multiple mappings" effect).
        """
        return cls(
            conv_block=BlockGeometry(25, 10, 10),
            fc_block=BlockGeometry(15, 30, 30),
            name="crosslight-scaled",
        )

    def block(self, name: str) -> BlockGeometry:
        """Return the geometry of ``"conv"`` or ``"fc"``."""
        name = check_in_choices(name, "block", ("conv", "fc"))
        return self.conv_block if name == "conv" else self.fc_block

    @property
    def total_mrs(self) -> int:
        """Total weight-slot MRs across both blocks."""
        return self.conv_block.capacity + self.fc_block.capacity

    @property
    def total_banks(self) -> int:
        """Total MR banks across both blocks."""
        return self.conv_block.num_banks + self.fc_block.num_banks

    def describe(self) -> dict[str, object]:
        return {
            "name": self.name,
            "conv_block": self.conv_block.describe(),
            "fc_block": self.fc_block.describe(),
            "channel_spacing_nm": self.channel_spacing_nm,
            "q_factor": self.q_factor,
            "dac_bits": self.dac_bits,
            "adc_bits": self.adc_bits,
            "total_mrs": self.total_mrs,
        }
