"""Functional inference of a mapped CNN on the (possibly attacked) accelerator.

The engine mirrors the paper's methodology (§IV): the effect of an HT attack
is evaluated by modifying the model parameters according to their mapping
onto the ONN accelerator and then running inference.  Optionally, DAC-
resolution weight quantization is applied to both the clean and attacked
models, reflecting the accelerator's finite imprint precision.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.accelerator.config import AcceleratorConfig
from repro.accelerator.mapping import WeightMapping
from repro.attacks.base import AttackOutcome
from repro.attacks.injection import attack_context, corrupted_state_dict
from repro.datasets.base import Dataset
from repro.nn.module import Module
from repro.nn.training import evaluate_accuracy

__all__ = ["AttackedInferenceEngine", "evaluate_under_attack"]


@dataclass
class InferenceResult:
    """Accuracy of one inference run on the accelerator."""

    accuracy: float
    attacked: bool
    label: str = ""


class AttackedInferenceEngine:
    """Runs a CNN's inference through the functional accelerator model.

    Parameters
    ----------
    model:
        Trained CNN (its conv/fc weights are mapped onto the MR banks).
    config:
        Accelerator configuration.
    quantize_weights:
        Apply DAC-resolution quantization to the mapped weight magnitudes for
        every run (clean and attacked).  Keeps the comparison between clean
        and attacked accuracy apples-to-apples.
    batch_size:
        Evaluation batch size.
    """

    def __init__(
        self,
        model: Module,
        config: AcceleratorConfig | None = None,
        quantize_weights: bool = True,
        batch_size: int = 64,
    ):
        self.model = model
        self.config = config or AcceleratorConfig.scaled_config()
        self.quantize_weights = quantize_weights
        self.batch_size = batch_size
        if quantize_weights:
            self._quantize_mapped_weights()
        # Build the mapping after quantization so normalization scales match
        # the weights actually imprinted on the MRs.
        self.mapping = WeightMapping(model, self.config)

    def _quantize_mapped_weights(self) -> None:
        """Quantize conv/fc weights in place to the DAC resolution."""
        levels = 2**self.config.dac_bits - 1
        for param in self.model.parameters():
            if param.kind not in ("conv", "fc"):
                continue
            scale = float(np.max(np.abs(param.data)))
            if scale <= 0:
                continue
            normalized = param.data / scale
            param.data = (np.round(normalized * levels) / levels * scale).astype(np.float32)

    # ------------------------------------------------------------------ runs
    def clean_accuracy(self, dataset: Dataset) -> float:
        """Accuracy of the mapped (quantized) model without any attack."""
        return evaluate_accuracy(self.model, dataset, batch_size=self.batch_size)

    def accuracy_under_attack(self, dataset: Dataset, outcome: AttackOutcome) -> float:
        """Accuracy with the attack outcome injected into the mapped weights."""
        with attack_context(self.model, self.mapping, outcome):
            return evaluate_accuracy(self.model, dataset, batch_size=self.batch_size)

    def corrupted_weights(self, outcome: AttackOutcome) -> dict[str, np.ndarray]:
        """The corrupted state dict for an attack outcome (for inspection)."""
        return corrupted_state_dict(self.model, self.mapping, outcome)

    def weight_corruption_fraction(self, outcome: AttackOutcome) -> float:
        """Fraction of mapped weights whose value changes under the attack."""
        corrupted = self.corrupted_weights(outcome)
        clean = self.model.state_dict()
        changed = 0
        total = 0
        for mapped in self.mapping.parameters:
            diff = np.abs(corrupted[mapped.name] - clean[mapped.name])
            changed += int(np.count_nonzero(diff > 1e-7))
            total += diff.size
        return changed / total if total else 0.0


def evaluate_under_attack(
    model: Module,
    dataset: Dataset,
    outcome: AttackOutcome,
    config: AcceleratorConfig | None = None,
    quantize_weights: bool = True,
) -> InferenceResult:
    """One-shot helper: map ``model``, inject ``outcome`` and measure accuracy."""
    engine = AttackedInferenceEngine(model, config=config, quantize_weights=quantize_weights)
    accuracy = engine.accuracy_under_attack(dataset, outcome)
    return InferenceResult(accuracy=accuracy, attacked=True, label=outcome.spec.label())
