"""Functional inference of a mapped CNN on the (possibly attacked) accelerator.

The engine mirrors the paper's methodology (§IV): the effect of an HT attack
is evaluated by modifying the model parameters according to their mapping
onto the ONN accelerator and then running inference.  Optionally, DAC-
resolution weight quantization is applied to both the clean and attacked
models, reflecting the accelerator's finite imprint precision.

Two evaluation paths are provided:

* :meth:`AttackedInferenceEngine.accuracy_under_attack` — the per-scenario
  reference path: corrupt, load, run the test set, restore.
* :meth:`AttackedInferenceEngine.accuracy_under_attacks` — the scenario-batch
  path: ``S`` outcomes are corrupted in one broadcast pass
  (:func:`~repro.attacks.injection.corrupted_state_batch`) and evaluated in a
  single stacked forward per data batch through the ensemble-weight layers
  (:mod:`repro.nn.ensemble`), with memory-aware chunking over ``S``.  The
  batch path is property-tested to produce the same accuracies as the
  reference path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.accelerator.config import AcceleratorConfig
from repro.accelerator.mapping import WeightMapping
from repro.attacks.base import AttackOutcome
from repro.attacks.injection import (
    attack_context,
    corrupted_state_batch,
    corrupted_state_dict,
)
from repro.datasets.base import DataLoader, Dataset
from repro.nn.backend import use_backend
from repro.nn.ensemble import stacked_state
from repro.nn.module import Module
from repro.nn.training import evaluate_accuracy

__all__ = ["AttackedInferenceEngine", "evaluate_under_attack"]

#: Upper bound on the auto-selected scenario-chunk size.
MAX_SCENARIO_CHUNK = 256


@dataclass
class InferenceResult:
    """Accuracy of one inference run on the accelerator."""

    accuracy: float
    attacked: bool
    label: str = ""


class AttackedInferenceEngine:
    """Runs a CNN's inference through the functional accelerator model.

    Parameters
    ----------
    model:
        Trained CNN (its conv/fc weights are mapped onto the MR banks).
    config:
        Accelerator configuration.
    quantize_weights:
        Apply DAC-resolution quantization to the mapped weight magnitudes for
        every run (clean and attacked).  Keeps the comparison between clean
        and attacked accuracy apples-to-apples.
    batch_size:
        Evaluation batch size.
    scenario_chunk:
        Fixed number of attack scenarios evaluated per stacked forward pass
        in :meth:`accuracy_under_attacks`.  ``None`` (default) derives a
        chunk from ``memory_budget_mb`` and the model/dataset footprint.
    memory_budget_mb:
        Approximate memory budget [MiB] for one scenario chunk (stacked
        weights plus stacked activations); only used when ``scenario_chunk``
        is ``None``.
    backend, threads:
        Compute backend (:mod:`repro.nn.backend`) the engine's evaluation
        kernels dispatch to, and its thread count.  ``None`` (default)
        inherits the ambient selection (``REPRO_NN_BACKEND`` /
        ``REPRO_NN_THREADS`` or ``reference``).

    The engine snapshots the clean (quantized) state dict once at
    construction; attacked runs corrupt and restore from that snapshot
    instead of re-copying the full state dict per scenario.
    """

    def __init__(
        self,
        model: Module,
        config: AcceleratorConfig | None = None,
        quantize_weights: bool = True,
        batch_size: int = 64,
        scenario_chunk: int | None = None,
        memory_budget_mb: int = 512,
        backend: str | None = None,
        threads: int | None = None,
    ):
        self.model = model
        self.config = config or AcceleratorConfig.scaled_config()
        self.quantize_weights = quantize_weights
        self.batch_size = batch_size
        self.scenario_chunk = scenario_chunk
        self.memory_budget_mb = memory_budget_mb
        self.backend = backend or None
        self.threads = int(threads or 0) or None
        if quantize_weights:
            self._quantize_mapped_weights()
        # Build the mapping after quantization so normalization scales match
        # the weights actually imprinted on the MRs.
        self.mapping = WeightMapping(model, self.config)
        self._clean_state = model.state_dict()

    def _quantize_mapped_weights(self) -> None:
        """Quantize conv/fc weights in place to the DAC resolution."""
        levels = 2**self.config.dac_bits - 1
        for param in self.model.parameters():
            if param.kind not in ("conv", "fc"):
                continue
            scale = float(np.max(np.abs(param.data)))
            if scale <= 0:
                continue
            normalized = param.data / scale
            param.data = (np.round(normalized * levels) / levels * scale).astype(np.float32)

    def _backend_context(self):
        """Context applying the engine's compute-backend selection."""
        return use_backend(self.backend, self.threads)

    # ------------------------------------------------------------------ runs
    def clean_accuracy(self, dataset: Dataset) -> float:
        """Accuracy of the mapped (quantized) model without any attack."""
        with self._backend_context():
            return evaluate_accuracy(self.model, dataset, batch_size=self.batch_size)

    def accuracy_under_attack(self, dataset: Dataset, outcome: AttackOutcome) -> float:
        """Accuracy with the attack outcome injected into the mapped weights.

        This is the per-scenario reference path; use
        :meth:`accuracy_under_attacks` to evaluate many scenarios in stacked
        forward passes.
        """
        with self._backend_context(), attack_context(
            self.model, self.mapping, outcome, clean_state=self._clean_state
        ):
            return evaluate_accuracy(self.model, dataset, batch_size=self.batch_size)

    def accuracy_under_attacks(
        self,
        dataset: Dataset,
        outcomes: Sequence[AttackOutcome],
        scenario_chunk: int | None = None,
    ) -> np.ndarray:
        """Accuracy of every attack outcome via stacked ensemble forwards.

        All ``S`` outcomes are corrupted in one broadcast pass per mapped
        tensor and evaluated ``chunk`` scenarios at a time: each data batch
        runs through the network once per chunk, with im2col patch matrices
        shared across the chunk's weight sets while the activations are still
        scenario-independent.  Returns an array of ``S`` accuracies matching
        :meth:`accuracy_under_attack` scenario-for-scenario.

        Outcomes are grouped internally by the set of blocks they actually
        corrupt: scenarios that leave the CONV block clean share the whole
        convolutional trunk inside a chunk (one forward of the trunk serves
        every scenario of the chunk), so they get large memory-bounded chunks,
        while CONV-corrupting scenarios use small cache-friendly chunks since
        their activations diverge right after the first layer.
        """
        outcomes = list(outcomes)
        accuracies = np.zeros(len(outcomes))
        if not outcomes:
            return accuracies
        self.model.eval()
        loader = DataLoader(dataset, batch_size=self.batch_size, shuffle=False)
        groups: dict[frozenset, list[int]] = {}
        for index, outcome in enumerate(outcomes):
            groups.setdefault(frozenset(self._touched_blocks(outcome)), []).append(index)
        with self._backend_context():
            for touched, indices in groups.items():
                chunk = (
                    scenario_chunk
                    or self.scenario_chunk
                    or self._auto_scenario_chunk(dataset, conv_diverged="conv" in touched)
                )
                for start in range(0, len(indices), chunk):
                    piece_indices = indices[start : start + chunk]
                    piece = [outcomes[i] for i in piece_indices]
                    correct = np.zeros(len(piece), dtype=np.int64)
                    total = 0
                    with stacked_state(self.model, self._stacked_state_for(piece)):
                        for images, labels in loader:
                            logits = self.model(images)
                            if logits.ndim == 2:  # no mapped parameters at all
                                logits = logits[None]
                            hits = np.argmax(logits, axis=-1) == labels[None, :]
                            correct = correct + hits.sum(axis=1)
                            total += labels.shape[0]
                    accuracies[piece_indices] = correct / total if total else float("nan")
        return accuracies

    def corrupted_weights(self, outcome: AttackOutcome) -> dict[str, np.ndarray]:
        """The corrupted state dict for an attack outcome (for inspection)."""
        return corrupted_state_dict(self.model, self.mapping, outcome)

    def weight_corruption_fraction(self, outcome: AttackOutcome) -> float:
        """Fraction of mapped weights whose value changes under the attack."""
        return float(self.weight_corruption_fractions([outcome])[0])

    def weight_corruption_fractions(
        self,
        outcomes: Sequence[AttackOutcome],
        scenario_chunk: int | None = None,
    ) -> np.ndarray:
        """Corrupted-weight fraction of every outcome in stacked passes.

        Counts changed weights directly on the ``(S, W)`` stacked corruption
        arrays instead of rebuilding a full corrupted state dict per scenario.
        """
        outcomes = list(outcomes)
        fractions = np.zeros(len(outcomes))
        total = sum(mapped.size for mapped in self.mapping.parameters)
        if not outcomes or not total:
            return fractions
        # Per scenario: the stacked corrupted copy, the diff temporary and
        # comparison headroom — all sized by the mapped weights alone.
        budget_floats = (self.memory_budget_mb * 2**20) // 4
        auto_chunk = int(np.clip(budget_floats // (4 * total), 1, MAX_SCENARIO_CHUNK))
        chunk = scenario_chunk or self.scenario_chunk or auto_chunk
        for start in range(0, len(outcomes), chunk):
            piece = outcomes[start : start + chunk]
            stacked = corrupted_state_batch(
                self.model, self.mapping, piece, state=self._clean_state
            )
            changed = np.zeros(len(piece), dtype=np.int64)
            for mapped in self.mapping.parameters:
                diff = np.abs(
                    stacked[mapped.name].reshape(len(piece), -1)
                    - self._clean_state[mapped.name].reshape(1, -1)
                )
                changed += np.count_nonzero(diff > 1e-7, axis=1)
            fractions[start : start + len(piece)] = changed / total
        return fractions

    # ------------------------------------------------------------- internals
    def _stacked_state_for(
        self, outcomes: Sequence[AttackOutcome]
    ) -> dict[str, np.ndarray]:
        """Stacked corrupted weights, with untouched tensors collapsed.

        A parameter whose ``S`` corrupted rows are all identical (e.g. conv
        kernels under an FC-only attack) is collapsed to a single shared row:
        the ensemble forward then keeps the activations un-replicated until
        the first genuinely attacked layer, which is where the big scenario
        grids spend most of their speedup.
        """
        stacked = corrupted_state_batch(
            self.model, self.mapping, outcomes, state=self._clean_state
        )
        if len(outcomes) > 1:
            for name, value in stacked.items():
                if bool(np.all(value == value[:1])):
                    stacked[name] = value[:1]
        return stacked

    @staticmethod
    def _touched_blocks(outcome: AttackOutcome) -> set[str]:
        """Blocks whose mapped weights this outcome actually corrupts.

        Delegates to the kind-agnostic effect API, so any registered attack
        kind participates in the shared-trunk chunking without the engine
        knowing its mechanics.
        """
        return set(outcome.touched_blocks())

    def _auto_scenario_chunk(self, dataset: Dataset, conv_diverged: bool = True) -> int:
        """Scenario-chunk size for one group of outcomes.

        Scenarios whose activations diverge at the first conv layer replicate
        the im2col patch matrices per scenario; large chunks then blow the CPU
        caches and run *slower*, so they get a small fixed chunk that mostly
        amortizes the per-chunk corruption/loader overhead.  Shared-trunk
        scenarios (CONV block clean) are limited by memory alone: per-scenario
        footprint ≈ three copies of the stacked mapped weights (batch kernel
        output, matmul operand, engine copy) plus a few input-sized stacked
        activation buffers per evaluation batch as headroom for the replicated
        post-trunk features.
        """
        if conv_diverged:
            return 4
        # Shared trunk: the replicated activations are only the (flattened)
        # post-trunk features, so the stacked weights dominate the footprint.
        weight_floats = sum(mapped.size for mapped in self.mapping.parameters)
        image_floats = int(np.prod(dataset.image_shape))
        batch = max(1, min(self.batch_size, len(dataset)))
        per_scenario_floats = 3 * weight_floats + 4 * batch * image_floats
        budget_floats = (self.memory_budget_mb * 2**20) // 4
        return int(np.clip(budget_floats // max(per_scenario_floats, 1), 1, MAX_SCENARIO_CHUNK))


def evaluate_under_attack(
    model: Module,
    dataset: Dataset,
    outcome: AttackOutcome,
    config: AcceleratorConfig | None = None,
    quantize_weights: bool = True,
) -> InferenceResult:
    """One-shot helper: map ``model``, inject ``outcome`` and measure accuracy."""
    engine = AttackedInferenceEngine(model, config=config, quantize_weights=quantize_weights)
    accuracy = engine.accuracy_under_attack(dataset, outcome)
    return InferenceResult(accuracy=accuracy, attacked=True, label=outcome.spec.label())
