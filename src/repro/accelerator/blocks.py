"""Coordinate helpers for MR slots within an accelerator block.

A *slot* is a flat index into the weight-bank MRs of one block, ordered as
``unit -> bank row -> column``.  These helpers convert between flat slot
indices and structured coordinates, and between slots and bank indices; the
attack models and the mapping both speak in these terms.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.accelerator.config import BlockGeometry
from repro.utils.validation import ValidationError

__all__ = ["MRCoordinate", "BankCoordinate", "slot_to_coordinate", "coordinate_to_slot",
           "slots_of_bank", "bank_of_slot"]


@dataclass(frozen=True)
class MRCoordinate:
    """Structured position of one MR inside a block."""

    unit: int
    row: int
    col: int


@dataclass(frozen=True)
class BankCoordinate:
    """Structured position of one MR bank inside a block."""

    unit: int
    row: int

    @property
    def flat_index(self) -> int:
        """Flat bank index given later by :func:`bank_of_slot` conventions."""
        raise NotImplementedError("use bank_flat_index(geometry) instead")

    def bank_flat_index(self, geometry: BlockGeometry) -> int:
        """Flat bank index within the block."""
        return self.unit * geometry.rows + self.row


def slot_to_coordinate(slot: int, geometry: BlockGeometry) -> MRCoordinate:
    """Convert a flat slot index to ``(unit, row, col)``."""
    if not 0 <= slot < geometry.capacity:
        raise ValidationError(f"slot {slot} outside block capacity {geometry.capacity}")
    unit = slot // geometry.mrs_per_unit
    within = slot % geometry.mrs_per_unit
    return MRCoordinate(unit=unit, row=within // geometry.cols, col=within % geometry.cols)


def coordinate_to_slot(coord: MRCoordinate, geometry: BlockGeometry) -> int:
    """Convert a structured coordinate back to a flat slot index."""
    if not (0 <= coord.unit < geometry.num_units
            and 0 <= coord.row < geometry.rows
            and 0 <= coord.col < geometry.cols):
        raise ValidationError(f"coordinate {coord} outside geometry {geometry}")
    return coord.unit * geometry.mrs_per_unit + coord.row * geometry.cols + coord.col


def bank_of_slot(slots: np.ndarray | int, geometry: BlockGeometry) -> np.ndarray | int:
    """Flat bank index of each slot (slots // cols)."""
    return np.asarray(slots) // geometry.cols if not np.isscalar(slots) else int(slots) // geometry.cols


def slots_of_bank(bank_index: int, geometry: BlockGeometry) -> np.ndarray:
    """All slot indices belonging to a flat bank index."""
    if not 0 <= bank_index < geometry.num_banks:
        raise ValidationError(
            f"bank {bank_index} outside block with {geometry.num_banks} banks"
        )
    start = bank_index * geometry.cols
    return np.arange(start, start + geometry.cols)
