"""Power and latency estimation for the accelerator hardware.

The estimates combine the published device-level numbers used throughout the
paper's background section: EO actuation power (≈4 µW/nm), TO trimming power
(≈27 mW/FSR, amortized by assuming only a fraction of an FSR of static trim
per ring), DAC/ADC power, laser wall-plug power and photodetector readout.
They support the EO-vs-TO ablation benchmark (E-A2 in DESIGN.md) and the
power-oriented example application.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.accelerator.config import AcceleratorConfig, BlockGeometry
from repro.photonics.dac_adc import ADC, DAC
from repro.photonics.laser import LaserSource
from repro.photonics.tuning import ElectroOpticTuner, ThermoOpticTuner
from repro.photonics.waveguide import WDMGrid

__all__ = ["PowerModel", "PowerReport", "BlockPowerBreakdown"]


@dataclass(frozen=True)
class BlockPowerBreakdown:
    """Per-block static power breakdown [W]."""

    block: str
    laser_w: float
    eo_actuation_w: float
    to_trimming_w: float
    dac_w: float
    adc_w: float
    photodetector_w: float

    @property
    def total_w(self) -> float:
        return (
            self.laser_w
            + self.eo_actuation_w
            + self.to_trimming_w
            + self.dac_w
            + self.adc_w
            + self.photodetector_w
        )

    def as_dict(self) -> dict[str, float | str]:
        return {
            "block": self.block,
            "laser_w": self.laser_w,
            "eo_actuation_w": self.eo_actuation_w,
            "to_trimming_w": self.to_trimming_w,
            "dac_w": self.dac_w,
            "adc_w": self.adc_w,
            "photodetector_w": self.photodetector_w,
            "total_w": self.total_w,
        }


@dataclass(frozen=True)
class PowerReport:
    """Accelerator-level power/latency report."""

    conv: BlockPowerBreakdown
    fc: BlockPowerBreakdown
    vdp_latency_s: float

    @property
    def total_w(self) -> float:
        return self.conv.total_w + self.fc.total_w

    def as_dict(self) -> dict[str, object]:
        return {
            "conv": self.conv.as_dict(),
            "fc": self.fc.as_dict(),
            "total_w": self.total_w,
            "vdp_latency_s": self.vdp_latency_s,
        }


class PowerModel:
    """Static power/latency model of the photonic accelerator.

    Parameters
    ----------
    config:
        Accelerator configuration.
    average_actuation_shift_nm:
        Mean EO detuning needed to imprint a value (about a quarter of the
        channel spacing for uniformly distributed values).
    static_trim_fraction_fsr:
        Average fraction of one FSR each ring's TO heater must statically
        compensate for fabrication/thermal variation.
    photodetector_power_w:
        Receiver (TIA + PD bias) power per bank output.
    """

    def __init__(
        self,
        config: AcceleratorConfig,
        average_actuation_shift_nm: float = 0.2,
        static_trim_fraction_fsr: float = 0.05,
        photodetector_power_w: float = 2e-3,
        laser_power_per_channel_mw: float = 1.0,
    ):
        self.config = config
        self.average_actuation_shift_nm = average_actuation_shift_nm
        self.static_trim_fraction_fsr = static_trim_fraction_fsr
        self.photodetector_power_w = photodetector_power_w
        self.laser_power_per_channel_mw = laser_power_per_channel_mw
        self.eo = ElectroOpticTuner()
        self.to = ThermoOpticTuner()
        self.dac = DAC(bits=config.dac_bits)
        self.adc = ADC(bits=config.adc_bits)

    def block_breakdown(self, block: str) -> BlockPowerBreakdown:
        """Static power of one block (CONV or FC)."""
        geometry: BlockGeometry = self.config.block(block)
        grid = WDMGrid(num_channels=geometry.cols, spacing_nm=self.config.channel_spacing_nm)
        laser = LaserSource(
            grid, power_per_channel_mw=self.laser_power_per_channel_mw
        )
        # One laser/waveguide per bank (each bank has its own carrier comb).
        laser_w = laser.electrical_power_w * geometry.num_banks
        # Both the input and the weight bank actuate one ring per weight slot.
        num_actuated_mrs = 2 * geometry.capacity
        eo_w = (
            self.eo.cost_for_shift(self.average_actuation_shift_nm).power_w * num_actuated_mrs
        )
        to_w = (
            self.to.power_per_fsr_w * self.static_trim_fraction_fsr * num_actuated_mrs
        )
        dac_w = self.dac.power_w * num_actuated_mrs
        adc_w = self.adc.power_w * geometry.num_banks
        pd_w = self.photodetector_power_w * geometry.num_banks
        return BlockPowerBreakdown(
            block=block,
            laser_w=laser_w,
            eo_actuation_w=eo_w,
            to_trimming_w=to_w,
            dac_w=dac_w,
            adc_w=adc_w,
            photodetector_w=pd_w,
        )

    def report(self) -> PowerReport:
        """Full accelerator power report."""
        latency = max(self.dac.latency_s, self.adc.latency_s, self.eo.latency_s)
        return PowerReport(
            conv=self.block_breakdown("conv"),
            fc=self.block_breakdown("fc"),
            vdp_latency_s=latency,
        )

    def tuning_energy_comparison(self, shift_nm: float) -> dict[str, float]:
        """EO vs TO energy for one resonance shift (ablation E-A2)."""
        comparison: dict[str, float] = {}
        if abs(shift_nm) <= self.eo.max_range_nm:
            eo_cost = self.eo.cost_for_shift(shift_nm)
            comparison["eo_energy_j"] = eo_cost.energy_j
            comparison["eo_power_w"] = eo_cost.power_w
        to_cost = self.to.cost_for_shift(min(abs(shift_nm), self.to.max_range_nm))
        comparison["to_energy_j"] = to_cost.energy_j
        comparison["to_power_w"] = to_cost.power_w
        comparison["shift_nm"] = shift_nm
        return comparison
