"""Software-based HT-attack mitigation (paper §V).

Two training-time techniques make the CNN models robust to the parameter
corruption caused by HT attacks:

* **L2 regularization** (:mod:`repro.mitigation.l2_regularization`) — the
  squared-weight penalty keeps neuron magnitudes small and balanced, so the
  relative strength of output neurons survives the corruption noise.
* **Gaussian noise-aware training** (:mod:`repro.mitigation.noise_aware`) —
  noise injected into model layers (and weights) during training teaches the
  model to tolerate parameter perturbations.

:mod:`repro.mitigation.robust_training` builds the paper's model-variant grid
(Original, L2_reg, l2+n1 .. l2+n9) and :mod:`repro.mitigation.selection`
identifies the most robust variant per model from attack-evaluation results.
"""

from repro.mitigation.l2_regularization import L2Config, l2_training_config
from repro.mitigation.noise_aware import NoiseAwareConfig, noise_aware_training_config
from repro.mitigation.robust_training import (
    VariantResult,
    VariantSpec,
    default_variant_grid,
    train_variant,
    train_variant_grid,
    train_variant_grid_stacked,
    variant_spec_from_name,
    variant_training_config,
)
from repro.mitigation.selection import select_most_robust

__all__ = [
    "L2Config",
    "l2_training_config",
    "NoiseAwareConfig",
    "noise_aware_training_config",
    "VariantSpec",
    "VariantResult",
    "default_variant_grid",
    "train_variant",
    "train_variant_grid",
    "train_variant_grid_stacked",
    "variant_spec_from_name",
    "variant_training_config",
    "select_most_robust",
]
