"""Selecting the most robust model variant per workload (paper §VI, Fig. 9).

The paper identifies the configuration with the best accuracy distribution
across all attack scenarios (``l2+n3`` for the MNIST model, ``l2+n5`` for
ResNet18, ``l2+n2`` for the VGG16 variant).  :func:`select_most_robust`
implements that choice: variants are ranked by their median attacked accuracy,
with the mean as the tie-breaker.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["RobustnessScore", "select_most_robust"]


@dataclass(frozen=True)
class RobustnessScore:
    """Aggregate robustness of one variant across attack scenarios."""

    variant: str
    median_accuracy: float
    mean_accuracy: float
    worst_accuracy: float
    spread: float

    @property
    def ranking_key(self) -> tuple[float, float]:
        return (self.median_accuracy, self.mean_accuracy)


def score_variant(variant: str, attacked_accuracies: np.ndarray) -> RobustnessScore:
    """Summarize one variant's accuracy distribution across attack scenarios."""
    values = np.asarray(attacked_accuracies, dtype=float)
    if values.size == 0:
        raise ValueError(f"variant {variant!r} has no attacked-accuracy samples")
    return RobustnessScore(
        variant=variant,
        median_accuracy=float(np.median(values)),
        mean_accuracy=float(np.mean(values)),
        worst_accuracy=float(np.min(values)),
        spread=float(np.percentile(values, 75) - np.percentile(values, 25)),
    )


def select_most_robust(
    accuracy_by_variant: dict[str, np.ndarray],
    exclude: tuple[str, ...] = ("Original",),
) -> tuple[str, list[RobustnessScore]]:
    """Pick the most robust variant from attacked-accuracy distributions.

    Parameters
    ----------
    accuracy_by_variant:
        Maps variant name → accuracies across all attack scenarios.
    exclude:
        Variants not eligible for selection (the baseline ``Original`` model
        is reported but never selected as the "robust" model).

    Returns
    -------
    The winning variant name and the scores of every candidate (sorted best
    first), for reporting.
    """
    scores = [
        score_variant(name, values)
        for name, values in accuracy_by_variant.items()
        if name not in exclude
    ]
    if not scores:
        raise ValueError("no eligible variants to select from")
    scores.sort(key=lambda score: score.ranking_key, reverse=True)
    return scores[0].variant, scores
