"""L2 regularization as an HT-attack mitigation (paper §V.A).

The paper adds the penalty ``R(w) = (lambda / 2m) * sum(||w||^2)`` to the
training loss.  In this framework the penalty gradient is applied by the
optimizer as weight decay on conv/fc weights (mathematically identical for
SGD-family optimizers), and the penalty value itself can be reported with
:func:`repro.nn.losses.l2_penalty`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.nn.training import TrainingConfig

__all__ = ["L2Config", "l2_training_config", "DEFAULT_LAMBDA"]

#: Default regularization strength; chosen so the penalty is a few percent of
#: the task loss for the scaled models (the paper does not publish its value).
DEFAULT_LAMBDA = 5e-4


@dataclass(frozen=True)
class L2Config:
    """L2 regularization hyper-parameters.

    Attributes
    ----------
    weight_decay:
        The paper's ``lambda`` coefficient.
    """

    weight_decay: float = DEFAULT_LAMBDA

    def __post_init__(self) -> None:
        if self.weight_decay < 0:
            raise ValueError(f"weight_decay must be non-negative, got {self.weight_decay}")

    @property
    def enabled(self) -> bool:
        return self.weight_decay > 0


def l2_training_config(base: TrainingConfig, l2: L2Config | None = None) -> TrainingConfig:
    """Return a copy of ``base`` with L2 regularization enabled."""
    l2 = l2 or L2Config()
    return replace(base, weight_decay=l2.weight_decay)
