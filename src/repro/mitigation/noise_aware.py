"""Gaussian noise-aware training as an HT-attack mitigation (paper §V.B).

Noise-aware training injects random Gaussian noise during training so the
learned weights tolerate the (unpredictable) parameter corruption that HT
attacks introduce at inference time.  The paper trains nine variants with
noise standard deviations 0.1 .. 0.9.

Two injection sites are supported and can be combined:

* **activation noise** — :class:`repro.nn.layers.noise.GaussianNoise` layers
  inserted into the model (controlled by the model constructors'
  ``noise_std`` argument);
* **weight noise** — relative Gaussian perturbation of conv/fc weights on
  every training forward pass (``TrainingConfig.weight_noise_std``).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.nn.training import TrainingConfig

__all__ = ["NoiseAwareConfig", "noise_aware_training_config", "PAPER_NOISE_LEVELS"]

#: The noise standard deviations swept in the paper (variants n1 .. n9).
PAPER_NOISE_LEVELS = tuple(round(0.1 * i, 1) for i in range(1, 10))


@dataclass(frozen=True)
class NoiseAwareConfig:
    """Noise-aware training hyper-parameters.

    Attributes
    ----------
    std:
        Gaussian noise standard deviation (the paper's 0.1 .. 0.9 sweep).
    inject_activations:
        Insert Gaussian-noise layers into the model.
    inject_weights:
        Perturb conv/fc weights during each training forward pass.
    """

    std: float = 0.1
    inject_activations: bool = True
    inject_weights: bool = True

    def __post_init__(self) -> None:
        if self.std < 0:
            raise ValueError(f"std must be non-negative, got {self.std}")

    @property
    def enabled(self) -> bool:
        return self.std > 0 and (self.inject_activations or self.inject_weights)

    @property
    def variant_suffix(self) -> str:
        """Paper-style suffix, e.g. ``n3`` for std 0.3."""
        return f"n{int(round(self.std * 10))}"

    @property
    def model_noise_std(self) -> float:
        """``noise_std`` to pass to the model constructor."""
        return self.std if self.inject_activations else 0.0

    @property
    def weight_noise_std(self) -> float:
        """``weight_noise_std`` to pass to the training configuration."""
        return self.std if self.inject_weights else 0.0


def noise_aware_training_config(
    base: TrainingConfig, noise: NoiseAwareConfig
) -> TrainingConfig:
    """Return a copy of ``base`` with weight-noise injection enabled."""
    return replace(base, weight_noise_std=noise.weight_noise_std)
