"""Training the paper's robust model-variant grid (Fig. 8).

For every workload the paper compares:

* ``Original`` — the baseline model, no mitigation;
* ``L2_reg`` — trained with L2 regularization only;
* ``l2+n1`` .. ``l2+n9`` — L2 regularization combined with Gaussian
  noise-aware training at standard deviations 0.1 .. 0.9.

:func:`train_variant_grid` trains all of them (or any subset) on a dataset
split and returns the trained models plus their baseline accuracies.
:func:`train_variant_grid_stacked` trains the *same* grid through the
variant-stacked forward/backward path — every data batch is processed once
for all variants, with per-variant weight decay and noise streams riding
along as vectors — and produces identical per-variant weights for identical
seeds (property-tested in ``tests/test_stacked_training.py``).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, replace
from typing import Mapping

import numpy as np

from repro.datasets.base import DatasetSplit
from repro.mitigation.l2_regularization import L2Config
from repro.mitigation.noise_aware import PAPER_NOISE_LEVELS, NoiseAwareConfig
from repro.nn.layers import BatchNorm2D, Dropout, GaussianNoise
from repro.nn.models.registry import build_model
from repro.nn.module import Module
from repro.nn.training import (
    StackedTrainer,
    Trainer,
    TrainingConfig,
    TrainingHistory,
    evaluate_accuracy,
)

__all__ = ["VariantSpec", "VariantResult", "default_variant_grid", "train_variant",
           "train_variant_grid", "train_variant_grid_stacked", "variant_spec_from_name",
           "variant_training_config", "variant_checkpoint_key",
           "variant_result_to_checkpoint", "variant_result_from_checkpoint",
           "load_cached_variant", "store_variant_checkpoint"]


@dataclass(frozen=True)
class VariantSpec:
    """One model variant of the mitigation grid.

    Attributes
    ----------
    name:
        Paper-style label (``Original``, ``L2_reg``, ``l2+n3`` ...).
    l2:
        L2 configuration (``None`` disables the penalty).
    noise:
        Noise-aware training configuration (``None`` disables it).
    """

    name: str
    l2: L2Config | None = None
    noise: NoiseAwareConfig | None = None

    @property
    def uses_l2(self) -> bool:
        return self.l2 is not None and self.l2.enabled

    @property
    def uses_noise(self) -> bool:
        return self.noise is not None and self.noise.enabled

    @property
    def model_noise_std(self) -> float:
        """Activation-noise std this variant's model is built with."""
        return self.noise.model_noise_std if self.noise is not None else 0.0


@dataclass
class VariantResult:
    """A trained variant and its clean (baseline) accuracy."""

    spec: VariantSpec
    model: Module
    history: TrainingHistory
    baseline_accuracy: float
    extras: dict[str, float] = field(default_factory=dict)


def default_variant_grid(
    include_noise_only: bool = False,
    noise_levels: tuple[float, ...] = PAPER_NOISE_LEVELS,
) -> list[VariantSpec]:
    """The paper's variant grid: Original, L2_reg, l2+n1 .. l2+n9.

    Set ``include_noise_only`` to additionally produce noise-aware variants
    without L2 (used by the mitigation ablation benchmark).
    """
    grid: list[VariantSpec] = [
        VariantSpec(name="Original"),
        VariantSpec(name="L2_reg", l2=L2Config()),
    ]
    for std in noise_levels:
        noise = NoiseAwareConfig(std=std)
        grid.append(VariantSpec(name=f"l2+{noise.variant_suffix}", l2=L2Config(), noise=noise))
    if include_noise_only:
        for std in noise_levels:
            noise = NoiseAwareConfig(std=std)
            grid.append(VariantSpec(name=f"noise_{noise.variant_suffix}", noise=noise))
    return grid


def variant_spec_from_name(name: str) -> VariantSpec:
    """Parse a paper-style variant label into a :class:`VariantSpec`.

    Supported labels: ``Original``, ``L2_reg``, ``l2+n1`` .. ``l2+n9`` and
    ``noise_n1`` .. ``noise_n9``.  This lets sweep definitions (and the
    ``python -m repro`` CLI) express the mitigation grid with plain strings.
    """
    if name == "Original":
        return VariantSpec(name=name)
    if name == "L2_reg":
        return VariantSpec(name=name, l2=L2Config())
    for prefix, with_l2 in (("l2+n", True), ("noise_n", False)):
        if name.startswith(prefix) and name[len(prefix):].isdigit():
            std = round(int(name[len(prefix):]) / 10, 1)
            noise = NoiseAwareConfig(std=std)
            return VariantSpec(
                name=name, l2=L2Config() if with_l2 else None, noise=noise
            )
    raise ValueError(
        f"unknown variant name {name!r}; expected 'Original', 'L2_reg', "
        "'l2+n<K>' or 'noise_n<K>' with K in 1..9"
    )


def variant_training_config(
    base_config: TrainingConfig, spec: VariantSpec
) -> TrainingConfig:
    """Resolve the training configuration a variant actually trains with.

    The variant's mitigation settings are applied on top of ``base_config``
    (L2 sets the optimizer weight decay, noise-aware training sets the
    weight-noise level), and the shuffle seed is pinned to the base
    configuration's effective value so every variant of a grid consumes the
    identical batch order regardless of any per-variant seed override —
    the prerequisite for stacked-vs-serial training equivalence.
    """
    config = replace(base_config, shuffle_seed=base_config.effective_shuffle_seed)
    if spec.l2 is not None:
        config = replace(config, weight_decay=spec.l2.weight_decay)
    if spec.noise is not None:
        config = replace(config, weight_noise_std=spec.noise.weight_noise_std)
    return config


def _build_variant_model(
    model_name: str,
    spec: VariantSpec,
    base_config: TrainingConfig,
    profile: str,
    model_kwargs: Mapping | None,
) -> Module:
    """Build one variant's model exactly as the serial trainer builds it."""
    return build_model(
        model_name,
        profile=profile,
        noise_std=spec.model_noise_std,
        rng=base_config.seed,
        **dict(model_kwargs or {}),
    )


def train_variant(
    model_name: str,
    spec: VariantSpec,
    split: DatasetSplit,
    base_config: TrainingConfig,
    profile: str = "scaled",
    model_kwargs: dict | None = None,
) -> VariantResult:
    """Train a single variant of ``model_name`` on ``split``.

    The variant's mitigation settings are applied on top of ``base_config``:
    L2 regularization sets the optimizer weight decay, noise-aware training
    sets the weight-noise level and inserts Gaussian-noise layers into the
    model.
    """
    model = _build_variant_model(model_name, spec, base_config, profile, model_kwargs)
    config = variant_training_config(base_config, spec)
    trainer = Trainer(model, config)
    history = trainer.fit(split.train, split.test)
    baseline = (
        history.final_test_accuracy
        if history.test_accuracy
        else evaluate_accuracy(model, split.test, config.batch_size)
    )
    return VariantResult(
        spec=spec,
        model=model,
        history=history,
        baseline_accuracy=baseline,
        extras={"training_steps": trainer.steps_taken},
    )


def train_variant_grid(
    model_name: str,
    split: DatasetSplit,
    base_config: TrainingConfig,
    variants: list[VariantSpec] | None = None,
    profile: str = "scaled",
    model_kwargs: dict | None = None,
) -> list[VariantResult]:
    """Train every variant of the grid for one workload (serial reference)."""
    variants = variants if variants is not None else default_variant_grid()
    return [
        train_variant(model_name, spec, split, base_config, profile=profile,
                      model_kwargs=model_kwargs)
        for spec in variants
    ]


# -------------------------------------------------------- stacked grid path
def _modules_of(model: Module, cls: type) -> list:
    """All modules of ``cls`` in deterministic traversal order."""
    return [module for module in model.modules() if isinstance(module, cls)]


def train_variant_grid_stacked(
    model_name: str,
    split: DatasetSplit,
    base_config: TrainingConfig,
    variants: list[VariantSpec] | None = None,
    profile: str = "scaled",
    model_kwargs: dict | None = None,
) -> list[VariantResult]:
    """Train the whole variant grid in one stacked pass per data batch.

    Numerically equivalent to :func:`train_variant_grid`:

    * every variant's model is built exactly as the serial path builds it
      (same constructor, same seed) and contributes its initial weight set as
      one slab of the trainable stacked state;
    * per-variant weight decay and weight-noise levels ride through the
      stacked optimizer/noise path as vectors;
    * each stochastic layer (Gaussian activation noise, dropout) carries the
      per-variant generators harvested from the serially built models, so
      every variant consumes its own serial random stream draw-for-draw;
    * all variants share the one batch order given by the base
      configuration's shuffle seed (see :func:`variant_training_config`).

    The heavy lifting — one im2col per conv layer per batch, batched matmuls
    over all ``V`` weight slabs, single stacked loss/optimizer step — is what
    makes this ~V-fold cheaper in Python/BLAS overhead than the serial loop
    (``python -m repro bench --suite training`` measures it).
    """
    variants = variants if variants is not None else default_variant_grid()
    if not variants:
        return []
    model_kwargs = dict(model_kwargs or {})

    # 1. Per-variant models, built exactly as train_variant builds them.
    variant_models = [
        _build_variant_model(model_name, spec, base_config, profile, model_kwargs)
        for spec in variants
    ]

    # 2. Template carrying the union architecture: any positive activation
    #    noise level yields the noise-layer placement shared by every noisy
    #    variant (the layers themselves have no parameters, so noise-free
    #    variants simply run them with std 0).
    template_noise = max((spec.model_noise_std for spec in variants), default=0.0)
    template = build_model(
        model_name,
        profile=profile,
        noise_std=template_noise,
        rng=base_config.seed,
        **model_kwargs,
    )

    # 3. Stack the initial weights by parameter position (noise layers shift
    #    Sequential indices between variants, so dotted names differ while
    #    the parameter order does not).
    template_named = template.named_parameters()
    stacked: dict[str, np.ndarray] = {}
    for position, (name, template_param) in enumerate(template_named):
        slabs = []
        for model in variant_models:
            param = model.parameters()[position]
            if param.shape != template_param.shape or param.kind != template_param.kind:
                raise ValueError(
                    f"variant parameter {position} ({param.name!r}) does not match "
                    f"template parameter {name!r}"
                )
            slabs.append(param.data)
        stacked[name] = np.stack(slabs)
    template.load_stacked_state(stacked, trainable=True)

    # 4. Attach the per-variant stochastic streams and running statistics.
    noise_stds = np.array([spec.model_noise_std for spec in variants])
    for layer_index, layer in enumerate(_modules_of(template, GaussianNoise)):
        layer.stacked_std = noise_stds
        layer.stacked_rngs = [
            _modules_of(model, GaussianNoise)[layer_index]._rng
            if spec.model_noise_std > 0
            else None
            for spec, model in zip(variants, variant_models)
        ]
    for layer_index, layer in enumerate(_modules_of(template, Dropout)):
        layer.stacked_rngs = [
            _modules_of(model, Dropout)[layer_index]._rng for model in variant_models
        ]
    template_bns = _modules_of(template, BatchNorm2D)
    for layer_index, layer in enumerate(template_bns):
        layer.stacked_running_mean = np.stack(
            [_modules_of(model, BatchNorm2D)[layer_index].running_mean
             for model in variant_models]
        ).astype(np.float32)
        layer.stacked_running_var = np.stack(
            [_modules_of(model, BatchNorm2D)[layer_index].running_var
             for model in variant_models]
        ).astype(np.float32)

    # 5. Per-variant hyper-parameter vectors (resolved as the serial path
    #    resolves them) and the shared-batch-order configuration.
    resolved = [variant_training_config(base_config, spec) for spec in variants]
    shared_config = replace(
        base_config, shuffle_seed=base_config.effective_shuffle_seed
    )
    trainer = StackedTrainer(
        template,
        shared_config,
        weight_decay=np.array([config.weight_decay for config in resolved]),
        weight_noise_std=np.array([config.weight_noise_std for config in resolved]),
    )
    histories = trainer.fit(split.train, split.test)

    # 6. Materialize per-variant models from the final stacked slabs.
    results: list[VariantResult] = []
    for index, (spec, model, history) in enumerate(
        zip(variants, variant_models, histories)
    ):
        for position, (_, template_param) in enumerate(template_named):
            model.parameters()[position].data = template_param.stacked[index].copy()
        for layer_index, template_bn in enumerate(template_bns):
            bn = _modules_of(model, BatchNorm2D)[layer_index]
            bn.running_mean = template_bn.stacked_running_mean[index].copy()
            bn.running_var = template_bn.stacked_running_var[index].copy()
        baseline = (
            history.final_test_accuracy
            if history.test_accuracy
            else evaluate_accuracy(model, split.test, base_config.batch_size)
        )
        results.append(
            VariantResult(
                spec=spec,
                model=model,
                history=history,
                baseline_accuracy=baseline,
                # One stacked pass trained the whole grid: every variant
                # shares the same optimizer-step count.
                extras={"training_steps": trainer.steps_taken},
            )
        )
    template.clear_stacked_state()
    return results


# ------------------------------------------------------ checkpoint plumbing
def variant_checkpoint_key(
    model_name: str,
    spec: VariantSpec,
    base_config: TrainingConfig,
    *,
    profile: str = "scaled",
    model_kwargs: Mapping | None = None,
    dataset: Mapping | None = None,
) -> dict:
    """Content-address payload identifying one trained variant.

    Covers everything that determines the trained weights: the model
    identity (name, profile, constructor kwargs, activation-noise level),
    the *resolved* per-variant training configuration, and the dataset/split
    identity supplied by the caller.  The library version is appended by the
    checkpoint cache itself, mirroring the result cache.
    """
    training = asdict(variant_training_config(base_config, spec))
    training.pop("verbose", None)  # cosmetic; does not affect the weights
    return {
        "kind": "trained-variant",
        "model": model_name,
        "profile": profile,
        "model_kwargs": dict(model_kwargs or {}),
        "model_noise_std": spec.model_noise_std,
        "training": training,
        "dataset": dict(dataset or {}),
    }


def variant_result_to_checkpoint(result: VariantResult) -> tuple[dict, dict]:
    """Split a trained variant into (arrays, metadata) for the cache."""
    arrays = result.model.full_state_dict()
    meta = {
        "variant": result.spec.name,
        "baseline_accuracy": float(result.baseline_accuracy),
        "history": result.history.to_dict(),
        "extras": dict(result.extras),
    }
    return arrays, meta


def variant_result_from_checkpoint(
    model_name: str,
    spec: VariantSpec,
    arrays: Mapping[str, np.ndarray],
    meta: Mapping,
    base_config: TrainingConfig,
    *,
    profile: str = "scaled",
    model_kwargs: Mapping | None = None,
) -> VariantResult:
    """Rebuild a :class:`VariantResult` from a cached checkpoint."""
    model = _build_variant_model(model_name, spec, base_config, profile, model_kwargs)
    model.load_full_state_dict(dict(arrays))
    return VariantResult(
        spec=spec,
        model=model,
        history=TrainingHistory.from_dict(dict(meta.get("history", {}))),
        baseline_accuracy=float(meta["baseline_accuracy"]),
        extras=dict(meta.get("extras", {})),
    )


def load_cached_variant(
    cache,
    key: Mapping,
    model_name: str,
    spec: VariantSpec,
    base_config: TrainingConfig,
    *,
    profile: str = "scaled",
    model_kwargs: Mapping | None = None,
) -> VariantResult | None:
    """Fetch and rebuild one trained variant from the checkpoint store.

    The single load path shared by :class:`MitigationStudy` and the
    ``fig8_variant`` runner: any store miss *or* reconstruction failure
    (schema drift, shape mismatch from a stale entry) counts as a miss —
    the caller retrains and overwrites, mirroring the store's own
    corrupt-entry semantics.
    """
    if cache is None:
        return None
    checkpoint = cache.get(key)
    if checkpoint is None:
        return None
    try:
        return variant_result_from_checkpoint(
            model_name,
            spec,
            checkpoint.arrays,
            checkpoint.meta,
            base_config,
            profile=profile,
            model_kwargs=model_kwargs,
        )
    except (KeyError, TypeError, ValueError):
        return None


def store_variant_checkpoint(cache, key: Mapping, result: VariantResult) -> None:
    """Persist one trained variant (no-op without a cache)."""
    if cache is None:
        return
    arrays, meta = variant_result_to_checkpoint(result)
    cache.put(key, arrays, meta)
