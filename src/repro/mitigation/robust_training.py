"""Training the paper's robust model-variant grid (Fig. 8).

For every workload the paper compares:

* ``Original`` — the baseline model, no mitigation;
* ``L2_reg`` — trained with L2 regularization only;
* ``l2+n1`` .. ``l2+n9`` — L2 regularization combined with Gaussian
  noise-aware training at standard deviations 0.1 .. 0.9.

:func:`train_variant_grid` trains all of them (or any subset) on a dataset
split and returns the trained models plus their baseline accuracies.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.datasets.base import DatasetSplit
from repro.mitigation.l2_regularization import L2Config
from repro.mitigation.noise_aware import PAPER_NOISE_LEVELS, NoiseAwareConfig
from repro.nn.models.registry import build_model
from repro.nn.module import Module
from repro.nn.training import Trainer, TrainingConfig, TrainingHistory, evaluate_accuracy

__all__ = ["VariantSpec", "VariantResult", "default_variant_grid", "train_variant",
           "train_variant_grid", "variant_spec_from_name"]


@dataclass(frozen=True)
class VariantSpec:
    """One model variant of the mitigation grid.

    Attributes
    ----------
    name:
        Paper-style label (``Original``, ``L2_reg``, ``l2+n3`` ...).
    l2:
        L2 configuration (``None`` disables the penalty).
    noise:
        Noise-aware training configuration (``None`` disables it).
    """

    name: str
    l2: L2Config | None = None
    noise: NoiseAwareConfig | None = None

    @property
    def uses_l2(self) -> bool:
        return self.l2 is not None and self.l2.enabled

    @property
    def uses_noise(self) -> bool:
        return self.noise is not None and self.noise.enabled


@dataclass
class VariantResult:
    """A trained variant and its clean (baseline) accuracy."""

    spec: VariantSpec
    model: Module
    history: TrainingHistory
    baseline_accuracy: float
    extras: dict[str, float] = field(default_factory=dict)


def default_variant_grid(
    include_noise_only: bool = False,
    noise_levels: tuple[float, ...] = PAPER_NOISE_LEVELS,
) -> list[VariantSpec]:
    """The paper's variant grid: Original, L2_reg, l2+n1 .. l2+n9.

    Set ``include_noise_only`` to additionally produce noise-aware variants
    without L2 (used by the mitigation ablation benchmark).
    """
    grid: list[VariantSpec] = [
        VariantSpec(name="Original"),
        VariantSpec(name="L2_reg", l2=L2Config()),
    ]
    for std in noise_levels:
        noise = NoiseAwareConfig(std=std)
        grid.append(VariantSpec(name=f"l2+{noise.variant_suffix}", l2=L2Config(), noise=noise))
    if include_noise_only:
        for std in noise_levels:
            noise = NoiseAwareConfig(std=std)
            grid.append(VariantSpec(name=f"noise_{noise.variant_suffix}", noise=noise))
    return grid


def variant_spec_from_name(name: str) -> VariantSpec:
    """Parse a paper-style variant label into a :class:`VariantSpec`.

    Supported labels: ``Original``, ``L2_reg``, ``l2+n1`` .. ``l2+n9`` and
    ``noise_n1`` .. ``noise_n9``.  This lets sweep definitions (and the
    ``python -m repro`` CLI) express the mitigation grid with plain strings.
    """
    if name == "Original":
        return VariantSpec(name=name)
    if name == "L2_reg":
        return VariantSpec(name=name, l2=L2Config())
    for prefix, with_l2 in (("l2+n", True), ("noise_n", False)):
        if name.startswith(prefix) and name[len(prefix):].isdigit():
            std = round(int(name[len(prefix):]) / 10, 1)
            noise = NoiseAwareConfig(std=std)
            return VariantSpec(
                name=name, l2=L2Config() if with_l2 else None, noise=noise
            )
    raise ValueError(
        f"unknown variant name {name!r}; expected 'Original', 'L2_reg', "
        "'l2+n<K>' or 'noise_n<K>' with K in 1..9"
    )


def train_variant(
    model_name: str,
    spec: VariantSpec,
    split: DatasetSplit,
    base_config: TrainingConfig,
    profile: str = "scaled",
    model_kwargs: dict | None = None,
) -> VariantResult:
    """Train a single variant of ``model_name`` on ``split``.

    The variant's mitigation settings are applied on top of ``base_config``:
    L2 regularization sets the optimizer weight decay, noise-aware training
    sets the weight-noise level and inserts Gaussian-noise layers into the
    model.
    """
    model_kwargs = dict(model_kwargs or {})
    noise_std = spec.noise.model_noise_std if spec.noise is not None else 0.0
    model = build_model(
        model_name,
        profile=profile,
        noise_std=noise_std,
        rng=base_config.seed,
        **model_kwargs,
    )
    config = base_config
    if spec.l2 is not None:
        config = replace(config, weight_decay=spec.l2.weight_decay)
    if spec.noise is not None:
        config = replace(config, weight_noise_std=spec.noise.weight_noise_std)
    trainer = Trainer(model, config)
    history = trainer.fit(split.train, split.test)
    baseline = (
        history.final_test_accuracy
        if history.test_accuracy
        else evaluate_accuracy(model, split.test, config.batch_size)
    )
    return VariantResult(spec=spec, model=model, history=history, baseline_accuracy=baseline)


def train_variant_grid(
    model_name: str,
    split: DatasetSplit,
    base_config: TrainingConfig,
    variants: list[VariantSpec] | None = None,
    profile: str = "scaled",
    model_kwargs: dict | None = None,
) -> list[VariantResult]:
    """Train every variant of the grid for one workload."""
    variants = variants if variants is not None else default_variant_grid()
    return [
        train_variant(model_name, spec, split, base_config, profile=profile,
                      model_kwargs=model_kwargs)
        for spec in variants
    ]
