"""The campaign service: durable jobs scheduled onto a shared worker pool.

:class:`CampaignService` is the daemon's core (the HTTP layer in
:mod:`repro.serve.api` is a thin shell around it):

* **submit** expands a sweep payload into resolved run specs, derives the
  content-addressed job id, dedupes against the store (an identical sweep
  returns the existing job — finished jobs return with zero new executions),
  applies bounded admission control, and persists the job ``queued``;
* a **scheduler thread** activates queued jobs (serving every point already
  in the result cache as an up-front cache hit), round-robins the remaining
  points of *all* active jobs onto the shared
  :class:`~repro.serve.workers.WorkerPool` queue (work-stealing across
  concurrently submitted sweeps), drains completions, persists progress after
  every point, and replaces dead workers, re-dispatching their lost tasks;
* **failure policy** is run-level: every failed execution — an error record,
  a worker death, a run killed at its wall-clock deadline — charges the point
  one attempt; the point is re-dispatched with capped exponential backoff up
  to :class:`~repro.engine.executor.RetryPolicy.max_attempts` total attempts,
  then **quarantined**: recorded on the job as a poison run (label, attempt
  history, last error) and counted a failure, so the job still reaches a
  terminal state instead of crash-looping through the pool's respawn budget.
  The default policy comes from the service; each submit may override it with
  a ``"policy"`` object in the payload.  No point is ever dispatched more
  than ``max_attempts`` times — attempts are counted at dispatch;
* **recovery** is automatic: on start the store requeues whatever a previous
  daemon left active, and activation re-runs only the points the cache does
  not already hold — a ``kill -9`` mid-campaign costs at most the runs that
  were physically in flight.

Execution capacity is a list of :class:`~repro.engine.executor.RunBackend`
instances driven uniformly: the local :class:`~repro.serve.workers.WorkerPool`
(when ``workers > 0``) and the :class:`~repro.serve.federation.FederationBackend`
holding remote ``repro node`` agents behind time-bounded leases.  The
scheduler neither knows nor cares where a run executes — dispatch tries each
backend in order, deadlines kill through the owning backend (SIGKILL locally,
lease revocation remotely), and lost runs (dead worker, expired lease, dead
node) all flow through the same attempt-charged failure path.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from time import monotonic

from repro.engine.cache import DEFAULT_CACHE_DIR, ResultCache
from repro.engine.campaign import ProgressEvent
from repro.engine.executor import RetryPolicy
from repro.engine.records import RunRecord
from repro.engine.spec import RunSpec, SweepSpec
from repro.faults import active_plan
from repro.serve.federation import FederationBackend
from repro.serve.jobstore import JobRecord, JobStore, sweep_job_id
from repro.serve.jobstore import _utc_now as _now
from repro.serve.workers import WorkerPool
from repro.utils.validation import check_positive_int
from repro.version import __version__

__all__ = ["CampaignService", "AdmissionError", "DEFAULT_JOBSTORE_DIR", "sweep_from_payload"]

#: Default job-store location, kept next to the result cache it resumes from.
DEFAULT_JOBSTORE_DIR = f"{DEFAULT_CACHE_DIR}/jobs"

#: Default service-wide failure policy: three total attempts per run, no
#: wall-clock deadline (experiments legitimately vary by orders of magnitude).
DEFAULT_POLICY = RetryPolicy(max_attempts=3, backoff_s=0.5, backoff_cap_s=10.0)


class AdmissionError(RuntimeError):
    """The service is at its job-queue bound; retry after load drains."""


def sweep_from_payload(payload: dict) -> SweepSpec:
    """Build a :class:`SweepSpec` from a ``POST /sweeps`` JSON body.

    Raises ``repro.utils.validation.ValidationError`` / ``KeyError`` for
    malformed payloads — the API maps those to 400 responses.
    """
    known = {"experiment_id", "base", "grid", "zipped", "seeds"}
    unknown = sorted(set(payload) - known)
    if unknown:
        raise KeyError(f"unknown sweep field(s) {unknown}; accepted: {sorted(known)}")
    return SweepSpec(
        experiment_id=str(payload.get("experiment_id", "")),
        base=dict(payload.get("base", {})),
        grid=dict(payload.get("grid", {})),
        zipped=dict(payload.get("zipped", {})),
        seeds=tuple(payload.get("seeds", (0,))),
    )


@dataclass
class _ActiveJob:
    """Scheduler-side view of one running job."""

    job_id: str
    total: int
    policy: RetryPolicy = field(default_factory=RetryPolicy)
    pending: deque = field(default_factory=deque)  # (index, RunSpec) to dispatch
    #: index -> (RunSpec, dispatched monotonic); runs handed to the pool
    outstanding: dict = field(default_factory=dict)
    #: (ready monotonic, index, RunSpec); failed runs awaiting their backoff
    delayed: list = field(default_factory=list)
    #: index -> total dispatches so far (the <= max_attempts invariant lives here)
    attempts: dict = field(default_factory=dict)
    completed: set = field(default_factory=set)  # indices accounted for
    quarantined: list = field(default_factory=list)  # poison-run entries
    done: int = 0
    executed: int = 0
    cache_hits: int = 0
    failures: int = 0

    def counters(self) -> dict:
        return {
            "done": self.done,
            "executed": self.executed,
            "cache_hits": self.cache_hits,
            "failures": self.failures,
        }

    def cancel_scheduled(self, index: int) -> None:
        """Drop any pending/delayed (re-)dispatch of ``index``."""
        self.pending = deque(
            (i, spec) for i, spec in self.pending if i != index
        )
        self.delayed = [
            entry for entry in self.delayed if entry[1] != index
        ]


class CampaignService:
    """Durable job queue + shared multi-worker executor + result cache."""

    def __init__(
        self,
        jobstore_dir: str | Path = DEFAULT_JOBSTORE_DIR,
        cache_dir: str | Path = DEFAULT_CACHE_DIR,
        workers: int = 2,
        max_jobs: int = 32,
        version: str = __version__,
        tick_s: float = 0.1,
        policy: RetryPolicy | None = None,
        lost_task_grace_s: float = 15.0,
        max_jobs_per_client: int | None = None,
        lease_ttl_s: float = 15.0,
        heartbeat_s: float = 2.0,
        node_timeout_s: float | None = None,
        node_quarantine_after: int = 5,
    ):
        self.version = version
        self.store = JobStore(jobstore_dir, version=version)
        self.cache = ResultCache(cache_dir, version=version)
        #: ``workers=0`` runs a coordinator-only daemon: no local pool, all
        #: capacity comes from federated ``repro node`` agents.
        self.pool: WorkerPool | None = None
        if workers:
            self.pool = WorkerPool(
                workers=check_positive_int(workers, "workers"),
                cache_dir=str(cache_dir),
                version=version,
            )
        self.federation = FederationBackend(
            cache_dir=str(cache_dir),
            version=version,
            lease_ttl_s=lease_ttl_s,
            heartbeat_s=heartbeat_s,
            node_timeout_s=node_timeout_s,
            quarantine_after=node_quarantine_after,
        )
        #: Dispatch order: local pool first (no network hop), then remotes.
        self.backends = [
            backend for backend in (self.pool, self.federation) if backend is not None
        ]
        self.max_jobs = check_positive_int(max_jobs, "max_jobs")
        self.max_jobs_per_client = (
            check_positive_int(max_jobs_per_client, "max_jobs_per_client")
            if max_jobs_per_client is not None
            else None
        )
        self.tick_s = tick_s
        self.policy = policy if policy is not None else DEFAULT_POLICY
        #: How long a dispatched-but-never-started run may sit before it is
        #: requeued.  Covers the rare loss window where a worker died after
        #: pulling a task but before announcing it (no pid to blame), and
        #: tasks stranded in the shared queue while every worker was dead.
        self.lost_task_grace_s = lost_task_grace_s
        self._active: dict[str, _ActiveJob] = {}
        self._lock = threading.RLock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._started = False

    # ------------------------------------------------------------ lifecycle
    def start(self) -> list[JobRecord]:
        """Start workers + scheduler; returns the jobs recovered for resume."""
        if self._started:
            return []
        self._started = True
        recovered = self.store.recover()
        if self.pool is not None:
            self.pool.start()
        self._thread = threading.Thread(
            target=self._scheduler_loop, name="repro-serve-scheduler", daemon=True
        )
        self._thread.start()
        return recovered

    def shutdown(self, graceful: bool = True) -> None:
        """Stop scheduling; requeue in-flight jobs so a restart resumes them."""
        if not self._started:
            return
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
        if self.pool is not None:
            self.pool.stop(graceful=graceful)
        with self._lock:
            for job_id in list(self._active):
                del self._active[job_id]
                job = self.store.get(job_id)
                if job is not None and job.active:
                    self.store.save(job.requeued(note="interrupted by shutdown"))
                    self.store.append_event(job_id, "-- interrupted by shutdown --")
        self._started = False

    # -------------------------------------------------------------- submit
    def submit(self, payload: dict, client: str = "") -> tuple[JobRecord, bool]:
        """Submit a sweep; returns ``(job, created)``.

        ``client`` is the caller's self-declared identity (the
        ``X-Repro-Client`` header): when the service was started with
        ``max_jobs_per_client``, each identity gets its own active-job bound
        *under* the global ``max_jobs`` one, so one noisy client cannot
        starve the queue for everyone.  Anonymous submits share the ``""``
        identity.

        Identical sweeps (same expanded specs under this version) dedupe to
        the existing job whatever its state: active jobs are simply returned,
        finished ``done`` jobs are returned with their results intact (zero
        new executions), and ``failed``/``cancelled`` jobs are requeued so a
        resubmit resumes them from the cache.

        An optional ``"policy"`` object in the payload overrides the service
        failure policy for this job (partial dicts are fine — e.g.
        ``{"policy": {"max_attempts": 5, "deadline_s": 120}}``).  The policy
        is not part of the job identity.
        """
        payload = dict(payload)
        policy_fields = payload.pop("policy", None)
        if policy_fields is not None:
            if not isinstance(policy_fields, dict):
                raise KeyError("sweep field 'policy' must be an object")
            # Validate eagerly so a bad policy 400s at submit, not mid-run.
            RetryPolicy.from_dict(policy_fields, default=self.policy)
        sweep = sweep_from_payload(payload)
        specs = sweep.expand(validate=True)
        job_id = sweep_job_id(specs, self.version)
        with self._lock:
            existing = self.store.get(job_id)
            if existing is not None:
                updates: dict = {"submits": existing.submits + 1}
                if policy_fields is not None:
                    updates["policy"] = dict(policy_fields)
                existing = self.store.update(job_id, **updates)
                if existing.state in ("failed", "cancelled"):
                    existing = self.store.save(
                        existing.requeued(note=f"resubmitted after {existing.state}")
                    )
                    self.store.append_event(job_id, "-- resubmitted, resuming --")
                return existing, False
            all_jobs = self.store.jobs()
            active_jobs = sum(1 for job in all_jobs if job.active)
            if active_jobs >= self.max_jobs:
                raise AdmissionError(
                    f"job queue full ({active_jobs}/{self.max_jobs} jobs active); "
                    "retry after current campaigns drain"
                )
            if self.max_jobs_per_client is not None:
                mine = sum(
                    1 for job in all_jobs if job.active and job.client == client
                )
                if mine >= self.max_jobs_per_client:
                    raise AdmissionError(
                        f"client {client or 'anonymous'!r} is at its per-client "
                        f"bound ({mine}/{self.max_jobs_per_client} jobs active); "
                        "retry after its campaigns drain"
                    )
            job = JobRecord(
                job_id=job_id,
                sweep={
                    "experiment_id": sweep.experiment_id,
                    "base": dict(sweep.base),
                    "grid": dict(sweep.grid),
                    "zipped": dict(sweep.zipped),
                    "seeds": list(sweep.seeds),
                },
                specs=tuple(spec.canonical() for spec in specs),
                policy=dict(policy_fields) if policy_fields is not None else {},
                client=client,
            )
            job = self.store.save(job)
            self.store.clear_events(job_id)
            self.store.append_event(
                job_id, f"-- submitted: {job.total} points of {sweep.experiment_id} --"
            )
        return job, True

    # -------------------------------------------------------------- queries
    def job(self, job_id: str) -> JobRecord | None:
        return self.store.get(job_id)

    def jobs(self) -> list[JobRecord]:
        return self.store.jobs()

    def events(self, job_id: str) -> list[str]:
        return self.store.events(job_id)

    def cancel(self, job_id: str) -> JobRecord | None:
        """Cancel a job; pending points are dropped, completed ones stay cached."""
        with self._lock:
            job = self.store.get(job_id)
            if job is None or job.finished:
                return job
            state = self._active.pop(job_id, None)
            fields = state.counters() if state is not None else {}
            job = self.store.update(
                job_id,
                state="cancelled",
                finished_at=_now(),
                note="cancelled by request",
                **fields,
            )
            self.store.append_event(
                job_id, f"-- cancelled ({job.done}/{job.total} points complete) --"
            )
            return job

    def results(self, job_id: str) -> dict | None:
        """Cache-first result read: every point fetched straight from the cache."""
        job = self.store.get(job_id)
        if job is None:
            return None
        records = []
        payloads = []
        quarantined = {int(entry.get("index", -1)) for entry in job.quarantined}
        for index, spec in enumerate(job.run_specs()):
            record = self.cache.get(spec)
            if record is None:
                status = "quarantined" if index in quarantined else "missing"
                records.append({"label": spec.label(), "status": status})
            else:
                records.append(
                    {
                        "label": spec.label(),
                        "status": record.status,
                        "cached": record.cached,
                        "payload": dict(record.payload),
                    }
                )
                if record.ok:
                    payloads.append(dict(record.payload))
        return {"job": job.summary(), "records": records, "payloads": payloads}

    def health(self) -> dict:
        """Daemon + cluster liveness: ``degraded`` is true when *either* the
        local pool lost capacity past its respawn budget or any federated
        node is dead/quarantined."""
        jobs = self.store.jobs()
        pool = (
            self.pool.health()
            if self.pool is not None
            else {"backend": "local-pool", "workers": 0, "alive": 0, "degraded": False}
        )
        federation = self.federation.health()
        degraded = bool(pool["degraded"] or federation["degraded"])
        plan = active_plan()
        return {
            "status": "degraded" if degraded else "ok",
            "version": self.version,
            "workers": pool["workers"],
            "workers_alive": pool["alive"],
            "pool": pool,
            "federation": federation,
            "nodes": federation["nodes"],
            "degraded": degraded,
            "max_jobs": self.max_jobs,
            "max_jobs_per_client": self.max_jobs_per_client,
            "policy": self.policy.to_dict(),
            "faults_active": plan.describe() if plan is not None else None,
            "jobs": {
                state: sum(1 for job in jobs if job.state == state)
                for state in ("queued", "running", "done", "failed", "cancelled")
            },
            "cache_dir": str(self.cache.root),
            "jobstore_dir": str(self.store.root),
        }

    # ----------------------------------------------------------- scheduler
    def _scheduler_loop(self) -> None:
        while not self._stop.is_set():
            try:
                self._activate_queued()
                self._dispatch()
                self._drain()
                self._enforce_deadlines()
                self._reap_backends()
            except Exception as exc:  # noqa: BLE001 — scheduler must survive
                # A scheduler crash would silently freeze every job; log the
                # tick's failure to the affected stores and keep ticking.
                try:
                    for job_id in list(self._active):
                        self.store.append_event(job_id, f"-- scheduler error: {exc} --")
                except Exception:  # noqa: BLE001
                    pass
                self._stop.wait(self.tick_s)

    def _job_policy(self, job: JobRecord) -> RetryPolicy:
        """The effective failure policy for one job (service default + overrides)."""
        try:
            return RetryPolicy.from_dict(dict(job.policy), default=self.policy)
        except (ValueError, TypeError):
            return self.policy  # tampered store document: fall back, don't freeze

    def _activate_queued(self) -> None:
        """Move queued store jobs into the scheduler, serving cache hits first."""
        with self._lock:
            for job in self.store.jobs():
                if job.state != "queued" or job.job_id in self._active:
                    continue
                state = _ActiveJob(
                    job_id=job.job_id, total=job.total, policy=self._job_policy(job)
                )
                for index, spec in enumerate(job.run_specs()):
                    cached = self.cache.get(spec)
                    if cached is not None:
                        state.completed.add(index)
                        state.done += 1
                        state.cache_hits += 1
                        self._emit(job.job_id, cached, state)
                    else:
                        state.pending.append((index, spec))
                self._active[job.job_id] = state
                self.store.update(
                    job.job_id, state="running", started_at=_now(), **state.counters()
                )
                self._finish_if_complete(job.job_id, state)

    def _submit_any(self, token, spec: RunSpec):
        """Offer one run to each backend in order; the acceptor, or None."""
        for backend in self.backends:
            if backend.try_submit(token, spec):
                return backend
        return None

    def _dispatch(self) -> None:
        """Round-robin pending points of every active job onto the backends.

        Delayed retries whose backoff has elapsed rejoin the pending queue
        first.  Every dispatch charges the point one attempt — which is what
        makes "no point executes more than ``max_attempts`` times" an
        invariant by construction rather than a hope.  Dispatch remembers
        which backend took each run, so deadline kills and lost-task
        requeues always talk to the owner.
        """
        now = monotonic()
        with self._lock:
            for state in self._active.values():
                if not state.delayed:
                    continue
                ready = [entry for entry in state.delayed if entry[0] <= now]
                if ready:
                    state.delayed = [e for e in state.delayed if e[0] > now]
                    for _, index, spec in ready:
                        state.pending.append((index, spec))
            progressing = True
            while progressing:
                progressing = False
                for state in list(self._active.values()):
                    if not state.pending:
                        continue
                    index, spec = state.pending[0]
                    if state.attempts.get(index, 0) >= state.policy.max_attempts:
                        # Defensive backstop; the failure path quarantines at
                        # the budget, so dispatch should never see this.
                        state.pending.popleft()
                        self._quarantine(state, index, spec, "attempt budget spent")
                        progressing = True
                        continue
                    backend = self._submit_any((state.job_id, index), spec)
                    if backend is None:
                        return  # every backend at capacity — resume next tick
                    state.pending.popleft()
                    state.attempts[index] = state.attempts.get(index, 0) + 1
                    state.outstanding[index] = (spec, monotonic(), backend)
                    progressing = True

    def _drain(self) -> None:
        """Collect completions for up to one tick and persist progress.

        The tick is split across backends so a chatty pool cannot starve
        remote uploads of scheduler attention (or vice versa).
        """
        share = self.tick_s / max(1, len(self.backends))
        for backend in self.backends:
            self._drain_backend(backend, share)
            if self._stop.is_set():
                return

    def _drain_backend(self, backend, timeout: float) -> None:
        for token, record in backend.completions(timeout=timeout):
            job_id, index = token
            with self._lock:
                state = self._active.get(job_id)
                if state is None or index in state.completed:
                    continue  # cancelled job or a re-dispatched duplicate
                if index not in state.outstanding:
                    # Stale completion: this run was already charged a failure
                    # (deadline kill, worker presumed dead) and rescheduled —
                    # but its report survived.  A good result is a result:
                    # accept it and cancel the redundant retry.  A failed
                    # stale report adds nothing: the retry path owns it.
                    if not record.ok:
                        continue
                    state.cancel_scheduled(index)
                    self._complete(job_id, state, index, record)
                    continue
                state.outstanding.pop(index, None)
                state.executed += 1
                if record.ok:
                    self._complete(job_id, state, index, record)
                else:
                    self._handle_run_failure(
                        state, index, record.spec, record.error or "run failed"
                    )
                    self.store.update(job_id, **state.counters())
            if self._stop.is_set():
                return

    def _complete(self, job_id: str, state: _ActiveJob, index: int, record: RunRecord) -> None:
        """Caller holds the lock; account one successfully finished point."""
        if record.ok and not record.cached and self.cache.get(record.spec) is None:
            # The executor finished the run but could not durably cache it
            # (its write attempts all failed — e.g. injected corrupt writes,
            # ENOSPC, or a node whose local cache is elsewhere).  The record
            # is in hand: back-stop the write here so ``GET /results`` serves
            # every completed point.  Still best-effort — a cache that cannot
            # be written costs reuse, not this completion.
            try:
                self.cache.put(record, verify=True)
            except OSError:
                pass
        state.completed.add(index)
        state.done += 1
        self._emit(job_id, record, state)
        self.store.update(job_id, **state.counters())
        self._finish_if_complete(job_id, state)

    def _handle_run_failure(
        self, state: _ActiveJob, index: int, spec: RunSpec, error: str
    ) -> None:
        """Caller holds the lock; retry a failed run or quarantine it.

        ``attempts[index]`` was charged at dispatch, so it already includes
        the execution that just failed.
        """
        attempt = state.attempts.get(index, 0)
        policy = state.policy
        if attempt < policy.max_attempts:
            delay = policy.delay_s(attempt, key=spec.label())
            state.delayed.append((monotonic() + delay, index, spec))
            self.store.append_event(
                state.job_id,
                f"-- retrying {spec.label()} in {delay:.2f}s "
                f"(attempt {attempt}/{policy.max_attempts} failed: {error}) --",
            )
        else:
            self._quarantine(state, index, spec, error)

    def _quarantine(self, state: _ActiveJob, index: int, spec: RunSpec, error: str) -> None:
        """Caller holds the lock; give up on a poison run and move on.

        The point is counted done+failed (the job reaches a terminal state)
        and recorded on the job document with its attempt history, so
        ``repro jobs``/``GET /jobs/<id>`` show exactly what was abandoned.
        """
        attempts = state.attempts.get(index, 0)
        state.completed.add(index)
        state.done += 1
        state.failures += 1
        entry = {
            "index": index,
            "label": spec.label(),
            "attempts": attempts,
            "error": error,
        }
        state.quarantined.append(entry)
        self.store.append_event(
            state.job_id,
            f"-- quarantined {spec.label()} after {attempts} attempts: {error} --",
        )
        self.store.update(
            state.job_id,
            quarantined=tuple(state.quarantined),
            **state.counters(),
        )
        self._finish_if_complete(state.job_id, state)

    def _enforce_deadlines(self) -> None:
        """Kill runs past their wall-clock deadline; requeue stranded tasks.

        Two sweeps over the dispatch bookkeeping:

        * a run its backend reports *executing* (worker started announcement
          locally, granted lease remotely) for longer than the job's
          ``deadline_s`` is killed through that backend — SIGKILL for a local
          worker, lease revocation (fencing any later upload) for a remote
          node — and the same failure path charges the attempt and retries
          or quarantines;
        * a run *dispatched* but never picked up within ``lost_task_grace_s``
          (worker died in the narrow pull-to-announce window, task stranded
          with every worker dead, or a claimable run no node ever leased) is
          withdrawn from its backend and requeued.
        """
        now = monotonic()
        flights = {id(backend): backend.in_flight() for backend in self.backends}
        with self._lock:
            for state in list(self._active.values()):
                deadline = state.policy.deadline_s
                for index, entry in list(state.outstanding.items()):
                    spec, dispatched_at, backend = entry
                    token = (state.job_id, index)
                    flight = flights.get(id(backend), {}).get(token)
                    if flight is not None:
                        if deadline is not None and now - flight[1] > deadline:
                            backend.kill_for(token)
                            state.outstanding.pop(index, None)
                            self._handle_run_failure(
                                state, index, spec,
                                f"deadline exceeded ({deadline:.1f}s wall clock)",
                            )
                            self.store.update(state.job_id, **state.counters())
                    elif now - dispatched_at > self.lost_task_grace_s:
                        # Withdraw first so the run cannot be claimed/executed
                        # by the old submission after we hand out a new one.
                        backend.withdraw(token)
                        state.outstanding.pop(index, None)
                        state.pending.appendleft((index, spec))
                        self.store.append_event(
                            state.job_id,
                            f"-- requeued {spec.label()}: dispatched but never "
                            f"started within {self.lost_task_grace_s:.0f}s --",
                        )

    def _reap_backends(self) -> None:
        """Fail over exactly the runs lost to dead executors, on any backend.

        Locally that means dead worker processes (replaced up to the respawn
        budget); remotely, expired leases and nodes declared dead after
        missing heartbeats.  Each backend names the lost tokens precisely, so
        runs on surviving executors are untouched (no duplicate executions)
        and each lost run flows through the ordinary failure path: charged
        attempt, backoff retry, quarantine at the budget.
        """
        lost = []
        for backend in self.backends:
            lost.extend(backend.reap())
        if not lost:
            return
        with self._lock:
            for token in lost:
                job_id, index = token
                state = self._active.get(job_id)
                if state is None or index in state.completed:
                    continue
                entry = state.outstanding.pop(index, None)
                if entry is None:
                    continue
                spec = entry[0]
                self._handle_run_failure(
                    state, index, spec, "worker died mid-run"
                )
                self.store.update(job_id, **state.counters())

    def _emit(self, job_id: str, record: RunRecord, state: _ActiveJob) -> None:
        event = ProgressEvent(record=record, done=state.done, total=state.total)
        self.store.append_event(job_id, event.message)

    def _finish_if_complete(self, job_id: str, state: _ActiveJob) -> None:
        """Caller holds the lock; transition a fully accounted job to terminal."""
        if state.done < state.total:
            return
        self._active.pop(job_id, None)
        final = "failed" if state.failures else "done"
        error = (
            f"{state.failures} of {state.total} runs failed" if state.failures else None
        )
        self.store.update(
            job_id,
            state=final,
            finished_at=_now(),
            error=error,
            quarantined=tuple(state.quarantined),
            **state.counters(),
        )
        quarantine_note = (
            f", {len(state.quarantined)} quarantined" if state.quarantined else ""
        )
        self.store.append_event(
            job_id,
            f"-- {final}: {state.executed} executed, {state.cache_hits} cache hits, "
            f"{state.failures} failures{quarantine_note} --",
        )
