"""The campaign service: durable jobs scheduled onto a shared worker pool.

:class:`CampaignService` is the daemon's core (the HTTP layer in
:mod:`repro.serve.api` is a thin shell around it):

* **submit** expands a sweep payload into resolved run specs, derives the
  content-addressed job id, dedupes against the store (an identical sweep
  returns the existing job — finished jobs return with zero new executions),
  applies bounded admission control, and persists the job ``queued``;
* a **scheduler thread** activates queued jobs (serving every point already
  in the result cache as an up-front cache hit), round-robins the remaining
  points of *all* active jobs onto the shared
  :class:`~repro.serve.workers.WorkerPool` queue (work-stealing across
  concurrently submitted sweeps), drains completions, persists progress after
  every point, and replaces dead workers, re-dispatching their lost tasks;
* **recovery** is automatic: on start the store requeues whatever a previous
  daemon left active, and activation re-runs only the points the cache does
  not already hold — a ``kill -9`` mid-campaign costs at most the runs that
  were physically in flight.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path

from repro.engine.cache import DEFAULT_CACHE_DIR, ResultCache
from repro.engine.campaign import ProgressEvent
from repro.engine.records import RunRecord
from repro.engine.spec import RunSpec, SweepSpec
from repro.serve.jobstore import JobRecord, JobStore, sweep_job_id
from repro.serve.jobstore import _utc_now as _now
from repro.serve.workers import WorkerPool
from repro.utils.validation import check_positive_int
from repro.version import __version__

__all__ = ["CampaignService", "AdmissionError", "DEFAULT_JOBSTORE_DIR", "sweep_from_payload"]

#: Default job-store location, kept next to the result cache it resumes from.
DEFAULT_JOBSTORE_DIR = f"{DEFAULT_CACHE_DIR}/jobs"


class AdmissionError(RuntimeError):
    """The service is at its job-queue bound; retry after load drains."""


def sweep_from_payload(payload: dict) -> SweepSpec:
    """Build a :class:`SweepSpec` from a ``POST /sweeps`` JSON body.

    Raises ``repro.utils.validation.ValidationError`` / ``KeyError`` for
    malformed payloads — the API maps those to 400 responses.
    """
    known = {"experiment_id", "base", "grid", "zipped", "seeds"}
    unknown = sorted(set(payload) - known)
    if unknown:
        raise KeyError(f"unknown sweep field(s) {unknown}; accepted: {sorted(known)}")
    return SweepSpec(
        experiment_id=str(payload.get("experiment_id", "")),
        base=dict(payload.get("base", {})),
        grid=dict(payload.get("grid", {})),
        zipped=dict(payload.get("zipped", {})),
        seeds=tuple(payload.get("seeds", (0,))),
    )


@dataclass
class _ActiveJob:
    """Scheduler-side view of one running job."""

    job_id: str
    total: int
    pending: deque = field(default_factory=deque)  # (index, RunSpec) to dispatch
    outstanding: dict = field(default_factory=dict)  # index -> RunSpec in flight
    completed: set = field(default_factory=set)  # indices accounted for
    done: int = 0
    executed: int = 0
    cache_hits: int = 0
    failures: int = 0

    def counters(self) -> dict:
        return {
            "done": self.done,
            "executed": self.executed,
            "cache_hits": self.cache_hits,
            "failures": self.failures,
        }


class CampaignService:
    """Durable job queue + shared multi-worker executor + result cache."""

    def __init__(
        self,
        jobstore_dir: str | Path = DEFAULT_JOBSTORE_DIR,
        cache_dir: str | Path = DEFAULT_CACHE_DIR,
        workers: int = 2,
        max_jobs: int = 32,
        version: str = __version__,
        tick_s: float = 0.1,
    ):
        self.version = version
        self.store = JobStore(jobstore_dir, version=version)
        self.cache = ResultCache(cache_dir, version=version)
        self.pool = WorkerPool(
            workers=check_positive_int(workers, "workers"),
            cache_dir=str(cache_dir),
            version=version,
        )
        self.max_jobs = check_positive_int(max_jobs, "max_jobs")
        self.tick_s = tick_s
        self._active: dict[str, _ActiveJob] = {}
        self._lock = threading.RLock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._started = False

    # ------------------------------------------------------------ lifecycle
    def start(self) -> list[JobRecord]:
        """Start workers + scheduler; returns the jobs recovered for resume."""
        if self._started:
            return []
        self._started = True
        recovered = self.store.recover()
        self.pool.start()
        self._thread = threading.Thread(
            target=self._scheduler_loop, name="repro-serve-scheduler", daemon=True
        )
        self._thread.start()
        return recovered

    def shutdown(self, graceful: bool = True) -> None:
        """Stop scheduling; requeue in-flight jobs so a restart resumes them."""
        if not self._started:
            return
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
        self.pool.stop(graceful=graceful)
        with self._lock:
            for job_id in list(self._active):
                del self._active[job_id]
                job = self.store.get(job_id)
                if job is not None and job.active:
                    self.store.save(job.requeued(note="interrupted by shutdown"))
                    self.store.append_event(job_id, "-- interrupted by shutdown --")
        self._started = False

    # -------------------------------------------------------------- submit
    def submit(self, payload: dict) -> tuple[JobRecord, bool]:
        """Submit a sweep; returns ``(job, created)``.

        Identical sweeps (same expanded specs under this version) dedupe to
        the existing job whatever its state: active jobs are simply returned,
        finished ``done`` jobs are returned with their results intact (zero
        new executions), and ``failed``/``cancelled`` jobs are requeued so a
        resubmit resumes them from the cache.
        """
        sweep = sweep_from_payload(payload)
        specs = sweep.expand(validate=True)
        job_id = sweep_job_id(specs, self.version)
        with self._lock:
            existing = self.store.get(job_id)
            if existing is not None:
                existing = self.store.update(job_id, submits=existing.submits + 1)
                if existing.state in ("failed", "cancelled"):
                    existing = self.store.save(
                        existing.requeued(note=f"resubmitted after {existing.state}")
                    )
                    self.store.append_event(job_id, "-- resubmitted, resuming --")
                return existing, False
            active_jobs = sum(1 for job in self.store.jobs() if job.active)
            if active_jobs >= self.max_jobs:
                raise AdmissionError(
                    f"job queue full ({active_jobs}/{self.max_jobs} jobs active); "
                    "retry after current campaigns drain"
                )
            job = JobRecord(
                job_id=job_id,
                sweep={
                    "experiment_id": sweep.experiment_id,
                    "base": dict(sweep.base),
                    "grid": dict(sweep.grid),
                    "zipped": dict(sweep.zipped),
                    "seeds": list(sweep.seeds),
                },
                specs=tuple(spec.canonical() for spec in specs),
            )
            job = self.store.save(job)
            self.store.clear_events(job_id)
            self.store.append_event(
                job_id, f"-- submitted: {job.total} points of {sweep.experiment_id} --"
            )
        return job, True

    # -------------------------------------------------------------- queries
    def job(self, job_id: str) -> JobRecord | None:
        return self.store.get(job_id)

    def jobs(self) -> list[JobRecord]:
        return self.store.jobs()

    def events(self, job_id: str) -> list[str]:
        return self.store.events(job_id)

    def cancel(self, job_id: str) -> JobRecord | None:
        """Cancel a job; pending points are dropped, completed ones stay cached."""
        with self._lock:
            job = self.store.get(job_id)
            if job is None or job.finished:
                return job
            state = self._active.pop(job_id, None)
            fields = state.counters() if state is not None else {}
            job = self.store.update(
                job_id,
                state="cancelled",
                finished_at=_now(),
                note="cancelled by request",
                **fields,
            )
            self.store.append_event(
                job_id, f"-- cancelled ({job.done}/{job.total} points complete) --"
            )
            return job

    def results(self, job_id: str) -> dict | None:
        """Cache-first result read: every point fetched straight from the cache."""
        job = self.store.get(job_id)
        if job is None:
            return None
        records = []
        payloads = []
        for spec in job.run_specs():
            record = self.cache.get(spec)
            if record is None:
                records.append({"label": spec.label(), "status": "missing"})
            else:
                records.append(
                    {
                        "label": spec.label(),
                        "status": record.status,
                        "cached": record.cached,
                        "payload": dict(record.payload),
                    }
                )
                if record.ok:
                    payloads.append(dict(record.payload))
        return {"job": job.summary(), "records": records, "payloads": payloads}

    def health(self) -> dict:
        jobs = self.store.jobs()
        return {
            "status": "ok",
            "version": self.version,
            "workers": self.pool.workers,
            "workers_alive": self.pool.alive(),
            "max_jobs": self.max_jobs,
            "jobs": {
                state: sum(1 for job in jobs if job.state == state)
                for state in ("queued", "running", "done", "failed", "cancelled")
            },
            "cache_dir": str(self.cache.root),
            "jobstore_dir": str(self.store.root),
        }

    # ----------------------------------------------------------- scheduler
    def _scheduler_loop(self) -> None:
        while not self._stop.is_set():
            try:
                self._activate_queued()
                self._dispatch()
                self._drain()
                self._reap_workers()
            except Exception as exc:  # noqa: BLE001 — scheduler must survive
                # A scheduler crash would silently freeze every job; log the
                # tick's failure to the affected stores and keep ticking.
                try:
                    for job_id in list(self._active):
                        self.store.append_event(job_id, f"-- scheduler error: {exc} --")
                except Exception:  # noqa: BLE001
                    pass
                self._stop.wait(self.tick_s)

    def _activate_queued(self) -> None:
        """Move queued store jobs into the scheduler, serving cache hits first."""
        with self._lock:
            for job in self.store.jobs():
                if job.state != "queued" or job.job_id in self._active:
                    continue
                state = _ActiveJob(job_id=job.job_id, total=job.total)
                for index, spec in enumerate(job.run_specs()):
                    cached = self.cache.get(spec)
                    if cached is not None:
                        state.completed.add(index)
                        state.done += 1
                        state.cache_hits += 1
                        self._emit(job.job_id, cached, state)
                    else:
                        state.pending.append((index, spec))
                self._active[job.job_id] = state
                self.store.update(
                    job.job_id, state="running", started_at=_now(), **state.counters()
                )
                self._finish_if_complete(job.job_id, state)

    def _dispatch(self) -> None:
        """Round-robin pending points of every active job onto the shared queue."""
        with self._lock:
            progressing = True
            while progressing:
                progressing = False
                for state in list(self._active.values()):
                    if not state.pending:
                        continue
                    index, spec = state.pending[0]
                    if not self.pool.try_submit((state.job_id, index), spec):
                        return  # shared queue full — resume next tick
                    state.pending.popleft()
                    state.outstanding[index] = spec
                    progressing = True

    def _drain(self) -> None:
        """Collect completions for up to one tick and persist progress."""
        for token, record in self.pool.completions(timeout=self.tick_s):
            job_id, index = token
            with self._lock:
                state = self._active.get(job_id)
                if state is None or index in state.completed:
                    continue  # cancelled job or a re-dispatched duplicate
                state.outstanding.pop(index, None)
                state.completed.add(index)
                state.done += 1
                state.executed += 1
                if not record.ok:
                    state.failures += 1
                self._emit(job_id, record, state)
                self.store.update(job_id, **state.counters())
                self._finish_if_complete(job_id, state)
            if self._stop.is_set():
                return

    def _reap_workers(self) -> None:
        """Replace dead workers and re-dispatch the tasks they took with them."""
        if self.pool.reap() == 0:
            return
        with self._lock:
            for state in self._active.values():
                # In-flight tasks of dead workers never report; requeue every
                # outstanding point (duplicates are filtered by `completed`).
                while state.outstanding:
                    index, spec = state.outstanding.popitem()
                    state.pending.appendleft((index, spec))

    def _emit(self, job_id: str, record: RunRecord, state: _ActiveJob) -> None:
        event = ProgressEvent(record=record, done=state.done, total=state.total)
        self.store.append_event(job_id, event.message)

    def _finish_if_complete(self, job_id: str, state: _ActiveJob) -> None:
        """Caller holds the lock; transition a fully accounted job to terminal."""
        if state.done < state.total:
            return
        self._active.pop(job_id, None)
        final = "failed" if state.failures else "done"
        error = (
            f"{state.failures} of {state.total} runs failed" if state.failures else None
        )
        self.store.update(
            job_id,
            state=final,
            finished_at=_now(),
            error=error,
            **state.counters(),
        )
        self.store.append_event(
            job_id,
            f"-- {final}: {state.executed} executed, {state.cache_hits} cache hits, "
            f"{state.failures} failures --",
        )
