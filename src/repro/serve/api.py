"""HTTP API for the campaign service (stdlib only, no new dependencies).

Routes (all JSON unless noted):

* ``POST /sweeps`` — async submit.  Body is a sweep payload
  (``{"experiment_id", "base", "grid", "zipped", "seeds"}``); responds 202
  with the job document (200 when the sweep deduped to an existing job),
  400 on malformed sweeps and **429 + Retry-After when the bounded job queue
  is full** so heavy traffic degrades gracefully instead of piling up.
* ``GET /jobs`` — every job's summary, oldest first.
* ``GET /jobs/<id>`` — one job's status document.
* ``GET /jobs/<id>/events`` — the job's progress lines as ``text/plain``;
  ``?follow=1`` keeps the response open, streaming new
  :class:`~repro.engine.campaign.ProgressEvent` lines until the job reaches
  a terminal state.
* ``POST /jobs/<id>/cancel`` — cancel a queued/running job.
* ``GET /results/<id>`` — the job's records read *cache-first*: every point
  is fetched straight from the content-addressed result cache, so repeat
  queries cost ~0 compute whether they hit the same daemon or a fresh one.
* ``GET /healthz`` — liveness + worker-pool health (live workers, respawn
  budget, ``degraded`` flag) + job counts.  The body always answers; clients
  decide what "degraded" means for them.

The server is a :class:`ThreadingHTTPServer`: handler threads only touch the
:class:`~repro.serve.service.CampaignService` (which is thread-safe); all
actual compute happens in the worker processes.

Failure semantics: an :class:`~repro.faults.InjectedFault` at the
``api.handle`` fault point (chaos testing a flaky front end) maps to **503 +
Retry-After** — the transient-server-error shape clients are expected to
retry; any other unexpected handler exception maps to a JSON 500 instead of
the stdlib's HTML traceback page, so one buggy route can never take the
daemon thread down silently or leak stack traces to clients.
"""

from __future__ import annotations

import json
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from threading import Thread

from repro.faults import InjectedFault, fault_point
from repro.serve.jobstore import TERMINAL_STATES
from repro.serve.service import AdmissionError, CampaignService
from repro.utils.validation import ValidationError
from repro.version import __version__

__all__ = ["ServeDaemon", "ServeAPIHandler", "DEFAULT_HOST", "DEFAULT_PORT"]

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8321


class ServeAPIHandler(BaseHTTPRequestHandler):
    """Routes HTTP requests onto the attached :class:`CampaignService`."""

    server_version = f"repro-serve/{__version__}"

    @property
    def service(self) -> CampaignService:
        return self.server.service  # type: ignore[attr-defined]

    # --------------------------------------------------------------- routes
    def do_GET(self) -> None:  # noqa: N802 — http.server API
        path, _, query = self.path.partition("?")
        parts = [part for part in path.split("/") if part]
        try:
            fault_point("api.handle", key=f"GET {path}")
            if parts == ["healthz"]:
                self._send_json(200, self.service.health())
            elif parts == ["jobs"]:
                self._send_json(
                    200, {"jobs": [job.summary() for job in self.service.jobs()]}
                )
            elif len(parts) == 2 and parts[0] == "jobs":
                job = self.service.job(parts[1])
                if job is None:
                    self._send_json(404, {"error": f"unknown job {parts[1]!r}"})
                else:
                    self._send_json(200, job.to_dict())
            elif len(parts) == 3 and parts[0] == "jobs" and parts[2] == "events":
                self._send_events(parts[1], follow="follow=1" in query)
            elif len(parts) == 2 and parts[0] == "results":
                results = self.service.results(parts[1])
                if results is None:
                    self._send_json(404, {"error": f"unknown job {parts[1]!r}"})
                else:
                    self._send_json(200, results)
            else:
                self._send_json(404, {"error": f"no route for GET {path}"})
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away mid-response
        except InjectedFault as exc:
            self._send_unavailable(exc)
        except Exception as exc:  # noqa: BLE001 — see module docstring
            self._send_error(exc)

    def do_POST(self) -> None:  # noqa: N802 — http.server API
        parts = [part for part in self.path.split("/") if part]
        try:
            fault_point("api.handle", key=f"POST {self.path}")
            if parts == ["sweeps"]:
                self._submit_sweep()
            elif len(parts) == 3 and parts[0] == "jobs" and parts[2] == "cancel":
                job = self.service.cancel(parts[1])
                if job is None:
                    self._send_json(404, {"error": f"unknown job {parts[1]!r}"})
                else:
                    self._send_json(200, job.summary())
            else:
                self._send_json(404, {"error": f"no route for POST {self.path}"})
        except (BrokenPipeError, ConnectionResetError):
            pass
        except InjectedFault as exc:
            self._send_unavailable(exc)
        except Exception as exc:  # noqa: BLE001 — see module docstring
            self._send_error(exc)

    def _send_unavailable(self, exc: Exception) -> None:
        """Transient-failure shape (503 + Retry-After): the client should retry."""
        try:
            self._send_json(
                503,
                {"error": f"temporarily unavailable: {exc}"},
                headers={"Retry-After": "1"},
            )
        except (BrokenPipeError, ConnectionResetError):
            pass

    def _send_error(self, exc: Exception) -> None:
        """Terminal-failure shape (JSON 500), replacing stdlib HTML tracebacks."""
        try:
            self._send_json(500, {"error": f"{type(exc).__name__}: {exc}"})
        except (BrokenPipeError, ConnectionResetError):
            pass

    # -------------------------------------------------------------- actions
    def _submit_sweep(self) -> None:
        try:
            length = int(self.headers.get("Content-Length", 0))
            payload = json.loads(self.rfile.read(length) or b"{}")
            if not isinstance(payload, dict):
                raise ValueError("sweep payload must be a JSON object")
        except (ValueError, json.JSONDecodeError) as exc:
            self._send_json(400, {"error": f"bad request body: {exc}"})
            return
        try:
            job, created = self.service.submit(payload)
        except AdmissionError as exc:
            self._send_json(429, {"error": str(exc)}, headers={"Retry-After": "1"})
            return
        except (ValidationError, KeyError, TypeError, ValueError) as exc:
            message = exc.args[0] if exc.args else exc
            self._send_json(400, {"error": f"invalid sweep: {message}"})
            return
        self._send_json(202 if created else 200, job.to_dict() | {"created": created})

    def _send_events(self, job_id: str, follow: bool) -> None:
        if self.service.job(job_id) is None:
            self._send_json(404, {"error": f"unknown job {job_id!r}"})
            return
        self.send_response(200)
        self.send_header("Content-Type", "text/plain; charset=utf-8")
        self.send_header("Cache-Control", "no-store")
        self.end_headers()
        sent = 0
        while True:
            events = self.service.events(job_id)
            for line in events[sent:]:
                self.wfile.write((line + "\n").encode())
            sent = len(events)
            self.wfile.flush()
            job = self.service.job(job_id)
            if not follow or job is None or job.state in TERMINAL_STATES:
                return
            time.sleep(0.2)

    # -------------------------------------------------------------- plumbing
    def _send_json(
        self, code: int, payload: dict, headers: dict[str, str] | None = None
    ) -> None:
        body = json.dumps(payload, indent=2, sort_keys=True).encode()
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args) -> None:  # noqa: A002 — stdlib name
        pass  # per-request stderr chatter off; the CLI prints the service lines


class ServeDaemon:
    """A :class:`ThreadingHTTPServer` bound to one :class:`CampaignService`."""

    def __init__(
        self,
        service: CampaignService,
        host: str = DEFAULT_HOST,
        port: int = DEFAULT_PORT,
    ):
        self.service = service
        self.server = ThreadingHTTPServer((host, port), ServeAPIHandler)
        self.server.daemon_threads = True
        self.server.service = service  # type: ignore[attr-defined]
        self._thread: Thread | None = None

    @property
    def host(self) -> str:
        return self.server.server_address[0]

    @property
    def port(self) -> int:
        return self.server.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> None:
        """Start the service and serve HTTP on a background thread."""
        self.service.start()
        self._thread = Thread(
            target=self.server.serve_forever, name="repro-serve-http", daemon=True
        )
        self._thread.start()

    def serve_forever(self) -> None:
        """Start the service and serve HTTP on the calling thread."""
        self.service.start()
        self.server.serve_forever()

    def shutdown(self, graceful: bool = True) -> None:
        self.server.shutdown()
        self.server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self.service.shutdown(graceful=graceful)
