"""HTTP API for the campaign service (stdlib only, no new dependencies).

Routes (all JSON unless noted):

* ``POST /sweeps`` — async submit.  Body is a sweep payload
  (``{"experiment_id", "base", "grid", "zipped", "seeds"}``); responds 202
  with the job document (200 when the sweep deduped to an existing job),
  400 on malformed sweeps and **429 + Retry-After when an admission bound is
  hit** — the global job-queue bound or the per-client one (clients identify
  themselves with an ``X-Repro-Client`` header) — so heavy traffic degrades
  gracefully instead of piling up.
* ``GET /jobs`` — every job's summary, oldest first.
* ``GET /jobs/<id>`` — one job's status document.
* ``GET /jobs/<id>/events`` — the job's progress lines as ``text/plain``;
  ``?follow=1`` keeps the response open as an **HTTP/1.1 chunked stream**,
  flushing new :class:`~repro.engine.campaign.ProgressEvent` lines as they
  land and writing ``: keep-alive`` comment lines during quiet stretches so
  buffering proxies and idle-timeout middleboxes do not kill the stream;
  ``?follow=1&longpoll=1`` falls back to the PR 6 unframed write-through
  (``Connection: close``) for clients that cannot consume chunked bodies.
* ``POST /jobs/<id>/cancel`` — cancel a queued/running job.
* ``GET /results/<id>`` — the job's records read *cache-first*: every point
  is fetched straight from the content-addressed result cache, so repeat
  queries cost ~0 compute whether they hit the same daemon or a fresh one.
* ``GET /healthz`` — liveness + worker-pool and federation health (live
  workers, respawn budget, per-node liveness, cluster ``degraded`` flag) +
  job counts.  The body always answers; clients decide what "degraded"
  means for them.

Federation routes (the ``repro node`` agent protocol):

* ``POST /nodes`` — register (or revive) a node agent; returns the lease and
  heartbeat configuration the agent must follow.
* ``POST /nodes/<id>/heartbeat`` — liveness ping; the response relays drain
  and quarantine instructions.  **410 Gone** once the node was declared dead
  (it must re-register); 404 for never-registered ids.
* ``POST /nodes/<id>/drain`` — operator request: the node finishes leased
  runs, claims nothing new, then deregisters.
* ``POST /nodes/<id>/deregister`` — graceful goodbye; held leases requeue.
* ``GET /nodes`` — per-node liveness summaries (also inside ``/healthz``).
* ``POST /leases`` — claim up to ``max_runs`` runs as time-bounded leases.
* ``POST /leases/<id>/renew`` — extend a lease; **409 Conflict** when the
  lease token no longer matches (expired/revoked/reassigned — *fenced*).
* ``POST /leases/<id>/result`` — upload one finished record under the lease
  token; 409 when fenced (the record is discarded: the re-dispatched attempt
  owns the run), 400 for torn/unparseable uploads.

The server is a :class:`ThreadingHTTPServer`: handler threads only touch the
:class:`~repro.serve.service.CampaignService` (which is thread-safe); all
actual compute happens in the worker processes.

Failure semantics: an :class:`~repro.faults.InjectedFault` at the
``api.handle`` fault point (chaos testing a flaky front end) maps to **503 +
Retry-After** — the transient-server-error shape clients are expected to
retry; any other unexpected handler exception maps to a JSON 500 instead of
the stdlib's HTML traceback page, so one buggy route can never take the
daemon thread down silently or leak stack traces to clients.
"""

from __future__ import annotations

import json
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from threading import Thread

from repro.faults import InjectedFault, fault_point
from repro.serve.federation import FencedLeaseError, NodeGoneError, UnknownNodeError
from repro.serve.jobstore import TERMINAL_STATES
from repro.serve.service import AdmissionError, CampaignService
from repro.utils.validation import ValidationError
from repro.version import __version__

__all__ = ["ServeDaemon", "ServeAPIHandler", "DEFAULT_HOST", "DEFAULT_PORT"]

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8321

#: Seconds of event-stream silence before a ``: keep-alive`` comment chunk.
STREAM_KEEPALIVE_S = 1.0


class ServeAPIHandler(BaseHTTPRequestHandler):
    """Routes HTTP requests onto the attached :class:`CampaignService`."""

    server_version = f"repro-serve/{__version__}"
    #: HTTP/1.1 enables chunked transfer encoding for ``?follow=1`` event
    #: streams (every other response carries an explicit Content-Length).
    protocol_version = "HTTP/1.1"

    @property
    def service(self) -> CampaignService:
        return self.server.service  # type: ignore[attr-defined]

    # --------------------------------------------------------------- routes
    def do_GET(self) -> None:  # noqa: N802 — http.server API
        path, _, query = self.path.partition("?")
        parts = [part for part in path.split("/") if part]
        try:
            fault_point("api.handle", key=f"GET {path}")
            if parts == ["healthz"]:
                self._send_json(200, self.service.health())
            elif parts == ["jobs"]:
                self._send_json(
                    200, {"jobs": [job.summary() for job in self.service.jobs()]}
                )
            elif len(parts) == 2 and parts[0] == "jobs":
                job = self.service.job(parts[1])
                if job is None:
                    self._send_json(404, {"error": f"unknown job {parts[1]!r}"})
                else:
                    self._send_json(200, job.to_dict())
            elif len(parts) == 3 and parts[0] == "jobs" and parts[2] == "events":
                self._send_events(
                    parts[1],
                    follow="follow=1" in query,
                    longpoll="longpoll=1" in query,
                )
            elif parts == ["nodes"]:
                self._send_json(200, {"nodes": self.service.federation.nodes()})
            elif len(parts) == 2 and parts[0] == "results":
                results = self.service.results(parts[1])
                if results is None:
                    self._send_json(404, {"error": f"unknown job {parts[1]!r}"})
                else:
                    self._send_json(200, results)
            else:
                self._send_json(404, {"error": f"no route for GET {path}"})
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away mid-response
        except InjectedFault as exc:
            self._send_unavailable(exc)
        except Exception as exc:  # noqa: BLE001 — see module docstring
            self._send_error(exc)

    def do_POST(self) -> None:  # noqa: N802 — http.server API
        parts = [part for part in self.path.split("/") if part]
        try:
            fault_point("api.handle", key=f"POST {self.path}")
            if parts == ["sweeps"]:
                self._submit_sweep()
            elif len(parts) == 3 and parts[0] == "jobs" and parts[2] == "cancel":
                job = self.service.cancel(parts[1])
                if job is None:
                    self._send_json(404, {"error": f"unknown job {parts[1]!r}"})
                else:
                    self._send_json(200, job.summary())
            elif parts == ["nodes"]:
                self._register_node()
            elif len(parts) == 3 and parts[0] == "nodes":
                self._node_action(parts[1], parts[2])
            elif parts == ["leases"]:
                self._claim_leases()
            elif len(parts) == 3 and parts[0] == "leases":
                self._lease_action(parts[1], parts[2])
            else:
                self._send_json(404, {"error": f"no route for POST {self.path}"})
        except (BrokenPipeError, ConnectionResetError):
            pass
        except InjectedFault as exc:
            self._send_unavailable(exc)
        except UnknownNodeError as exc:
            self._send_json(404, {"error": str(exc.args[0] if exc.args else exc)})
        except NodeGoneError as exc:
            self._send_json(410, {"error": str(exc)})
        except FencedLeaseError as exc:
            self._send_json(409, {"error": str(exc)})
        except Exception as exc:  # noqa: BLE001 — see module docstring
            self._send_error(exc)

    def _send_unavailable(self, exc: Exception) -> None:
        """Transient-failure shape (503 + Retry-After): the client should retry."""
        try:
            self._send_json(
                503,
                {"error": f"temporarily unavailable: {exc}"},
                headers={"Retry-After": "1"},
            )
        except (BrokenPipeError, ConnectionResetError):
            pass

    def _send_error(self, exc: Exception) -> None:
        """Terminal-failure shape (JSON 500), replacing stdlib HTML tracebacks."""
        try:
            self._send_json(500, {"error": f"{type(exc).__name__}: {exc}"})
        except (BrokenPipeError, ConnectionResetError):
            pass

    # -------------------------------------------------------------- actions
    def _read_json(self) -> dict:
        """Parse the request body; raises ``ValueError`` for torn/bad bodies."""
        length = int(self.headers.get("Content-Length", 0))
        body = self.rfile.read(length) if length else b""
        if length and len(body) < length:
            raise ValueError("request body shorter than Content-Length (torn upload)")
        payload = json.loads(body or b"{}")
        if not isinstance(payload, dict):
            raise ValueError("request body must be a JSON object")
        return payload

    def _submit_sweep(self) -> None:
        try:
            payload = self._read_json()
        except (ValueError, json.JSONDecodeError) as exc:
            self._send_json(400, {"error": f"bad request body: {exc}"})
            return
        client = str(self.headers.get("X-Repro-Client", "")).strip()
        try:
            job, created = self.service.submit(payload, client=client)
        except AdmissionError as exc:
            self._send_json(429, {"error": str(exc)}, headers={"Retry-After": "1"})
            return
        except (ValidationError, KeyError, TypeError, ValueError) as exc:
            message = exc.args[0] if exc.args else exc
            self._send_json(400, {"error": f"invalid sweep: {message}"})
            return
        self._send_json(202 if created else 200, job.to_dict() | {"created": created})

    # ------------------------------------------------------ federation routes
    def _register_node(self) -> None:
        try:
            payload = self._read_json()
            config = self.service.federation.register_node(
                node_id=str(payload.get("node_id", "")),
                workers=int(payload.get("workers", 1)),
                host=str(payload.get("host", "")),
                pid=payload.get("pid"),
            )
        except (ValueError, TypeError, json.JSONDecodeError) as exc:
            self._send_json(400, {"error": f"bad node registration: {exc}"})
            return
        self._send_json(200, config)

    def _node_action(self, node_id: str, action: str) -> None:
        federation = self.service.federation
        if action == "heartbeat":
            self._send_json(200, federation.heartbeat(node_id))
        elif action == "drain":
            self._send_json(200, federation.drain(node_id))
        elif action == "deregister":
            self._send_json(200, federation.deregister_node(node_id))
        else:
            self._send_json(404, {"error": f"no route for POST {self.path}"})

    def _claim_leases(self) -> None:
        try:
            payload = self._read_json()
            node_id = str(payload["node_id"])
            max_runs = int(payload.get("max_runs", 1))
        except (ValueError, TypeError, KeyError, json.JSONDecodeError) as exc:
            self._send_json(400, {"error": f"bad lease claim: {exc}"})
            return
        leases = self.service.federation.claim(node_id, max_runs=max_runs)
        self._send_json(200, {"leases": leases})

    def _lease_action(self, lease_id: str, action: str) -> None:
        try:
            payload = self._read_json()
            node_id = str(payload["node_id"])
            token = str(payload["token"])
        except (ValueError, TypeError, KeyError, json.JSONDecodeError) as exc:
            self._send_json(400, {"error": f"bad lease request: {exc}"})
            return
        federation = self.service.federation
        if action == "renew":
            self._send_json(200, federation.renew(lease_id, node_id, token))
        elif action == "result":
            record_dict = payload.get("record")
            if not isinstance(record_dict, dict):
                self._send_json(400, {"error": "lease result needs a 'record' object"})
                return
            try:
                record = federation.upload(lease_id, node_id, token, record_dict)
            except (KeyError, TypeError, ValueError) as exc:
                self._send_json(400, {"error": f"malformed run record: {exc}"})
                return
            self._send_json(200, {"accepted": True, "ok": record.ok})
        else:
            self._send_json(404, {"error": f"no route for POST {self.path}"})

    # --------------------------------------------------------- event streams
    def _send_events(self, job_id: str, follow: bool, longpoll: bool = False) -> None:
        if self.service.job(job_id) is None:
            self._send_json(404, {"error": f"unknown job {job_id!r}"})
            return
        if not follow:
            body = "".join(
                line + "\n" for line in self.service.events(job_id)
            ).encode()
            self.send_response(200)
            self.send_header("Content-Type", "text/plain; charset=utf-8")
            self.send_header("Cache-Control", "no-store")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
            return
        if longpoll:
            self._follow_longpoll(job_id)
        else:
            self._follow_chunked(job_id)

    def _follow_longpoll(self, job_id: str) -> None:
        """PR 6 fallback framing: unframed write-through, end = connection close.

        Kept for clients that cannot consume chunked bodies; the missing
        length framing is why the connection must close when the stream ends.
        """
        self.send_response(200)
        self.send_header("Content-Type", "text/plain; charset=utf-8")
        self.send_header("Cache-Control", "no-store")
        self.send_header("Connection", "close")
        self.end_headers()
        self.close_connection = True
        sent = 0
        while True:
            events = self.service.events(job_id)
            for line in events[sent:]:
                self.wfile.write((line + "\n").encode())
            sent = len(events)
            self.wfile.flush()
            job = self.service.job(job_id)
            if job is None or job.state in TERMINAL_STATES:
                return
            time.sleep(0.2)

    def _follow_chunked(self, job_id: str) -> None:
        """Chunked event stream with keep-alive comments during silence.

        Each batch of new progress lines is flushed as its own chunk, so
        proxies that buffer unframed bodies still deliver promptly; when no
        event lands for :data:`STREAM_KEEPALIVE_S`, a ``: keep-alive`` comment
        line (ignored by readers — it starts with ``:``, like SSE comments)
        keeps idle-timeout middleboxes from cutting the stream.  The stream
        ends with a proper zero-length chunk once the job is terminal, so
        clients can tell completion from a dropped connection.
        """
        self.send_response(200)
        self.send_header("Content-Type", "text/plain; charset=utf-8")
        self.send_header("Cache-Control", "no-store")
        self.send_header("Transfer-Encoding", "chunked")
        self.end_headers()
        sent = 0
        last_write = time.monotonic()
        while True:
            events = self.service.events(job_id)
            batch = "".join(line + "\n" for line in events[sent:])
            sent = len(events)
            if batch:
                self._write_chunk(batch.encode())
                last_write = time.monotonic()
            job = self.service.job(job_id)
            if job is None or job.state in TERMINAL_STATES:
                break
            if time.monotonic() - last_write >= STREAM_KEEPALIVE_S:
                self._write_chunk(b": keep-alive\n")
                last_write = time.monotonic()
            time.sleep(0.2)
        self._write_chunk(b"")  # terminal chunk: the stream ended cleanly

    def _write_chunk(self, data: bytes) -> None:
        self.wfile.write(f"{len(data):X}\r\n".encode() + data + b"\r\n")
        self.wfile.flush()

    # -------------------------------------------------------------- plumbing
    def _send_json(
        self, code: int, payload: dict, headers: dict[str, str] | None = None
    ) -> None:
        body = json.dumps(payload, indent=2, sort_keys=True).encode()
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args) -> None:  # noqa: A002 — stdlib name
        pass  # per-request stderr chatter off; the CLI prints the service lines


class ServeDaemon:
    """A :class:`ThreadingHTTPServer` bound to one :class:`CampaignService`."""

    def __init__(
        self,
        service: CampaignService,
        host: str = DEFAULT_HOST,
        port: int = DEFAULT_PORT,
    ):
        self.service = service
        self.server = ThreadingHTTPServer((host, port), ServeAPIHandler)
        self.server.daemon_threads = True
        self.server.service = service  # type: ignore[attr-defined]
        self._thread: Thread | None = None

    @property
    def host(self) -> str:
        return self.server.server_address[0]

    @property
    def port(self) -> int:
        return self.server.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> None:
        """Start the service and serve HTTP on a background thread."""
        self.service.start()
        self._thread = Thread(
            target=self.server.serve_forever, name="repro-serve-http", daemon=True
        )
        self._thread.start()

    def serve_forever(self) -> None:
        """Start the service and serve HTTP on the calling thread."""
        self.service.start()
        self.server.serve_forever()

    def shutdown(self, graceful: bool = True) -> None:
        self.server.shutdown()
        self.server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self.service.shutdown(graceful=graceful)
