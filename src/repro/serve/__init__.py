"""Persistent campaign service: durable job queue + shared worker pool + HTTP API.

Turns the one-shot campaign engine into a long-running system:

* :mod:`repro.serve.jobstore` — durable on-disk :class:`JobStore` of
  content-addressed :class:`JobRecord` documents (atomic writes, crash-safe,
  requeues interrupted jobs on restart).
* :mod:`repro.serve.workers` — :class:`WorkerPool`, N spawned worker
  processes pulling from one shared queue (the
  :class:`~repro.engine.executor.StreamExecutor` implementation) with
  write-through to the content-addressed result cache.
* :mod:`repro.serve.service` — :class:`CampaignService`, the scheduler that
  dedupes submissions, admits within a bounded job queue, round-robins
  active sweeps onto the pool, and resumes killed campaigns from the cache.
* :mod:`repro.serve.api` — :class:`ServeDaemon`, the stdlib
  ``ThreadingHTTPServer`` API (``POST /sweeps``, ``GET /jobs/<id>``,
  ``GET /results/<id>``, …).
* :mod:`repro.serve.client` — :class:`ServeClient`, the urllib client the
  ``repro submit`` / ``repro jobs`` commands use.

Start a daemon with ``repro serve``; submit work with ``repro submit``.
"""

from repro.serve.api import DEFAULT_HOST, DEFAULT_PORT, ServeDaemon
from repro.serve.client import DEFAULT_URL, ServeClient, ServeError
from repro.serve.jobstore import JobRecord, JobStore, sweep_job_id
from repro.serve.service import (
    DEFAULT_JOBSTORE_DIR,
    AdmissionError,
    CampaignService,
    sweep_from_payload,
)
from repro.serve.workers import WorkerPool

__all__ = [
    "AdmissionError",
    "CampaignService",
    "DEFAULT_HOST",
    "DEFAULT_JOBSTORE_DIR",
    "DEFAULT_PORT",
    "DEFAULT_URL",
    "JobRecord",
    "JobStore",
    "ServeClient",
    "ServeDaemon",
    "ServeError",
    "WorkerPool",
    "sweep_from_payload",
    "sweep_job_id",
]
