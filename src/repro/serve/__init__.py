"""Persistent campaign service: durable job queue + shared worker pool + HTTP API.

Turns the one-shot campaign engine into a long-running system:

* :mod:`repro.serve.jobstore` — durable on-disk :class:`JobStore` of
  content-addressed :class:`JobRecord` documents (atomic writes, crash-safe,
  requeues interrupted jobs on restart).
* :mod:`repro.serve.workers` — :class:`WorkerPool`, N spawned worker
  processes pulling from one shared queue (the
  :class:`~repro.engine.executor.StreamExecutor` implementation) with
  write-through to the content-addressed result cache.
* :mod:`repro.serve.service` — :class:`CampaignService`, the scheduler that
  dedupes submissions, admits within a bounded job queue, round-robins
  active sweeps onto the pool, and resumes killed campaigns from the cache.
* :mod:`repro.serve.api` — :class:`ServeDaemon`, the stdlib
  ``ThreadingHTTPServer`` API (``POST /sweeps``, ``GET /jobs/<id>``,
  ``GET /results/<id>``, …).
* :mod:`repro.serve.client` — :class:`ServeClient`, the urllib client the
  ``repro submit`` / ``repro jobs`` commands use.
* :mod:`repro.serve.federation` — multi-node execution:
  :class:`FederationBackend` (coordinator-side lease manager behind the
  :class:`~repro.engine.executor.RunBackend` interface) and
  :class:`NodeAgent` (the ``repro node`` remote-worker loop).

Start a daemon with ``repro serve``; submit work with ``repro submit``;
attach remote capacity with ``repro node --coordinator URL``.
"""

from repro.serve.api import DEFAULT_HOST, DEFAULT_PORT, ServeDaemon
from repro.serve.client import DEFAULT_URL, JobFailedError, ServeClient, ServeError
from repro.serve.federation import (
    FederationBackend,
    FencedLeaseError,
    NodeAgent,
    NodeGoneError,
    UnknownNodeError,
)
from repro.serve.jobstore import JobRecord, JobStore, sweep_job_id
from repro.serve.service import (
    DEFAULT_JOBSTORE_DIR,
    AdmissionError,
    CampaignService,
    sweep_from_payload,
)
from repro.serve.workers import WorkerPool

__all__ = [
    "AdmissionError",
    "CampaignService",
    "DEFAULT_HOST",
    "DEFAULT_JOBSTORE_DIR",
    "DEFAULT_PORT",
    "DEFAULT_URL",
    "FederationBackend",
    "FencedLeaseError",
    "JobFailedError",
    "JobRecord",
    "JobStore",
    "NodeAgent",
    "NodeGoneError",
    "ServeClient",
    "ServeDaemon",
    "ServeError",
    "UnknownNodeError",
    "WorkerPool",
    "sweep_from_payload",
    "sweep_job_id",
]
