"""Thin stdlib HTTP client for a running ``repro serve`` daemon.

Wraps :mod:`urllib.request` so the CLI (``repro submit`` / ``repro jobs``)
and tests talk to the service without any new dependency.  Error responses
raise :class:`ServeError` carrying the HTTP status and the server's decoded
JSON error payload, so callers can distinguish "queue full, retry" (429)
from "bad sweep" (400).
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request

from repro.serve.api import DEFAULT_HOST, DEFAULT_PORT
from repro.serve.jobstore import TERMINAL_STATES

__all__ = ["ServeClient", "ServeError", "DEFAULT_URL"]

DEFAULT_URL = f"http://{DEFAULT_HOST}:{DEFAULT_PORT}"


class ServeError(RuntimeError):
    """An error response (or connection failure) from the serve daemon."""

    def __init__(self, message: str, status: int = 0, payload: dict | None = None):
        super().__init__(message)
        self.status = status
        self.payload = payload or {}


class ServeClient:
    """Talks JSON to one daemon; every method maps to one endpoint."""

    def __init__(self, url: str = DEFAULT_URL, timeout: float = 30.0):
        self.url = url.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------- plumbing
    def _request(self, method: str, path: str, payload: dict | None = None):
        data = json.dumps(payload).encode() if payload is not None else None
        request = urllib.request.Request(
            f"{self.url}{path}",
            data=data,
            method=method,
            headers={"Content-Type": "application/json"} if data else {},
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                body = response.read()
                content_type = response.headers.get("Content-Type", "")
        except urllib.error.HTTPError as exc:
            try:
                error_payload = json.loads(exc.read() or b"{}")
            except json.JSONDecodeError:
                error_payload = {}
            message = error_payload.get("error", f"HTTP {exc.code}")
            raise ServeError(message, status=exc.code, payload=error_payload) from exc
        except (urllib.error.URLError, OSError) as exc:
            raise ServeError(
                f"cannot reach repro serve at {self.url}: {exc}"
            ) from exc
        if "text/plain" in content_type:
            return body.decode()
        return json.loads(body) if body else {}

    # ------------------------------------------------------------ endpoints
    def health(self) -> dict:
        return self._request("GET", "/healthz")

    def submit(self, sweep: dict) -> dict:
        """``POST /sweeps``; raises :class:`ServeError` with status 429 when full."""
        return self._request("POST", "/sweeps", payload=sweep)

    def jobs(self) -> list[dict]:
        return self._request("GET", "/jobs")["jobs"]

    def job(self, job_id: str) -> dict:
        return self._request("GET", f"/jobs/{job_id}")

    def events(self, job_id: str) -> list[str]:
        text = self._request("GET", f"/jobs/{job_id}/events")
        return [line for line in str(text).splitlines() if line]

    def cancel(self, job_id: str) -> dict:
        return self._request("POST", f"/jobs/{job_id}/cancel")

    def results(self, job_id: str) -> dict:
        return self._request("GET", f"/results/{job_id}")

    # ------------------------------------------------------------ waiting
    def wait(
        self,
        job_id: str,
        timeout: float | None = None,
        poll_s: float = 0.3,
        on_event=None,
    ) -> dict:
        """Poll until the job reaches a terminal state; returns its document.

        ``on_event`` (if given) receives every *new* progress line exactly
        once as the wait progresses — the CLI uses it to mirror the sweep
        command's live per-point output.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        seen = 0
        while True:
            if on_event is not None:
                events = self.events(job_id)
                for line in events[seen:]:
                    on_event(line)
                seen = len(events)
            job = self.job(job_id)
            if job["state"] in TERMINAL_STATES:
                if on_event is not None:
                    for line in self.events(job_id)[seen:]:
                        on_event(line)
                return job
            if deadline is not None and time.monotonic() > deadline:
                raise ServeError(
                    f"timed out after {timeout}s waiting for job {job_id} "
                    f"({job['done']}/{job['total']} points done)"
                )
            time.sleep(poll_s)
